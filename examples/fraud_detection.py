"""Fraud detection with exactly-once processing (Figure 5 end to end).

A payments pipeline on the streaming runtime: transactions flow from a
partitioned broker topic through a parallel keyed job that flags velocity
anomalies (too much spend per user per window).  A crash is injected
mid-stream; aligned-barrier checkpointing recovers the job and the flagged
set comes out exactly once — identical to the crash-free run.

Run:  python examples/fraud_detection.py
"""

from repro.bench import transactions
from repro.core import TumblingWindow
from repro.dsl import StreamEnvironment, SumAggregate
from repro.runtime import (
    Broker,
    CollectSinkOperator,
    ConsumerGroup,
    FailOnceOperator,
    ForwardPartitioner,
    HashPartitioner,
    JobGraph,
    JobRunner,
    KeyByOperator,
)
from repro.dsl.operators import WindowAggregateOperator

LIMIT = 700  # spend threshold per user per 100-tick window


def load_broker():
    """Land the transaction stream in a partitioned topic first."""
    broker = Broker()
    broker.create_topic("payments", partitions=4)
    broker.produce_all(
        "payments",
        ((row["user"], row, t) for row, t in transactions(500)))
    return broker


def records_from_broker(broker, parallelism):
    """Assign topic partitions to source subtasks (a consumer group)."""
    group = ConsumerGroup(broker, "fraud-job", ["payments"])
    feeds = []
    for i in range(parallelism):
        member = f"subtask{i}"
        group.join(member)
    for i in range(parallelism):
        records = [(r.value, r.key, r.timestamp)
                   for r in group.poll(f"subtask{i}")]
        feeds.append(records)
    return feeds


def build_job(feeds, fuse):
    graph = JobGraph("fraud")
    graph.add_source("payments", feeds)
    parallelism = len(feeds)
    graph.add_operator(
        "key", lambda: KeyByOperator(lambda tx: tx["user"]), parallelism)
    graph.add_operator(
        "chaos", lambda: FailOnceOperator(120, fuse), parallelism)
    graph.add_operator(
        "spend", lambda: WindowAggregateOperator(
            TumblingWindow(100), SumAggregate(lambda tx: tx["amount"])),
        parallelism)
    graph.add_operator("sink", CollectSinkOperator, 1)
    graph.connect("payments", "key", ForwardPartitioner)
    graph.connect("key", "chaos", ForwardPartitioner)
    graph.connect("chaos", "spend", HashPartitioner)
    graph.connect("spend", "sink", HashPartitioner)
    graph.mark_sink("sink")
    return graph


def flagged(result):
    return sorted((user, window.start, total)
                  for user, total, window in result.values("sink")
                  if total > LIMIT)


def main() -> None:
    broker = load_broker()
    feeds = records_from_broker(broker, parallelism=2)
    print(f"broker: {sum(len(f) for f in feeds)} payments across "
          f"{len(feeds)} source subtasks")

    # Reference run: no crash.
    clean = JobRunner(build_job(feeds, fuse=[True]),
                      checkpoint_interval=25).run()
    expected = flagged(clean)

    # Crash run: the chaos operator fails once at its 120th element.
    crashed = JobRunner(build_job(feeds, fuse=[False]),
                        checkpoint_interval=25).run()
    recovered = flagged(crashed)

    print(f"recoveries: {crashed.recoveries}, completed checkpoints: "
          f"{len(crashed.completed_checkpoints)}")
    print(f"exactly-once: {recovered == expected}")
    assert recovered == expected

    print("\nflagged (user, window_start, spend):")
    for user, start, total in recovered[:8]:
        print(f"  user {user:>3} window [{start},{start + 100}) "
              f"spent {total}")
    print(f"  ... {len(recovered)} flags total")

    # The DSL spelling of the same job, for comparison.
    env = StreamEnvironment(parallelism=2)
    (env.from_collection([(row, t) for row, t in transactions(500)])
     .key_by(lambda tx: tx["user"])
     .window(TumblingWindow(100))
     .aggregate(SumAggregate(lambda tx: tx["amount"]))
     .filter(lambda out: out[1] > LIMIT)
     .sink("flags"))
    dsl_flags = sorted((u, w.start, s)
                       for u, s, w in env.execute().values("flags"))
    print(f"\nDSL spelling agrees: {dsl_flags == expected}")
    assert dsl_flags == expected


if __name__ == "__main__":
    main()
