"""Semantic sensor web with RSP-QL (paper Section 5.2).

An RDF stream of sensor observations queried continuously: a static-ish
set of sensor metadata triples joins with streaming readings inside
RSP-QL windows; ISTREAM reports newly hot sensors, and report policies
control chattiness.

Run:  python examples/semantic_sensors.py
"""

from repro.core import R2SKind
from repro.rsp import (
    BasicGraphPattern,
    ContinuousRSPQuery,
    ReportPolicy,
    RSPEngine,
    StreamWindow,
    Triple,
    TriplePattern,
    iri,
    lit,
    var,
)

TYPE = iri("rdf:type")
SENSOR = iri("sosa:Sensor")
RESULT = iri("sosa:hasSimpleResult")
LOCATED = iri("ex:locatedIn")

READINGS = [
    ("ex:s1", 21, 2), ("ex:s2", 35, 5), ("ex:s1", 36, 12),
    ("ex:s3", 19, 14), ("ex:s2", 37, 22), ("ex:s1", 22, 27),
    ("ex:s3", 38, 33), ("ex:s2", 20, 41),
]


def main() -> None:
    engine = RSPEngine()
    engine.register_stream("observations")

    # Continuous query: sensors (with their room) reporting > 30 degrees
    # inside a 20-tick window sliding every 10.
    bgp = BasicGraphPattern([
        TriplePattern(var("sensor"), RESULT, var("value")),
        TriplePattern(var("sensor"), TYPE, SENSOR),
        TriplePattern(var("sensor"), LOCATED, var("room")),
    ])
    hot = engine.register_query("observations", ContinuousRSPQuery(
        bgp, StreamWindow(width=20, slide=10),
        select=["sensor", "room", "value"],
        r2s=R2SKind.ISTREAM,
        report=ReportPolicy.NON_EMPTY))

    # Metadata travels in the same stream (a common RSP pattern).
    print("== pushing metadata + observations ==")
    for i in range(1, 4):
        engine.push("observations",
                    Triple(iri(f"ex:s{i}"), TYPE, SENSOR), 0)
        engine.push("observations",
                    Triple(iri(f"ex:s{i}"), LOCATED,
                           iri(f"ex:room{(i % 2) + 1}")), 0)

    for sensor, value, t in READINGS:
        results = engine.push(
            "observations", Triple(iri(sensor), RESULT, lit(value)), t)
        for report in results:
            for solution in report.solutions:
                if solution["value"].value > 30:
                    print(f"  window closing at {report.window_close:>3}: "
                          f"{solution['sensor'].value} in "
                          f"{solution['room'].value} read "
                          f"{solution['value'].value}")
    engine.advance(80)

    reports = hot.results
    print(f"\nreports produced: {len(reports)} "
          f"(NON_EMPTY policy skipped empty windows)")
    total = sum(len(r.solutions) for r in reports)
    print(f"solution mappings emitted (ISTREAM): {total}")
    assert total > 0

    # Note: metadata at t=0 ages out of later windows — streaming
    # knowledge, exactly what the knowledge-evolution line studies.
    last = reports[-1]
    print(f"last reported window closed at t={last.window_close}")


if __name__ == "__main__":
    main()
