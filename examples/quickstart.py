"""Quickstart: one continuous query through every era the survey covers.

Runs the same idea — "monitor room observations continuously" — through
the three generations of systems the paper describes:

1. a CQL query on the DSMS era's engine (Listing 1, verbatim);
2. a functional DSL program on the streaming-systems era's runtime
   (Listing 2's shape);
3. a streaming SQL query in the streaming-database era's dialect;

then prints what the observability layer saw along the way.

Run:  python examples/quickstart.py
"""

import repro.obs as obs
from repro.core import Schema, TumblingWindow, minutes
from repro.cql import CQLEngine
from repro.dsl import CountAggregate, StreamEnvironment
from repro.sql import run_sql

OBSERVATIONS = [
    {"id": 1, "room": "lab", "temp": 21},
    {"id": 2, "room": "lab", "temp": 24},
    {"id": 1, "room": "office", "temp": 27},
    {"id": 3, "room": "lab", "temp": 31},
    {"id": 2, "room": "office", "temp": 29},
]
SCHEMA = Schema(["id", "room", "temp"])


def era_1_cql_dsms() -> None:
    """1992-2006: continuous queries in a DSMS, spoken in CQL."""
    print("== Era 1: CQL (paper Listing 1) ==")
    engine = CQLEngine()
    engine.register_stream("RoomObservation", SCHEMA)
    engine.register_relation(
        "Person", Schema(["id", "name"]),
        rows=[{"id": i, "name": name}
              for i, name in enumerate(["ada", "bob", "cyn", "dan"], 1)])
    query = engine.register_query(
        "Select count(P.ID) As n "
        "From Person P, RoomObservation O [Range 15 min] "
        "Where P.id = O.id")
    query.start()
    for minute, row in enumerate(OBSERVATIONS, 1):
        query.push("RoomObservation", row, minutes(minute))
        (answer,) = list(query.current())
        print(f"  t={minute:>2} min  observations in window: {answer['n']}")
    query.advance_to(minutes(30))
    (answer,) = list(query.current())
    print(f"  t=30 min  after expiry: {answer['n']}")
    query.publish_metrics(query="quickstart")


def era_2_functional_dsl() -> None:
    """2010s: a Flink-style DSL on a parallel streaming runtime."""
    print("\n== Era 2: functional DSL (paper Listing 2) ==")
    env = StreamEnvironment(parallelism=2)
    (env.from_collection(
        [(row, minutes(minute))
         for minute, row in enumerate(OBSERVATIONS, 1)])
     .filter(lambda obs: obs["temp"] > 22)           # Listing 2's filter
     .map(lambda obs: (obs["room"], obs["temp"]))    # ... and its map
     .key_by(lambda pair: pair[0])
     .window(TumblingWindow(minutes(3)))
     .aggregate(CountAggregate())
     .sink("hot"))
    result = env.execute()
    for room, count, window in sorted(result.values("hot"), key=repr):
        print(f"  window [{window.start // 60000:>2},"
              f"{window.end // 60000:>2}) min   room={room:<7} "
              f"hot readings: {count}")


def era_3_streaming_sql() -> None:
    """2020s: streaming databases — SQL-first, EMIT policies."""
    print("\n== Era 3: streaming SQL (TUMBLE + EMIT) ==")
    rows = [(row, minutes(minute))
            for minute, row in enumerate(OBSERVATIONS, 1)]
    records = run_sql(
        "SELECT room, COUNT(*) AS n, AVG(temp) AS avg_temp "
        "FROM Obs GROUP BY room, TUMBLE(3 MIN) EMIT FINAL",
        SCHEMA, "Obs", rows)
    for record in records:
        print(f"  room={record['room']:<7} n={record['n']} "
              f"avg_temp={record['avg_temp']:.1f}")


def main() -> None:
    obs.enable()  # counters, histograms and spans for everything below
    era_1_cql_dsms()
    era_2_functional_dsl()
    era_3_streaming_sql()
    print("\nThree eras, one concept: the standing query.")
    print()
    print(obs.console_table(obs.get_registry(), title="what the engines saw"))
    trace = obs.get_tracer().last_trace()
    if trace is not None:
        print("\nlast trace:")
        print(trace.render())


if __name__ == "__main__":
    main()
