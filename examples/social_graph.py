"""Streaming graph analytics (paper Section 5.2).

A social-network edge stream analysed with three continuous graph
queries: an incremental regular path query (influence reach via
``follows+``), a continuous triangle pattern (mutual-interest detection),
and a windowed RPQ whose answers age out with the sliding window.

Run:  python examples/social_graph.py
"""

from repro.bench import social_edges
from repro.graph import (
    ContinuousPatternQuery,
    IncrementalRPQ,
    WindowedRPQ,
    evaluate_rpq,
    PropertyGraph,
)


def main() -> None:
    edges = list(social_edges(150, people=18, seed=12))

    # 1. Standing RPQ: who can reach whom through follows edges?
    reach = IncrementalRPQ("follows+")
    # 2. Standing pattern: new follow-triangles, reported as they close.
    triangles = ContinuousPatternQuery(
        "x -follows-> y, y -follows-> z, z -follows-> x")
    # 3. Windowed RPQ: recommendation freshness — reach within the last
    #    100 ticks only.
    recent = WindowedRPQ("follows likes", window=100)

    print("== replaying 150 social edges ==")
    triangle_count = 0
    for src, label, dst, t in edges:
        new_reach = reach.insert(src, label, dst) \
            if label == "follows" else set()
        if label == "follows":
            closed = triangles.insert(src, dst, label)
            for match in closed:
                triangle_count += 1
                print(f"  t={t:>3} triangle closed: "
                      f"{match['x']} -> {match['y']} -> {match['z']} -> "
                      f"{match['x']}")
        recent.insert(src, label, dst, t)
        if len(new_reach) >= 12:
            print(f"  t={t:>3} {src}->{dst} unlocked "
                  f"{len(new_reach)} new reach pairs")

    print(f"\nfollows+ reach pairs: {len(reach.answers())}")
    print(f"triangles found: {triangle_count}")
    print(f"windowed follows·likes pairs (last 100 ticks): "
          f"{len(recent.answers())}, rebuilds: {recent.rebuilds}")

    # Validate the standing query against a from-scratch evaluation.
    graph = PropertyGraph()
    for i, (src, label, dst, _) in enumerate(edges):
        if label == "follows":
            graph.add_edge(f"e{i}", src, dst, label)
    snapshot = evaluate_rpq(graph, "follows+")
    print(f"incremental == snapshot recompute: "
          f"{reach.answers() == snapshot}")
    assert reach.answers() == snapshot

    # Top influencers by out-reach.
    by_source = {}
    for src, dst in reach.answers():
        by_source.setdefault(src, set()).add(dst)
    top = sorted(by_source.items(), key=lambda kv: -len(kv[1]))[:3]
    print("\ntop influencers by transitive reach:")
    for user, reached in top:
        print(f"  {user}: reaches {len(reached)} users")


if __name__ == "__main__":
    main()
