"""Room monitoring on the Figure 3 DSMS: Store, Scratch, Throw in action.

A building-monitoring scenario: three standing queries over one sensor
stream, bounded queues with load shedding on the low-priority query, and
a tour of the architectural components as the stream flows.

Run:  python examples/room_monitoring.py
"""

from repro.bench import room_observations, OBSERVATION_SCHEMA
from repro.core import Schema
from repro.dsms import DSMSEngine, SemanticShedder


def main() -> None:
    dsms = DSMSEngine(keep_thrown_tuples=False)
    dsms.register_stream("Obs", OBSERVATION_SCHEMA)
    dsms.register_relation(
        "Rooms", Schema(["room", "floor"]),
        rows=[{"room": f"room{i}", "floor": i % 3} for i in range(5)])

    # Three standing queries, registered once (the Figure 1 contract).
    alerts = dsms.register_query(
        "alerts",
        "SELECT ISTREAM id, room FROM Obs [Now] WHERE temp > 33")
    averages = dsms.register_query(
        "averages",
        "SELECT room, AVG(temp) AS avg_temp FROM Obs [Range 300] "
        "GROUP BY room")
    # The floor summary tolerates loss: shed low temperatures first.
    floors = dsms.register_query(
        "floors",
        "SELECT R.floor, COUNT(*) AS readings "
        "FROM Obs O [Range 300], Rooms R WHERE O.room = R.room "
        "GROUP BY R.floor",
        shedder=SemanticShedder(utility=lambda row: row["temp"],
                                min_utility=20, threshold=0.5),
        queue_capacity=4)

    print("== ingesting 120 observations ==")
    for row, t in room_observations(120):
        dsms.ingest("Obs", row, t)
        # Drain sporadically so queue pressure (and shedding) can build.
        if t % 40 == 0:
            dsms.run_until_idle()
    dsms.run_until_idle()

    print("\n-- Store (continuous answers, read at any time) --")
    for record in sorted(averages.store_state(), key=repr):
        print(f"  {record['room']:<7} avg_temp={record['avg_temp']:.1f}")
    for record in sorted(floors.store_state(), key=repr):
        print(f"  floor {record['floor']}: {record['readings']} readings")

    print("\n-- alert stream (push output) --")
    for emission in alerts.emissions()[:5]:
        print(f"  t={emission.timestamp:>4} sensor {emission.record['id']} "
              f"overheated in {emission.record['room']}")
    print(f"  ... {len(alerts.emissions())} alerts total")

    print("\n-- Scratch (working memory) --")
    for label, size in sorted(dsms.scratch.breakdown().items()):
        if size:
            print(f"  {label:<28} {size} tuples")
    print(f"  peak occupancy: {dsms.scratch.peak} tuples")

    horizon = 10_000
    dsms.advance_time(horizon)
    print("\n-- Throw (expired tuples) --")
    print(f"  discarded after window expiry: {dsms.throw.discarded}")
    print(f"  scratch after expiry: {dsms.scratch.occupancy()} tuples")

    print("\n-- per-query metrics --")
    for name, metrics in dsms.metrics_table().items():
        print(f"  {name:<9} processed={metrics['processed']:<4.0f} "
              f"shed={metrics['shed']:<3.0f} "
              f"emitted={metrics['emitted']:.0f}")


if __name__ == "__main__":
    main()
