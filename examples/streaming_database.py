"""A streaming database in miniature (paper Section 5.1).

The modern era: a dashboard view maintained incrementally as orders
stream in (Materialize/RisingWave-style), the maintenance-strategy
trade-off (eager vs split), a higher-order-delta join view (DBToaster),
and InvaliDB-style push notifications to a live leaderboard.

Run:  python examples/streaming_database.py
"""

import random

from repro.viewmaint import (
    EagerView,
    EventKind,
    GroupedJoinAggregateView,
    LiveQuery,
    RealTimeDatabase,
    SplitView,
)


def order_stream(n=300, seed=31):
    rng = random.Random(seed)
    regions = ["emea", "amer", "apac"]
    for i in range(n):
        yield {"order": i, "g": rng.choice(regions),
               "v": rng.randint(10, 500),
               "user": f"u{rng.randrange(8)}"}


def main() -> None:
    # -- 1. incremental dashboard views -----------------------------------
    eager = EagerView(group_fn=lambda o: o["g"], value_fn=lambda o: o["v"])
    split = SplitView(group_fn=lambda o: o["g"], value_fn=lambda o: o["v"],
                      merge_threshold=32)
    orders = list(order_stream())
    for order in orders:
        eager.insert(order)
        split.insert(order)
    assert eager.query() == split.query()

    print("== revenue dashboard (continuously maintained) ==")
    for region, aggregates in sorted(eager.query().items()):
        print(f"  {region}: {aggregates['count']} orders, "
              f"revenue {aggregates['sum']}, avg {aggregates['avg']:.1f}")
    print(f"  eager update work: {eager.update_work}, "
          f"split update work: {split.update_work} "
          f"(+{split.merges} merges)")

    # -- 2. higher-order delta join view (DBToaster-style) -----------------
    revenue_by_city = GroupedJoinAggregateView(
        left_key=lambda o: o["user"], right_key=lambda u: u["user"],
        group_key=lambda o: o["g"],
        left_value=lambda o: o["v"], right_value=lambda u: 1)
    for i in range(8):
        revenue_by_city.insert_right({"user": f"u{i}"})
    for order in orders:
        revenue_by_city.insert_left(order)
    print("\n== join view V[region] = Σ order.value ⋈ users ==")
    for region, value in sorted(revenue_by_city.results().items()):
        print(f"  {region}: {value}")

    # -- 3. push-based real-time queries (InvaliDB-style) ------------------
    print("\n== live leaderboard (push notifications) ==")
    db = RealTimeDatabase()
    leaderboard = LiveQuery(lambda d: True,
                            order_by=lambda d: -d["spent"], limit=3)
    db.subscribe("top3", leaderboard)
    spent: dict[str, int] = {}
    notifications = 0
    for order in orders:
        user = order["user"]
        spent[user] = spent.get(user, 0) + order["v"]
        events = db.put(user, {"user": user, "spent": spent[user]})
        for event in events.get("top3", ()):
            notifications += 1
            if event.kind is EventKind.ADD:
                print(f"  + {event.document['user']} enters top-3 with "
                      f"{event.document['spent']}")
            elif event.kind is EventKind.REMOVE and notifications < 40:
                print(f"  - {event.key} drops out")
            if notifications == 12:
                print("  ... (further notifications suppressed)")
    print(f"\nfinal top 3: "
          f"{[(d['user'], d['spent']) for d in leaderboard.result_documents()]}")
    print(f"push notifications delivered: {notifications} "
          f"(vs {len(orders)} polls a pull client would need)")

    # The push view always equals what a fresh pull query would return.
    pull = sorted(db.find(lambda d: True),
                  key=lambda d: -d["spent"])[:3]
    assert leaderboard.result_documents() == pull


if __name__ == "__main__":
    main()
