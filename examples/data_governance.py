"""The paper's open challenges (Section 7), worked end to end.

Three things the survey says the field still lacks, running code for
each: why-provenance through a streaming pipeline, consistency
enforcement in front of a continuous query, and porting a query across
dialects with the window-semantics fine print made explicit.

Run:  python examples/data_governance.py
"""

from repro.bench import OBSERVATION_SCHEMA, room_observations
from repro.core import Schema, Stream, TumblingWindow
from repro.cql import CQLEngine
from repro.governance import (
    DomainConstraint,
    MonotonicConstraint,
    RepairAction,
    StreamCleaner,
    WhyPipeline,
    blame,
    port_sql_to_cql,
    verify_witness,
)
from repro.sql import run_sql


def provenance_demo() -> None:
    print("== 1. why-provenance: why is this alert firing? ==")
    readings = [
        ({"room": "lab", "temp": 21}, 1),
        ({"room": "lab", "temp": 45}, 3),
        ({"room": "office", "temp": 22}, 4),
        ({"room": "lab", "temp": 48}, 7),
        ({"room": "lab", "temp": 20}, 12),
    ]
    pipeline = (WhyPipeline()
                .filter(lambda r: r["temp"] > 0)
                .window_aggregate(
                    TumblingWindow(10),
                    key_fn=lambda r: r["room"],
                    aggregate=lambda vs: max(v["temp"] for v in vs)))
    outputs = pipeline.run(readings)
    for output in outputs:
        room, peak, window = output.value
        print(f"  window [{window.start},{window.end}) {room}: "
              f"peak {peak}  — because of inputs {sorted(output.why)}")
    guilty = blame(outputs, lambda v: v[1] > 40)
    print(f"  inputs to blame for >40° alerts: {sorted(guilty)}")
    assert all(verify_witness(pipeline, readings, o) for o in outputs)
    print("  every witness set replays to the same output: verified")


def consistency_demo() -> None:
    print("\n== 2. consistency: cleansing in front of the query ==")
    cleaner = StreamCleaner([
        DomainConstraint(
            "plausible-temp", lambda r: -20 <= r["temp"] <= 60,
            action=RepairAction.REPAIR,
            repair_fn=lambda r: {**r,
                                 "temp": max(-20, min(60, r["temp"]))}),
        MonotonicConstraint(
            "meter-monotone", key_fn=lambda r: r["id"],
            value_fn=lambda r: r["reading"],
            action=RepairAction.LAST_GOOD),
    ]).with_last_good_key(lambda r: r["id"])

    engine = CQLEngine()
    engine.register_stream("Meters", Schema(["id", "temp", "reading"]))
    query = engine.register_query(
        "SELECT id, MAX(reading) AS r FROM Meters [Range 100] GROUP BY id")
    query.start()

    arrivals = [
        ({"id": 1, "temp": 20, "reading": 100}, 1),
        ({"id": 1, "temp": 950, "reading": 110}, 2),   # sensor glitch
        ({"id": 1, "temp": 21, "reading": 90}, 3),     # meter regression
        ({"id": 2, "temp": 22, "reading": 7}, 4),
    ]
    for row, t in arrivals:
        clean = cleaner.process(row, t)
        if clean is not None:
            query.push("Meters", clean, t)
    for record in sorted(query.current(), key=repr):
        print(f"  meter {record['id']}: max reading {record['r']}")
    stats = cleaner.stats
    print(f"  admitted={stats.admitted} repaired={stats.repaired} "
          f"substituted={stats.substituted}; "
          f"quarantined violations={len(cleaner.quarantine)}")
    for violation in cleaner.quarantine:
        print(f"    [{violation.constraint}] {violation.detail}")


def portability_demo() -> None:
    print("\n== 3. portability: one query, two dialects ==")
    sql_text = ("SELECT room, COUNT(*) AS n FROM Obs "
                "GROUP BY room, TUMBLE(100)")
    ported = port_sql_to_cql(sql_text)
    print(f"  SQL : {sql_text}")
    print(f"  CQL : {ported.cql_text}")
    for note in ported.notes:
        print(f"  note[{note.topic}]: {note.detail[:72]}…")

    rows = [(row, t + 1 if t % 100 == 0 else t)
            for row, t in room_observations(60)]
    sql_result = {(r["room"], r["n"])
                  for r in run_sql(sql_text, OBSERVATION_SCHEMA, "Obs",
                                   rows)}
    engine = CQLEngine()
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    query = engine.register_query(ported.cql_text)
    query.run_recorded({"Obs": Stream.of_records(OBSERVATION_SCHEMA,
                                                 rows)})
    relation = query.as_relation()
    cql_result = set()
    boundary = 100
    while boundary <= rows[-1][1] + 100:
        cql_result.update((r["room"], r["n"])
                          for r in relation.at(boundary))
        boundary += ported.window_slide
    print(f"  results agree off window boundaries: "
          f"{sql_result == cql_result}")
    assert sql_result == cql_result


def main() -> None:
    provenance_demo()
    consistency_demo()
    portability_demo()


if __name__ == "__main__":
    main()
