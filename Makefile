PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test fuzz fuzz-quick

test:
	$(PYTHON) -m pytest -x -q

# Bounded, seeded fuzz — the same budget the tier-1 suite runs.
fuzz-quick:
	$(PYTHON) -m repro.difftest --cases 500 --core-cases 200 --seed 0

# Long unseeded campaign: a fresh seed each run, repros emitted into
# difftest_repros/ and timing into benchmarks/BENCH_difftest_fuzz.json.
fuzz:
	$(PYTHON) -m repro.difftest --cases 20000 --core-cases 5000 \
		--unseeded --repro-dir difftest_repros --bench-dir benchmarks
