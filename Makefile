PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test lint bench-kernel bench-plan fuzz fuzz-quick

test: lint
	$(PYTHON) -m pytest -x -q

# Style gate: ruff when available; the image may not ship it (and
# installing is off the table), so its absence skips with a notice.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed; skipping style gate"; \
	fi

# Kernel-vs-legacy overhead comparison on the Figure 4 workload.
# Writes BENCH_kernel_unification.json in the working directory.
bench-kernel:
	$(PYTHON) -m pytest benchmarks/bench_kernel_unification.py -x -q

# Multi-query plan sharing: 8 overlapping standing queries, shared vs
# private plans.  Writes BENCH_plan_sharing.json.
bench-plan:
	$(PYTHON) -m pytest benchmarks/bench_plan_sharing.py -x -q

# Bounded, seeded fuzz — the same budget the tier-1 suite runs.
fuzz-quick:
	$(PYTHON) -m repro.difftest --cases 500 --core-cases 200 --seed 0

# Long unseeded campaign: a fresh seed each run, repros emitted into
# difftest_repros/ and timing into benchmarks/BENCH_difftest_fuzz.json.
fuzz:
	$(PYTHON) -m repro.difftest --cases 20000 --core-cases 5000 \
		--unseeded --repro-dir difftest_repros --bench-dir benchmarks
