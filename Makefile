PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test lint bench bench-kernel bench-plan bench-recovery \
	bench-profile bench-parallel bench-batch bench-views bench-rescale \
	chaos fuzz fuzz-quick

test: lint
	$(PYTHON) -m pytest -x -q

# Style gate: ruff when available; the image may not ship it (and
# installing is off the table), so its absence skips with a notice.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed; skipping style gate"; \
	fi

# Kernel-vs-legacy overhead comparison on the Figure 4 workload.
# Writes BENCH_kernel_unification.json in the working directory.
bench-kernel:
	$(PYTHON) -m pytest benchmarks/bench_kernel_unification.py -x -q

# Multi-query plan sharing: 8 overlapping standing queries, shared vs
# private plans.  Writes BENCH_plan_sharing.json.
bench-plan:
	$(PYTHON) -m pytest benchmarks/bench_plan_sharing.py -x -q

# Recovery latency and replay volume vs checkpoint interval, one
# injected crash per interval.  Writes BENCH_recovery.json.
bench-recovery:
	$(PYTHON) -m pytest benchmarks/bench_recovery.py -x -q

# Profiling overhead: obs off vs metrics-only vs full profiling on the
# standing-query workloads, plus per-operator attribution sanity.
# Writes BENCH_profiling.json.
bench-profile:
	$(PYTHON) -m pytest benchmarks/bench_profiling.py -x -q

# Partitioned parallel execution: keyed aggregation fissioned across
# 1/2/4 worker processes, parity-gated, critical-path scaling claim.
# Writes BENCH_parallelism.json.
bench-parallel:
	$(PYTHON) -m pytest benchmarks/bench_parallelism.py -x -q

# Vectorized micro-batch execution: columnar RecordBatch vs per-element
# on the fused chain (parity-gated, >=5x claim) plus the DSMS end to
# end.  Writes BENCH_batch.json.
bench-batch:
	$(PYTHON) -m pytest benchmarks/bench_batch.py -x -q

# Dynamic tables: two-level view DAG under skewed updates, incremental
# refresh vs recompute-from-base (parity-gated, >=5x claim) with the
# lag-vs-target_lag gate.  Writes BENCH_dynamic_tables.json.
bench-views:
	$(PYTHON) -m pytest benchmarks/bench_dynamic_tables.py -x -q

# Live rescale 1→4→2 mid-stream: migration stall per step plus the
# zero-divergence gate (emissions and state vs the never-rescaled run,
# and the difftest rescale leg over 200 seeded cases).  Writes
# BENCH_rescale.json.
bench-rescale:
	$(PYTHON) -m pytest benchmarks/bench_rescale.py -x -q

# Every headline benchmark, each writing its BENCH_*.json.
bench: bench-kernel bench-plan bench-recovery bench-profile \
	bench-parallel bench-batch bench-views bench-rescale

# Standing fault-injection campaign: kernel crash matrix over random
# queries plus seeded broker drop/dup/reorder chaos.
chaos:
	$(PYTHON) -m repro.chaos --cases 200 --broker-seeds 100

# Bounded, seeded fuzz — the same budget the tier-1 suite runs.
fuzz-quick:
	$(PYTHON) -m repro.difftest --cases 500 --core-cases 200 --seed 0

# Long unseeded campaign: a fresh seed each run, repros emitted into
# difftest_repros/ and timing into benchmarks/BENCH_difftest_fuzz.json.
fuzz:
	$(PYTHON) -m repro.difftest --cases 20000 --core-cases 5000 \
		--unseeded --repro-dir difftest_repros --bench-dir benchmarks
