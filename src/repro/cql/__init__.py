"""CQL — the continuous query language of Arasu et al. (paper Section 3.1).

A complete implementation of the CQL stack: lexer/parser for the dialect of
Listing 1, a logical algebra with the S2R/R2R/R2S trichotomy, a naive
planner, and two execution paths — the reference denotational evaluator
(:func:`~repro.cql.reference.reference_evaluate`) and the incremental
delta-based executor (:class:`~repro.cql.executor.ContinuousQuery`).
"""

from repro.plan.ir import (
    Aggregate,
    AggregateExpr,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    RelationScan,
    RelToStream,
    SetOp,
    StreamScan,
    WindowOp,
    scans_of,
    walk,
)
from repro.cql.ast import (
    Binary,
    BinOp,
    Column,
    Expr,
    FromSource,
    FuncCall,
    Literal,
    SelectItem,
    SelectStatement,
    SetStatement,
    Star,
    Unary,
    WindowSpec,
    WindowSpecKind,
    conjoin,
    contains_aggregate,
    split_conjuncts,
)
from repro.cql.catalog import Catalog, RelationDef, StreamDef
from repro.cql.engine import CQLEngine
from repro.cql.executor import (
    Agenda,
    ContinuousQuery,
    Delta,
    Emission,
    compile_plan,
)
from repro.cql.expressions import (
    compile_expr,
    compile_predicate,
    equality_columns,
)
from repro.cql.lexer import Token, TokenCursor, TokenType, tokenize
from repro.cql.parallel import PartitionedQuery
from repro.cql.parser import parse_query
from repro.cql.planner import plan_statement, window_object
from repro.cql.reference import reference_evaluate

__all__ = [
    # language
    "parse_query", "tokenize", "Token", "TokenType", "TokenCursor",
    "SelectStatement", "SetStatement", "SelectItem", "FromSource", "WindowSpec",
    "WindowSpecKind", "Expr", "Column", "Literal", "Star", "Binary",
    "BinOp", "Unary", "FuncCall", "split_conjuncts", "conjoin",
    "contains_aggregate",
    # algebra
    "LogicalOp", "StreamScan", "RelationScan", "WindowOp", "Filter",
    "Project", "Join", "Aggregate", "AggregateExpr", "Distinct", "SetOp",
    "RelToStream", "walk", "scans_of",
    # planning & expressions
    "plan_statement", "window_object", "compile_expr", "compile_predicate",
    "equality_columns",
    # catalog
    "Catalog", "StreamDef", "RelationDef",
    # execution
    "CQLEngine", "ContinuousQuery", "Emission", "Delta", "Agenda",
    "PartitionedQuery", "compile_plan", "reference_evaluate",
]
