"""Lowering the CQL physical tree onto the shared execution kernel.

The delta executor's :class:`~repro.cql.executor.PhysicalOp` tree used to
be evaluated by a bespoke pull recursion (``process_instant`` walking the
children).  :class:`QueryKernel` instead compiles the tree into a
:class:`repro.exec.Plan`: every physical operator becomes a kernel
operator, instants are driven by pushing a *tick* (the instant's
timestamp) into each source, and deltas flow downstream as
``_InstantBatch`` elements.  The ``Agenda``/``Delta`` machinery is
untouched — it now drives the kernel instead of a recursion.

Multi-input operators (joins, set ops) buffer one batch per input and
apply once all inputs have reported the instant; since every source is
ticked exactly once per instant, every operator fires exactly once, and
the result equals the pull evaluation batch-for-batch.

Stateless unary stages are fused by the kernel's generic chaining pass
(``Plan.fuse``) — the same optimisation ``runtime/dag.py`` applies to job
graphs.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import NamedTuple

from repro.core.time import Timestamp
from repro.cql.executor import Delta, PhysicalOp
from repro.exec import Operator, Plan


class _InstantBatch(NamedTuple):
    """One operator's full output for one instant."""

    t: Timestamp
    deltas: list[Delta]
    active: bool


class _SourceAdapter(Operator):
    """Wraps a leaf PhysicalOp; a pushed tick evaluates the instant."""

    fusible = True

    def __init__(self, phys: PhysicalOp) -> None:
        self.phys = phys

    def open(self, ctx) -> None:
        super().open(ctx)
        self._emit = ctx.emitter.emit

    def process_element(self, t: Timestamp, input_index: int = 0) -> None:
        deltas, active = self.phys.process_instant(t)
        self._emit(_InstantBatch(t, deltas, active))


class _UnaryAdapter(Operator):
    """Wraps a single-input PhysicalOp; applies on every batch."""

    fusible = True

    def __init__(self, phys: PhysicalOp) -> None:
        self.phys = phys

    def open(self, ctx) -> None:
        super().open(ctx)
        self._emit = ctx.emitter.emit
        self._apply = self.phys.apply

    def process_element(self, batch: _InstantBatch,
                        input_index: int = 0) -> None:
        deltas, active = self._apply(batch.t, [batch.deltas], batch.active)
        self._emit(_InstantBatch(batch.t, deltas, active))


class _OpAdapter(Operator):
    """Wraps a multi-input PhysicalOp; applies once all inputs reported.

    Each input buffers a FIFO of instant batches rather than a single
    slot: batched tick driving (:meth:`QueryKernel.run_instants`) pushes
    *all* instants through one source before ticking the next, so one
    side may run several instants ahead of its siblings.  Ticks arrive in
    the same instant order on every source, so the queue heads always
    share a timestamp.
    """

    fusible = True

    def __init__(self, phys: PhysicalOp, arity: int) -> None:
        self.phys = phys
        self.arity = arity
        self._pending: list[deque[_InstantBatch]] = \
            [deque() for _ in range(arity)]

    def process_element(self, batch: _InstantBatch,
                        input_index: int = 0) -> None:
        self._pending[input_index].append(batch)
        if any(not q for q in self._pending):
            return
        heads = [q.popleft() for q in self._pending]
        deltas, active = self.phys.apply(
            heads[0].t, [b.deltas for b in heads],
            any(b.active for b in heads))
        self.emit(_InstantBatch(heads[0].t, deltas, active))


class _RootCollector(Operator):
    """Catches the root operator's batches for the driver to take."""

    fusible = True

    def __init__(self) -> None:
        self._batches: list[_InstantBatch] = []

    def process_element(self, batch: _InstantBatch,
                        input_index: int = 0) -> None:
        self._batches.append(batch)

    def take(self) -> _InstantBatch:
        batches = self.take_all()
        if len(batches) != 1:
            raise RuntimeError(
                f"kernel instant produced {len(batches)} root batches, "
                f"expected 1")
        return batches[0]

    def take_all(self) -> list[_InstantBatch]:
        batches, self._batches = self._batches, []
        if not batches:
            raise RuntimeError("kernel instant produced no root batch")
        return batches


class QueryKernel:
    """A compiled-to-kernel continuous query, driven instant by instant."""

    def __init__(self, root: PhysicalOp) -> None:
        self.plan = Plan()
        self._collector = _RootCollector()
        self._ticks: list[str] = []
        self._multi_adapters: list[_OpAdapter] = []
        counter = itertools.count()

        def build(op: PhysicalOp) -> str:
            name = f"{type(op).__name__}#{next(counter)}"
            if not op.children:
                tick = self.plan.add_source(f"tick:{name}")
                self._ticks.append(tick)
                self.plan.add_operator(name, _SourceAdapter(op), [tick])
            else:
                inputs = [build(child) for child in op.children]
                if len(inputs) == 1:
                    adapter = _UnaryAdapter(op)
                else:
                    adapter = _OpAdapter(op, len(inputs))
                    self._multi_adapters.append(adapter)
                self.plan.add_operator(name, adapter, inputs)
            return name

        root_name = build(root)
        self.plan.add_operator("collect", self._collector, [root_name])
        self.fusions = self.plan.fuse()
        # Physical operators keep their own rows-in/out accounting
        # (published via ContinuousQuery.publish_metrics), so plan-level
        # element counting stays off to avoid double counting.
        self.plan.open(count_elements=False, layer="cql")

    def run_instant(self, t: Timestamp) -> tuple[list[Delta], bool]:
        """Evaluate one instant by ticking every source through the plan."""
        for tick in self._ticks:
            self.plan.push(tick, t)
        batch = self._collector.take()
        return batch.deltas, batch.active

    def run_instants(self, ts: list[Timestamp]) \
            -> list[tuple[list[Delta], bool]]:
        """Evaluate several due instants with one batched tick per source.

        The vectorized agenda drain: instead of one plan-wide push per
        (source, instant), each source receives its tick list as ONE
        ``push_batch`` — plan entry overhead is paid once per source per
        drain instead of once per instant.  The multi-input adapters'
        per-input FIFOs pair batches by position, so instants still
        evaluate in order and the per-instant results are exactly
        ``[run_instant(t) for t in ts]``.
        """
        if not ts:
            return []
        if len(ts) == 1:
            return [self.run_instant(ts[0])]
        for tick in self._ticks:
            self.plan.push_batch(tick, ts)
        batches = self._collector.take_all()
        if len(batches) != len(ts):
            raise RuntimeError(
                f"batched tick drive produced {len(batches)} root batches "
                f"for {len(ts)} instants")
        return [(batch.deltas, batch.active) for batch in batches]

    def reset_transients(self) -> None:
        """Discard in-flight instant batches stranded by a crash.

        A fault raised mid-``run_instant`` can leave multi-input adapters
        holding one side's batch and the root collector holding a partial
        result; both belong to the instant recovery rolls back, so the
        next tick must start clean.
        """
        for adapter in self._multi_adapters:
            adapter._pending = [deque() for _ in range(adapter.arity)]
        self._collector._batches = []


class MultiQueryKernel:
    """N standing queries compiled into ONE kernel plan with shared nodes.

    The multi-query optimiser (:mod:`repro.plan.sharing`) makes distinct
    queries reuse the *same* :class:`PhysicalOp` objects for common
    subplans; this kernel materialises the resulting DAG faithfully: each
    distinct physical operator becomes exactly one kernel node (deduped by
    object identity), and a shared node fans its batches out to every
    consumer through the kernel's multi-target channels.  One tick per
    distinct leaf per instant evaluates *all* member queries; each member's
    root batch lands in a per-member collector.

    ``exec.Plan`` cannot be reopened, so registering a new member means
    building a fresh ``MultiQueryKernel`` — cheap, because the adapters
    are stateless wrappers and all operator state lives in the shared
    ``PhysicalOp`` objects that carry over.
    """

    def __init__(self, roots: list[PhysicalOp]) -> None:
        self.plan = Plan()
        self._collectors: list[_RootCollector] = []
        self._ticks: list[str] = []
        counter = itertools.count()
        names: dict[int, str] = {}  # id(phys op) -> kernel channel

        def build(op: PhysicalOp) -> str:
            existing = names.get(id(op))
            if existing is not None:
                return existing
            name = f"{type(op).__name__}#{next(counter)}"
            if not op.children:
                tick = self.plan.add_source(f"tick:{name}")
                self._ticks.append(tick)
                self.plan.add_operator(name, _SourceAdapter(op), [tick])
            else:
                inputs = [build(child) for child in op.children]
                adapter = (_UnaryAdapter(op) if len(inputs) == 1
                           else _OpAdapter(op, len(inputs)))
                self.plan.add_operator(name, adapter, inputs)
            names[id(op)] = name
            return name

        for index, root in enumerate(roots):
            collector = _RootCollector()
            self.plan.add_operator(f"collect#{index}", collector,
                                   [build(root)])
            self._collectors.append(collector)
        self.fusions = self.plan.fuse()
        self.plan.open(count_elements=False, layer="cql")
        #: Distinct physical operators in the DAG (shared nodes count once).
        self.distinct_operators = len(names)

    def run_instant(self, t: Timestamp) -> list[tuple[list[Delta], bool]]:
        """Evaluate one instant for every member; one batch per root."""
        for tick in self._ticks:
            self.plan.push(tick, t)
        out = []
        for collector in self._collectors:
            batch = collector.take()
            out.append((batch.deltas, batch.active))
        return out
