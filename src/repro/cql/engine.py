"""The CQL engine facade: catalog + parser + planner + optimizer + executor.

This is the library's front door for CQL (paper Section 3.1):

    >>> from repro.cql import CQLEngine
    >>> from repro.core import Schema, minutes
    >>> engine = CQLEngine()
    >>> engine.register_stream("RoomObservation", Schema(["id", "room"]))
    >>> engine.register_relation("Person", Schema(["id", "name"]),
    ...                          rows=[{"id": 1, "name": "ada"}])
    >>> query = engine.register_query(
    ...     "SELECT COUNT(P.id) AS n "
    ...     "FROM Person P, RoomObservation O [Range 15 MIN] "
    ...     "WHERE P.id = O.id")
    >>> query.push("RoomObservation", {"id": 1, "room": 7}, minutes(1))
    []
    >>> sorted(r["n"] for r in query.current())
    [1]

(The example is Listing 1 of the paper.)
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.errors import PlanError
from repro.core.records import Record, Schema
from repro.core.relation import TimeVaryingRelation
from repro.core.stream import Stream
from repro.plan.ir import LogicalOp
from repro.plan.parallel import decide_parallelism
from repro.cql.catalog import Catalog, RelationDef, StreamDef
from repro.cql.executor import ContinuousQuery, Emission
from repro.cql.parser import parse_query
from repro.cql.planner import plan_statement
from repro.cql.reference import reference_evaluate


class CQLEngine:
    """A continuous-query processor in the style of STREAM's CQL."""

    def __init__(self, optimize: bool = True) -> None:
        self.catalog = Catalog()
        self._optimize = optimize
        self._queries: list[ContinuousQuery] = []

    # -- catalog -------------------------------------------------------------

    def register_stream(self, name: str, schema: Schema) -> StreamDef:
        """Declare a stream (schema only; elements arrive at runtime)."""
        return self.catalog.register_stream(name, schema)

    def register_relation(self, name: str, schema: Schema,
                          rows: Iterable[Mapping[str, Any] | Record] = (),
                          ) -> RelationDef:
        """Declare a base relation with optional initial contents."""
        return self.catalog.register_relation(name, schema, rows)

    # -- planning ------------------------------------------------------------

    def plan(self, text: str, optimize: bool | None = None) -> LogicalOp:
        """Parse and plan a query without registering it."""
        statement = parse_query(text)
        plan = plan_statement(statement, self.catalog)
        if optimize if optimize is not None else self._optimize:
            from repro.plan.rules import optimize as run_rules
            plan = run_rules(plan)
        return plan

    def explain(self, text: str) -> str:
        """EXPLAIN: the (optimised) plan tree with incremental-strategy
        annotations and the plan's canonical signature."""
        from repro.plan.explain import explain_logical
        return explain_logical(self.plan(text))

    # -- execution -----------------------------------------------------------

    def register_query(self, text: str,
                       optimize: bool | None = None,
                       kernel: bool = True,
                       shared=None,
                       parallelism: int | None = None):
        """Register a continuous query: compiled once, runs until cancelled
        (the paper's Figure 1 contract).  ``kernel=False`` keeps the
        legacy pull recursion (benchmark comparisons).  Passing a
        :class:`repro.cql.shared.SharedGroup` as ``shared`` compiles the
        query *into the group*, reusing physical subplans other members
        already built (multi-query optimisation).

        ``parallelism=N`` asks for key-partitioned execution: when the
        planner proves the plan partitionable the query runs as N
        replicas behind a :class:`~repro.cql.parallel.PartitionedQuery`;
        otherwise the request is clamped back to a serial query (the
        planner's call, not an error — see
        :func:`repro.plan.parallel.decide_parallelism`)."""
        plan = self.plan(text, optimize)
        if shared is not None:
            if parallelism is not None and parallelism > 1:
                raise PlanError(
                    "shared-group queries interleave operator state across "
                    "members and cannot be partitioned")
            query = shared.register(plan)
        elif parallelism is not None and parallelism > 1 \
                and decide_parallelism(plan, requested=parallelism) > 1:
            from repro.cql.parallel import PartitionedQuery
            query = PartitionedQuery(plan, self.catalog,
                                     parallelism=parallelism, kernel=kernel)
        else:
            query = ContinuousQuery(plan, self.catalog, kernel=kernel)
        self._queries.append(query)
        return query

    def shared_group(self):
        """Create an empty :class:`~repro.cql.shared.SharedGroup` bound to
        this engine's catalog; pass it to :meth:`register_query`."""
        from repro.cql.shared import SharedGroup
        return SharedGroup(self.catalog)

    def push(self, stream_name: str, row: Mapping[str, Any] | Record,
             timestamp: int) -> dict[int, list[Emission]]:
        """Push one element into every registered query reading the stream.

        Returns emissions per query index.
        """
        out: dict[int, list[Emission]] = {}
        for index, query in enumerate(self._queries):
            if stream_name in query._stream_sources:
                out[index] = query.push(stream_name, row, timestamp)
        return out

    def run_one_shot(self, text: str,
                     streams: Mapping[str, Stream[Record]],
                     ) -> TimeVaryingRelation | Stream[Record]:
        """Evaluate a query denotationally over recorded streams.

        This is the reference (non-incremental) evaluation — useful for
        testing and as the "re-execute from scratch" baseline.
        """
        return reference_evaluate(self.plan(text), self.catalog, streams)

    @property
    def queries(self) -> list[ContinuousQuery]:
        return list(self._queries)
