"""Fissioned continuous queries: N replicas, key-routed arrivals.

:class:`PartitionedQuery` is the CQL layer's data-parallel execution
unit (survey §4.2).  Construction requires a
:class:`~repro.plan.parallel.PartitionScheme` — the planner's proof that
records with different partition keys never interact anywhere in the
plan — and then:

* compiles ``parallelism`` *independent* :class:`ContinuousQuery`
  replicas of the same logical plan (disjoint operator state, disjoint
  agendas);
* routes every stream arrival to exactly one replica, hashing the
  scheme's key columns with the same fixed
  :func:`~repro.runtime.broker.default_hash` every other routing layer
  uses;
* broadcasts relation updates to all replicas (relations are replicated,
  matching the scheme's broadcast rule for stream-free join sides);
* pushes an *empty* batch to every non-receiving replica at each
  instant, so all replicas share one event-time frontier and their
  agenda work (window expirations) fires at the same instants it would
  have fired in the single-copy query;
* merges outputs: emissions concatenate (stably sorted by instant),
  relation state is the disjoint union of replica states — disjoint
  because each output row's key lives in exactly one replica, which is
  precisely what the scheme proved.

The public surface mirrors :class:`ContinuousQuery` (push / push_batch /
advance_to / finish / run_recorded / current / as_relation /
emitted_stream / snapshot / restore), so engines and difftest legs can
treat both uniformly; :meth:`physical_roots` exposes one root per
replica where :class:`ContinuousQuery` exposes one total.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from typing import Any, Callable, Mapping, Sequence

from repro.core.errors import PlanError, StateError
from repro.core.operators import R2SKind
from repro.core.records import Record
from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.stream import Stream
from repro.core.time import Timestamp
from repro.plan.ir import LogicalOp
from repro.plan.parallel import PartitionScheme, partition_scheme
from repro.cql.catalog import Catalog
from repro.cql.executor import ContinuousQuery, Emission
from repro.runtime.broker import default_hash

__all__ = ["PartitionedQuery"]


class PartitionedQuery:
    """A continuous query fissioned into key-partitioned replicas."""

    #: Partitioned queries never join shared plan groups (their operator
    #: state is already split across replicas); engines check this the
    #: same way they do on :class:`ContinuousQuery`.
    _shared = None

    def __init__(self, plan: LogicalOp, catalog: Catalog, parallelism: int,
                 kernel: bool = True,
                 scheme: PartitionScheme | None = None) -> None:
        if parallelism < 1:
            raise PlanError(f"parallelism must be >= 1, got {parallelism}")
        if scheme is None:
            scheme = partition_scheme(plan)
        if scheme is None:
            raise PlanError(
                "plan is not key-partitionable; run it with parallelism 1 "
                "(see repro.plan.parallel.partition_scheme)")
        self.plan = plan
        self.catalog = catalog
        self.parallelism = parallelism
        self.scheme = scheme
        self.output_schema = plan.schema
        self._replicas = [ContinuousQuery(plan, catalog, kernel=kernel)
                          for _ in range(parallelism)]
        self.r2s = self._replicas[0].r2s
        # Shared with the replicas by construction; exposed so engine-level
        # "does this query read stream S" checks work on both query kinds.
        self._stream_sources = self._replicas[0]._stream_sources
        self._relation_sources = self._replicas[0]._relation_sources

    @classmethod
    def adopt(cls, query: ContinuousQuery,
              scheme: PartitionScheme | None = None) -> "PartitionedQuery":
        """Wrap an already-running serial query as a width-1 fission.

        The existing query becomes replica 0 *as is* — state, agenda,
        log, emissions all kept — so a serial query can be promoted and
        then live-rescaled (``repro.runtime.rescale``) without replay.
        """
        if query._shared is not None:
            raise StateError(
                "shared-group queries cannot be adopted for fission: their "
                "operator state interleaves with other members'")
        if scheme is None:
            scheme = partition_scheme(query.plan)
        if scheme is None:
            raise PlanError(
                "plan is not key-partitionable; it cannot be promoted to "
                "a fissioned query")
        out = cls.__new__(cls)
        out.plan = query.plan
        out.catalog = query.catalog
        out.parallelism = 1
        out.scheme = scheme
        out.output_schema = query.output_schema
        out._replicas = [query]
        out.r2s = query.r2s
        out._stream_sources = query._stream_sources
        out._relation_sources = query._relation_sources
        return out

    def rescale(self, parallelism: int):
        """Live-migrate to a new width; see :func:`repro.runtime.rescale`."""
        from repro.runtime.rescale import rescale  # lazy: import cycle
        return rescale(self, parallelism)

    # -- routing -------------------------------------------------------------

    def _route(self, stream_name: str,
               rows: Sequence[Mapping[str, Any] | Record]) \
            -> dict[int, list[Record]]:
        """Split one stream's arrivals across replicas by partition key."""
        base_schema = self.catalog.stream(stream_name).schema
        routed: dict[int, list[Record]] = defaultdict(list)
        for row in rows:
            record = (row if isinstance(row, Record)
                      else Record.from_mapping(base_schema, row))
            key = self.scheme.key_for(stream_name, record.values)
            routed[default_hash(key) % self.parallelism].append(record)
        return routed

    # -- feeding -------------------------------------------------------------

    def _feed(self, invoke: Callable[[ContinuousQuery, int],
                                     list[Emission]]) -> list[Emission]:
        """Drive every replica through one feeding call and merge.

        For ISTREAM/DSTREAM (delta semantics) the merge is a plain
        concatenation: each replica emits exactly its own key-partition's
        deltas.  RSTREAM is *not* delta-shaped — the serial query re-emits
        its **entire** state at every instant where the global state
        changes, while a replica only re-emits at instants where *its own
        partition* changed.  So after feeding, any replica that stayed
        quiet at an instant some other replica logged must re-emit its
        current state at that instant, or merged output loses rows
        whenever keys land on different replicas.  (The width-3 difftest
        leg masked this for a long time: ``default_hash(1) % 3 ==
        default_hash(2) % 3``, so the generator's two hot keys co-located.)
        """
        if self.r2s is not R2SKind.RSTREAM or self.parallelism == 1:
            return self._merge([invoke(replica, index)
                                for index, replica in
                                enumerate(self._replicas)])
        marks = [len(replica._log) for replica in self._replicas]
        produced = [invoke(replica, index)
                    for index, replica in enumerate(self._replicas)]
        active: set[Timestamp] = set()
        for replica, mark in zip(self._replicas, marks):
            active.update(t for t, _ in replica._log[mark:])
        for replica, mark, out in zip(self._replicas, marks, produced):
            logged = {t for t, _ in replica._log[mark:]}
            times = [t for t, _ in replica._log]
            for t in sorted(active - logged):
                position = bisect_right(times, t)
                if position == 0:
                    continue  # no state yet at this instant
                _, state = replica._log[position - 1]
                synthesized = [Emission(record, t)
                               for record, mult in state.items()
                               for _ in range(mult)]
                replica._emissions.extend(synthesized)
                out.extend(synthesized)
        return self._merge(produced)

    def start(self, at: Timestamp = 0) -> list[Emission]:
        return self._feed(lambda replica, index: replica.start(at))

    def push(self, stream_name: str, row: Mapping[str, Any] | Record,
             timestamp: Timestamp) -> list[Emission]:
        return self.push_batch(timestamp, {stream_name: [row]})

    def push_batch(self, timestamp: Timestamp,
                   arrivals: Mapping[str, Sequence[Mapping[str, Any]
                                                   | Record]],
                   ) -> list[Emission]:
        """Push all arrivals carrying ``timestamp``, atomically.

        Every replica processes the instant — receivers with their share
        of the batch, the rest with an empty one — so window expirations
        fire on all replicas at the same event times.
        """
        per_replica: list[dict[str, list[Record]]] = \
            [{} for _ in range(self.parallelism)]
        for name, rows in arrivals.items():
            if name not in self._stream_sources:
                raise PlanError(f"query does not read stream {name!r}")
            for index, routed in self._route(name, rows).items():
                per_replica[index][name] = routed
        return self._feed(lambda replica, index: replica.push_batch(
            timestamp, per_replica[index]))

    def update_relation(self, name: str, row: Mapping[str, Any] | Record,
                        mult: int, timestamp: Timestamp) -> list[Emission]:
        """Relations are replicated: updates broadcast to every replica."""
        return self._feed(lambda replica, index: replica.update_relation(
            name, row, mult, timestamp))

    def advance_to(self, timestamp: Timestamp) -> list[Emission]:
        return self._feed(
            lambda replica, index: replica.advance_to(timestamp))

    def finish(self) -> list[Emission]:
        return self._feed(lambda replica, index: replica.finish())

    def run_recorded(self, streams: Mapping[str, Stream[Record]],
                     finish: bool = True) -> list[Emission]:
        """Replay recorded streams with exact per-instant batching (the
        same contract as :meth:`ContinuousQuery.run_recorded`)."""
        arrivals: dict[Timestamp, dict[str, list[Record]]] = defaultdict(
            lambda: defaultdict(list))
        for name, stream in streams.items():
            for element in stream:
                arrivals[element.timestamp][name].append(element.value)
        emitted: list[Emission] = list(self.start())
        for t in sorted(arrivals):
            emitted.extend(self.push_batch(t, arrivals[t]))
        if finish:
            emitted.extend(self.finish())
        return emitted

    @staticmethod
    def _merge(per_replica: list[list[Emission]]) -> list[Emission]:
        merged = [e for emissions in per_replica for e in emissions]
        merged.sort(key=lambda e: e.timestamp)  # stable: replica order kept
        return merged

    # -- inspection ----------------------------------------------------------

    def current(self) -> Bag:
        """The maintained relation state: the union of replica states.

        Disjoint by the scheme's key-locality proof, so a plain bag sum.
        """
        merged = Bag()
        for replica in self._replicas:
            for record, mult in replica.current().items():
                merged.add(record, mult)
        return merged

    def emissions(self) -> list[Emission]:
        return self._merge([r.emissions() for r in self._replicas])

    def emitted_stream(self) -> Stream[Record]:
        """The merged output as a :class:`Stream` (sorted within each
        instant, matching :meth:`ContinuousQuery.emitted_stream`)."""
        out: Stream[Record] = Stream(schema=self.output_schema)
        by_time: dict[Timestamp, list[Record]] = defaultdict(list)
        for replica in self._replicas:
            for emission in replica.emissions():
                by_time[emission.timestamp].append(emission.record)
        for t in sorted(by_time):
            for record in sorted(by_time[t], key=repr):
                out.append(record, t)
        return out

    def _merged_log(self) -> list[tuple[Timestamp, Bag]]:
        """The global change-log: at every instant any replica logged,
        the union of each replica's latest state at or before it."""
        logs: list[dict[Timestamp, Bag]] = []
        instants: set[Timestamp] = set()
        for replica in self._replicas:
            last_per_instant: dict[Timestamp, Bag] = {}
            for t, bag in replica._log:
                last_per_instant[t] = bag
            logs.append(last_per_instant)
            instants.update(last_per_instant)
        cursors = [sorted(log) for log in logs]
        positions = [0] * len(logs)
        latest: list[Bag | None] = [None] * len(logs)
        merged_log: list[tuple[Timestamp, Bag]] = []
        for t in sorted(instants):
            merged = Bag()
            for i, log in enumerate(logs):
                times = cursors[i]
                while positions[i] < len(times) and times[positions[i]] <= t:
                    latest[i] = log[times[positions[i]]]
                    positions[i] += 1
                if latest[i] is not None:
                    for record, mult in latest[i].items():
                        merged.add(record, mult)
            merged_log.append((t, merged))
        return merged_log

    @property
    def _log(self) -> list[tuple[Timestamp, Bag]]:
        """Merged change-log, same shape as ``ContinuousQuery._log``
        (computed on demand — the replicas own the authoritative logs)."""
        return self._merged_log()

    def as_relation(self) -> TimeVaryingRelation:
        """The merged change-log as a time-varying relation."""
        relation = TimeVaryingRelation(schema=self.output_schema)
        for t, bag in self._merged_log():
            relation.set_at(t, bag)
        return relation

    @property
    def deltas_processed(self) -> int:
        return sum(r.deltas_processed for r in self._replicas)

    def physical_roots(self) -> list:
        """One physical root per replica (state accounting, EXPLAIN)."""
        return [r._root for r in self._replicas]

    def replicas(self) -> list[ContinuousQuery]:
        return list(self._replicas)

    def publish_metrics(self, registry=None, prefix: str = "exec.operator",
                        **labels: str) -> None:
        """Publish per-operator counters, one ``replica=i`` label per
        replica so fissioned copies of an operator stay distinguishable."""
        for index, replica in enumerate(self._replicas):
            replica.publish_metrics(registry, prefix,
                                    **dict(labels, replica=str(index)))

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return {
            "parallelism": self.parallelism,
            "replicas": [r.snapshot() for r in self._replicas],
        }

    def restore(self, payload: Mapping[str, Any]) -> None:
        if payload["parallelism"] != self.parallelism:
            raise StateError(
                f"snapshot taken at parallelism {payload['parallelism']}, "
                f"cannot restore into {self.parallelism} replicas — keys "
                f"would re-route across partitions")
        for replica, state in zip(self._replicas, payload["replicas"]):
            replica.restore(state)
