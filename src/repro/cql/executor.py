"""Incremental (delta-based) execution of continuous query plans.

This is the *physical* layer corresponding to the paper's Section 3.2: the
query is compiled once into a tree of incremental operators and then runs
until cancelled, processing only changes.  All operators exchange **deltas**
``(record, ±multiplicity)``; window operators turn arrivals into ``+1``
deltas and expirations into ``-1`` deltas (driven by an event-time agenda),
joins apply the bilinear delta rule, aggregates retract and re-emit changed
group rows, and the R2S operators at the root reduce to selecting the
``+``/``-`` sides of the root delta stream (ISTREAM/DSTREAM) or snapshotting
maintained state (RSTREAM).

Correctness contract: when all arrivals carrying one timestamp are pushed
together (which :meth:`ContinuousQuery.run_recorded` guarantees), the
maintained state at every instant equals the reference denotational
evaluation (:mod:`repro.cql.reference`), and the ISTREAM/DSTREAM outputs
equal the reference R2S streams.
"""

from __future__ import annotations

import copy
import heapq
import time
from collections import Counter, defaultdict, deque
from typing import Any, Callable, Mapping, NamedTuple, Sequence

from repro.obs import get_registry as _obs_registry
# Hot-path gate: reading the state attribute directly (instead of calling
# is_enabled()) keeps the per-operator disabled cost to one attribute load.
from repro.obs import _STATE as _obs_state

from repro.core.errors import PlanError, StateError, TimeError
from repro.core.operators import AggregateKind, R2SKind
from repro.core.records import Record, Schema
from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.stream import Stream
from repro.core.time import MIN_TIMESTAMP, Timestamp
from repro.plan.ir import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    RelationScan,
    RelToStream,
    SetOp,
    StreamScan,
    WindowOp,
)
from repro.cql.ast import WindowSpecKind
from repro.cql.catalog import Catalog
from repro.cql.expressions import compile_expr, compile_predicate


class Delta(NamedTuple):
    """A signed record change flowing between physical operators."""

    record: Record
    mult: int


class Agenda:
    """The executor's event-time agenda: future instants needing work.

    Window operators register expiry/boundary instants here; the driver
    processes them in order so that evictions happen even when no new
    element arrives (the classic DSMS "heartbeat" problem).
    """

    def __init__(self) -> None:
        self._heap: list[Timestamp] = []
        self._scheduled: set[Timestamp] = set()

    def schedule(self, t: Timestamp) -> None:
        if t not in self._scheduled:
            self._scheduled.add(t)
            heapq.heappush(self._heap, t)

    def due(self, t: Timestamp) -> list[Timestamp]:
        """Pop and return all scheduled instants ``<= t``, in order."""
        out = []
        while self._heap and self._heap[0] <= t:
            instant = heapq.heappop(self._heap)
            self._scheduled.discard(instant)
            out.append(instant)
        return out

    def drain(self) -> list[Timestamp]:
        """Pop everything (used by ``finish``)."""
        out = sorted(self._heap)
        self._heap.clear()
        self._scheduled.clear()
        return out

    def __len__(self) -> int:
        return len(self._heap)

    def snapshot(self) -> dict[str, Any]:
        """Capture the scheduled instants (for checkpointing)."""
        return {"heap": list(self._heap),
                "scheduled": set(self._scheduled)}

    def restore(self, payload: Mapping[str, Any]) -> None:
        self._heap = list(payload["heap"])
        heapq.heapify(self._heap)
        self._scheduled = set(payload["scheduled"])


class PhysicalOp:
    """Base physical operator: children + per-instant delta processing.

    ``process_instant`` also propagates an *activity* flag: whether any
    source in the subtree was touched at this instant (even if no delta
    survived the operators in between).  This mirrors the reference
    evaluator, whose time-varying relations record a change point at every
    input-relevant instant — global aggregates rely on it to materialise
    their zero row at the right instant.
    """

    #: Instance attributes that constitute this operator's mutable state.
    #: Subclasses extend this; snapshot/restore deep-copy exactly these, so
    #: compiled artefacts (predicates, schemas, the agenda reference) stay
    #: shared between the live tree and its checkpoints.
    _STATE_ATTRS: tuple[str, ...] = ()

    def __init__(self, children: Sequence["PhysicalOp"]) -> None:
        self.children = list(children)
        #: Total deltas this operator has emitted (a work measure).
        self.emitted = 0
        #: Total deltas received from children (rows-in accounting).
        self.received = 0
        #: Cumulative seconds spent in ``process`` (only accumulated while
        #: observability is enabled; see :mod:`repro.obs`).
        self.eval_seconds = 0.0

    def snapshot(self) -> dict[str, Any]:
        """A self-contained copy of this operator's mutable state."""
        payload: dict[str, Any] = {
            attr: copy.deepcopy(getattr(self, attr))
            for attr in self._STATE_ATTRS}
        payload["emitted"] = self.emitted
        payload["received"] = self.received
        return payload

    def restore(self, payload: Mapping[str, Any]) -> None:
        """Reset this operator's state to a snapshot, in place.

        The payload is deep-copied again so one checkpoint can be restored
        from any number of times (retried recoveries must not share state
        with the snapshot they roll back to).
        """
        for attr in self._STATE_ATTRS:
            setattr(self, attr, copy.deepcopy(payload[attr]))
        self.emitted = payload["emitted"]
        self.received = payload["received"]

    def process(self, t: Timestamp,
                child_deltas: list[list[Delta]]) -> list[Delta]:
        """Consume one batch of child deltas at instant ``t``."""
        raise NotImplementedError

    def _timed_process(self, t: Timestamp,
                       child_deltas: list[list[Delta]]) -> list[Delta]:
        """``process`` with eval-time accounting (the enabled-only path)."""
        started = time.perf_counter()
        deltas = self.process(t, child_deltas)
        self.eval_seconds += time.perf_counter() - started
        return deltas

    def apply(self, t: Timestamp, child_deltas: list[list[Delta]],
              child_active: bool) -> tuple[list[Delta], bool]:
        """Process one instant's child batches (with accounting).

        This is the per-operator step shared by the legacy pull recursion
        (:meth:`process_instant`) and the push-based kernel adapters in
        :mod:`repro.cql.kernel`, which supply ``child_deltas`` from
        upstream kernel emissions instead of recursing.
        """
        for deltas in child_deltas:
            self.received += len(deltas)
        if _obs_state.enabled:
            deltas = self._timed_process(t, child_deltas)
        else:
            deltas = self.process(t, child_deltas)
        self.emitted += len(deltas)
        return deltas, bool(deltas) or child_active

    def process_instant(self, t: Timestamp) -> tuple[list[Delta], bool]:
        """Recursively process instant ``t``; returns (deltas, active)."""
        child_results = [child.process_instant(t)
                         for child in self.children]
        return self.apply(t, [d for d, _ in child_results],
                          any(a for _, a in child_results))


# ---------------------------------------------------------------------------
# Sources (S2R windows over pushed arrivals)
# ---------------------------------------------------------------------------


class StreamSourceOp(PhysicalOp):
    """Windowed stream source.

    The executor stages arriving records here; ``process`` turns them into
    ``+1`` deltas and handles window eviction (``-1`` deltas) according to
    the window specification.

    ``prefilter`` is the physical form of a filter the optimizer pushed
    below the window (``push_filter_through_window``): rejected arrivals
    are dropped before they enter the window buffer — the state saving
    the rewrite exists for — but still mark the source *active* at their
    instant, so the maintained relation keeps the same change points as
    the un-rewritten plan (the reference evaluates the pushed filter
    above the window).
    """

    _STATE_ATTRS = ("_staged", "_expiries", "_fifo", "_per_key",
                    "_pending", "_visible", "_arrived", "evicted")

    def __init__(self, scan: StreamScan, spec, agenda: Agenda,
                 prefilter: Callable[[Record], bool] | None = None) -> None:
        super().__init__([])
        self.scan = scan
        self.spec = spec
        self._prefilter = prefilter
        self._agenda = agenda
        self._staged: list[Record] = []
        # Range/Now state: expiry time -> records.
        self._expiries: dict[Timestamp, list[Record]] = defaultdict(list)
        # Rows state: FIFO of live records.
        self._fifo: deque[Record] = deque()
        self._per_key: dict[tuple, deque[Record]] = defaultdict(deque)
        if spec.kind is WindowSpecKind.PARTITIONED:
            indexes = [scan.schema.index_of(c) for c in spec.partition_by]
            self._key_fn = lambda r: tuple(r[i] for i in indexes)
        # Stepped-range state: (record, enter_boundary, exit_boundary).
        self._pending: list[tuple[Record, Timestamp, Timestamp]] = []
        self._visible: list[tuple[Record, Timestamp]] = []
        self._arrived = False
        #: Total tuples ever evicted from this window (Throw accounting).
        self.evicted = 0
        #: Raw arrivals staged here, counted *before* the prefilter, so
        #: explain_analyze can report the source's live selectivity.
        #: Deliberately not in _STATE_ATTRS: like received/emitted it is
        #: lifetime accounting, not recoverable window state.
        self.arrivals = 0

    def process_instant(self, t: Timestamp) -> tuple[list[Delta], bool]:
        arrived = self._arrived
        self._arrived = False
        deltas = (self._timed_process(t, []) if _obs_state.enabled
                  else self.process(t, []))
        self.emitted += len(deltas)
        return deltas, arrived or bool(deltas)

    def stage(self, record: Record, t: Timestamp) -> None:
        """Queue a (schema-qualified) arrival for the next process call."""
        self._arrived = True
        self.arrivals += 1
        if self._prefilter is not None and not self._prefilter(record):
            return
        self._staged.append(record)
        kind = self.spec.kind
        if kind is WindowSpecKind.RANGE and self.spec.slide:
            enter = self._ceil_boundary(t)
            exit_ = self._ceil_boundary(t + self.spec.range_)
            self._pending.append((record, enter, exit_))
            self._staged.pop()  # stepped windows bypass the direct path
            self._agenda.schedule(enter)
            self._agenda.schedule(exit_)
        elif kind is WindowSpecKind.RANGE:
            self._expiries[t + self.spec.range_].append(record)
            self._agenda.schedule(t + self.spec.range_)
        elif kind is WindowSpecKind.NOW:
            self._expiries[t + 1].append(record)
            self._agenda.schedule(t + 1)

    @property
    def state_size(self) -> int:
        """Tuples currently buffered by the window (Scratch accounting)."""
        return (sum(len(v) for v in self._expiries.values())
                + len(self._fifo)
                + sum(len(q) for q in self._per_key.values())
                + len(self._pending) + len(self._visible))

    def _ceil_boundary(self, t: Timestamp) -> Timestamp:
        slide = self.spec.slide
        return -((-t) // slide) * slide

    def process(self, t: Timestamp,
                child_deltas: list[list[Delta]]) -> list[Delta]:
        out: list[Delta] = []
        kind = self.spec.kind

        if kind is WindowSpecKind.RANGE and self.spec.slide:
            still_pending = []
            for record, enter, exit_ in self._pending:
                if enter <= t:
                    out.append(Delta(record, +1))
                    self._visible.append((record, exit_))
                else:
                    still_pending.append((record, enter, exit_))
            self._pending = still_pending
            still_visible = []
            for record, exit_ in self._visible:
                if exit_ <= t:
                    out.append(Delta(record, -1))
                    self.evicted += 1
                else:
                    still_visible.append((record, exit_))
            self._visible = still_visible
            return out

        # Time-based eviction first (Range / Now).
        if self._expiries:
            for expiry in sorted(e for e in self._expiries if e <= t):
                for record in self._expiries.pop(expiry):
                    out.append(Delta(record, -1))
                    self.evicted += 1

        for record in self._staged:
            out.append(Delta(record, +1))
            if kind is WindowSpecKind.ROWS:
                self._fifo.append(record)
                if len(self._fifo) > self.spec.rows:
                    out.append(Delta(self._fifo.popleft(), -1))
                    self.evicted += 1
            elif kind is WindowSpecKind.PARTITIONED:
                queue = self._per_key[self._key_fn(record)]
                queue.append(record)
                if len(queue) > self.spec.rows:
                    out.append(Delta(queue.popleft(), -1))
                    self.evicted += 1
        self._staged.clear()
        return out


class RelationSourceOp(PhysicalOp):
    """A base relation: emits its initial contents once, then staged updates."""

    _STATE_ATTRS = ("_initial", "_staged")

    def __init__(self, scan: RelationScan, initial: Bag) -> None:
        super().__init__([])
        self.scan = scan
        self._initial: Bag | None = initial
        self._staged: list[Delta] = []

    def stage_update(self, record: Record, mult: int) -> None:
        self._staged.append(
            Delta(record.with_schema(self.scan.schema), mult))

    def process_instant(self, t: Timestamp) -> tuple[list[Delta], bool]:
        initial = self._initial is not None
        staged = bool(self._staged)
        deltas = (self._timed_process(t, []) if _obs_state.enabled
                  else self.process(t, []))
        self.emitted += len(deltas)
        return deltas, initial or staged or bool(deltas)

    def process(self, t: Timestamp,
                child_deltas: list[list[Delta]]) -> list[Delta]:
        out: list[Delta] = []
        if self._initial is not None:
            for record, count in self._initial.items():
                out.append(Delta(record.with_schema(self.scan.schema),
                                 count))
            self._initial = None
        out.extend(self._staged)
        self._staged.clear()
        return out


# ---------------------------------------------------------------------------
# Stateless operators
# ---------------------------------------------------------------------------


class FilterOp(PhysicalOp):
    def __init__(self, child: PhysicalOp,
                 predicate: Callable[[Record], bool]) -> None:
        super().__init__([child])
        self._predicate = predicate

    def process(self, t, child_deltas):
        (deltas,) = child_deltas
        return [d for d in deltas if self._predicate(d.record)]


class ProjectOp(PhysicalOp):
    def __init__(self, child: PhysicalOp,
                 mapper: Callable[[Record], Record]) -> None:
        super().__init__([child])
        self._mapper = mapper

    def process(self, t, child_deltas):
        (deltas,) = child_deltas
        return [Delta(self._mapper(d.record), d.mult) for d in deltas]


# ---------------------------------------------------------------------------
# Stateful operators
# ---------------------------------------------------------------------------


class JoinOp(PhysicalOp):
    """Symmetric incremental join with the bilinear delta rule.

    ``Δ(L ⋈ R) = ΔL ⋈ R_old  ∪  L_new ⋈ ΔR`` — applied per batch, with
    multiplicities multiplying.  Keys come from the plan's extracted
    equi-join columns; an empty key degenerates to an incremental cross
    join.  A residual predicate filters joined records.
    """

    _STATE_ATTRS = ("_left_state", "_right_state")

    def __init__(self, left: PhysicalOp, right: PhysicalOp,
                 left_key: Callable[[Record], tuple],
                 right_key: Callable[[Record], tuple],
                 residual: Callable[[Record], bool] | None) -> None:
        super().__init__([left, right])
        self._left_key = left_key
        self._right_key = right_key
        self._residual = residual
        self._left_state: dict[tuple, Counter] = defaultdict(Counter)
        self._right_state: dict[tuple, Counter] = defaultdict(Counter)

    def _emit(self, left_record: Record, right_record: Record,
              mult: int, out: list[Delta]) -> None:
        joined = left_record.concat(right_record)
        if self._residual is None or self._residual(joined):
            out.append(Delta(joined, mult))

    def process(self, t, child_deltas):
        left_deltas, right_deltas = child_deltas
        # SQL three-valued logic: a NULL key component can never satisfy the
        # originating equality predicate, so such rows join nothing and are
        # not worth indexing (keeps the incremental join aligned with the
        # naive filtered-cross-product plan).
        left_deltas = [(r, m) for r, m in left_deltas
                       if None not in self._left_key(r)]
        right_deltas = [(r, m) for r, m in right_deltas
                        if None not in self._right_key(r)]
        out: list[Delta] = []
        # ΔL against the old right state.
        for record, mult in left_deltas:
            key = self._left_key(record)
            for right_record, count in self._right_state[key].items():
                self._emit(record, right_record, mult * count, out)
        # Fold ΔL into the left state (L_new).
        for record, mult in left_deltas:
            self._apply(self._left_state, self._left_key(record),
                        record, mult)
        # L_new against ΔR.
        for record, mult in right_deltas:
            key = self._right_key(record)
            for left_record, count in self._left_state[key].items():
                self._emit(left_record, record, count * mult, out)
        for record, mult in right_deltas:
            self._apply(self._right_state, self._right_key(record),
                        record, mult)
        return out

    @staticmethod
    def _apply(state: dict[tuple, Counter], key: tuple, record: Record,
               mult: int) -> None:
        counter = state[key]
        counter[record] += mult
        if counter[record] == 0:
            del counter[record]
        if not counter:
            del state[key]

    @property
    def state_size(self) -> int:
        return (sum(sum(c.values()) for c in self._left_state.values())
                + sum(sum(c.values()) for c in self._right_state.values()))


class AppendOnlyJoinOp(JoinOp):
    """Join over provably append-only inputs — the monotone fast path.

    The monotonicity pass (:mod:`repro.plan.monotone`) proves both input
    sub-plans are monotonic, so no retraction can ever arrive; the
    operator indexes plain insert-only lists instead of multiplicity
    counters.  This is the incremental SPJ rewrite of Section 3.2 applied
    at plan time, where — and only where — it is legal.
    """

    _STATE_ATTRS = JoinOp._STATE_ATTRS + ("_left_index", "_right_index")

    def __init__(self, left: PhysicalOp, right: PhysicalOp,
                 left_key: Callable[[Record], tuple],
                 right_key: Callable[[Record], tuple],
                 residual: Callable[[Record], bool] | None) -> None:
        super().__init__(left, right, left_key, right_key, residual)
        self._left_index: dict[tuple, list[tuple[Record, int]]] = \
            defaultdict(list)
        self._right_index: dict[tuple, list[tuple[Record, int]]] = \
            defaultdict(list)

    def process(self, t, child_deltas):
        left_deltas, right_deltas = child_deltas
        out: list[Delta] = []
        for record, mult in left_deltas:
            if mult < 0:
                raise StateError("retraction reached an append-only join")
            key = self._left_key(record)
            if None in key:
                continue
            for right_record, count in self._right_index.get(key, ()):
                self._emit(record, right_record, mult * count, out)
            self._left_index[key].append((record, mult))
        for record, mult in right_deltas:
            if mult < 0:
                raise StateError("retraction reached an append-only join")
            key = self._right_key(record)
            if None in key:
                continue
            for left_record, count in self._left_index.get(key, ()):
                self._emit(left_record, record, count * mult, out)
            self._right_index[key].append((record, mult))
        return out

    @property
    def state_size(self) -> int:
        return (sum(sum(m for _, m in v) for v in self._left_index.values())
                + sum(sum(m for _, m in v)
                      for v in self._right_index.values()))


class _MinMaxAccumulator:
    """Multiset of values with min/max on demand (supports retraction)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def add(self, value: Any, mult: int) -> None:
        self._counts[value] += mult
        if self._counts[value] == 0:
            del self._counts[value]

    def minimum(self) -> Any:
        return min(self._counts) if self._counts else None

    def maximum(self) -> Any:
        return max(self._counts) if self._counts else None


class _GroupState:
    """Per-group accumulators for one Aggregate operator."""

    __slots__ = ("rows", "counts", "sums", "minmax")

    def __init__(self, n_aggs: int) -> None:
        self.rows = 0                      # total input multiplicity
        self.counts = [0] * n_aggs         # non-null count per aggregate
        self.sums = [0] * n_aggs           # running sum (SUM / AVG)
        self.minmax: list[_MinMaxAccumulator | None] = [None] * n_aggs


class AggregateOp(PhysicalOp):
    """Incremental grouped aggregation with retractions.

    For each input batch the operator updates group accumulators and emits
    ``-old_row`` / ``+new_row`` deltas for every group whose output row
    changed.  Groups with zero rows disappear (keyed aggregation) — except
    the global group, which once touched keeps reporting (COUNT = 0), the
    SQL behaviour the reference evaluator implements.
    """

    _STATE_ATTRS = ("_groups", "_current_rows", "_child_active")

    def __init__(self, plan: Aggregate, in_schema: Schema) -> None:
        super().__init__([])  # children attached by compiler
        self._plan = plan
        self._out_schema = plan.schema
        self._group_indexes = [in_schema.index_of(c) for c in plan.group_by]
        self._evaluators = [
            None if spec.arg is None else compile_expr(spec.arg, in_schema)
            for spec in plan.aggregates]
        self._kinds = [spec.kind for spec in plan.aggregates]
        self._groups: dict[tuple, _GroupState] = {}
        self._current_rows: dict[tuple, Record] = {}
        self._global = not plan.group_by
        self._child_active = False

    def apply(self, t: Timestamp, child_deltas: list[list[Delta]],
              child_active: bool) -> tuple[list[Delta], bool]:
        # ``process`` consults the child's activity flag to decide when the
        # global group materialises its zero row, so stash it first.
        self._child_active = child_active
        return super().apply(t, child_deltas, child_active)

    def process(self, t, child_deltas):
        (deltas,) = child_deltas
        # The global group materialises its zero row at the first instant
        # the input subtree is active — matching the reference evaluator,
        # whose aggregate has a change point wherever its child does.
        materialise_global = (self._global and not self._groups
                              and getattr(self, "_child_active", bool(deltas)))
        if not deltas and not materialise_global:
            return []
        touched: set[tuple] = set()
        if self._global:
            touched.add(())
            self._groups.setdefault((), _GroupState(len(self._kinds)))
        for record, mult in deltas:
            key = tuple(record[i] for i in self._group_indexes)
            touched.add(key)
            group = self._groups.get(key)
            if group is None:
                group = _GroupState(len(self._kinds))
                self._groups[key] = group
            self._fold(group, record, mult)
        out: list[Delta] = []
        for key in touched:
            group = self._groups[key]
            old_row = self._current_rows.get(key)
            new_row = self._row_for(key, group)
            if old_row == new_row:
                continue
            if old_row is not None:
                out.append(Delta(old_row, -1))
            if new_row is not None:
                out.append(Delta(new_row, +1))
                self._current_rows[key] = new_row
            else:
                del self._current_rows[key]
                del self._groups[key]
        return out

    @property
    def state_size(self) -> int:
        return len(self._groups)

    def _fold(self, group: _GroupState, record: Record, mult: int) -> None:
        group.rows += mult
        for i, (kind, evaluator) in enumerate(
                zip(self._kinds, self._evaluators)):
            if evaluator is None:  # COUNT(*)
                group.counts[i] += mult
                continue
            value = evaluator(record)
            if value is None:
                continue
            group.counts[i] += mult
            if kind in (AggregateKind.SUM, AggregateKind.AVG):
                group.sums[i] += value * mult
            elif kind in (AggregateKind.MIN, AggregateKind.MAX):
                if group.minmax[i] is None:
                    group.minmax[i] = _MinMaxAccumulator()
                group.minmax[i].add(value, mult)

    def _row_for(self, key: tuple, group: _GroupState) -> Record | None:
        if group.rows < 0:
            raise StateError("aggregate group multiplicity went negative")
        if group.rows == 0 and not self._global:
            return None
        values: list[Any] = list(key)
        for i, kind in enumerate(self._kinds):
            count = group.counts[i]
            if kind is AggregateKind.COUNT:
                values.append(count)
            elif count == 0:
                values.append(None)
            elif kind is AggregateKind.SUM:
                values.append(group.sums[i])
            elif kind is AggregateKind.AVG:
                values.append(group.sums[i] / count)
            elif kind is AggregateKind.MIN:
                values.append(group.minmax[i].minimum())
            else:
                values.append(group.minmax[i].maximum())
        return Record(self._out_schema, values, validate=False)


class DistinctOp(PhysicalOp):
    """Incremental duplicate elimination: emits 0→1 and 1→0 transitions."""

    _STATE_ATTRS = ("_counts",)

    def __init__(self, child: PhysicalOp) -> None:
        super().__init__([child])
        self._counts: Counter = Counter()

    @property
    def state_size(self) -> int:
        return len(self._counts)

    def process(self, t, child_deltas):
        (deltas,) = child_deltas
        out: list[Delta] = []
        for record, mult in deltas:
            before = self._counts[record]
            after = before + mult
            if after < 0:
                raise StateError("distinct multiplicity went negative")
            self._counts[record] = after
            if after == 0:
                del self._counts[record]
            if before == 0 and after > 0:
                out.append(Delta(record, +1))
            elif before > 0 and after == 0:
                out.append(Delta(record, -1))
        return out


class AppendOnlyDistinctOp(DistinctOp):
    """Duplicate elimination over a provably append-only input.

    With no retractions possible, a seen-set replaces the multiplicity
    counter: first occurrence emits ``+1``, everything after is dropped.
    """

    _STATE_ATTRS = ("_seen",)

    def __init__(self, child: PhysicalOp) -> None:
        PhysicalOp.__init__(self, [child])
        self._seen: set[Record] = set()

    @property
    def state_size(self) -> int:
        return len(self._seen)

    def process(self, t, child_deltas):
        (deltas,) = child_deltas
        out: list[Delta] = []
        for record, mult in deltas:
            if mult < 0:
                raise StateError(
                    "retraction reached an append-only distinct")
            if mult and record not in self._seen:
                self._seen.add(record)
                out.append(Delta(record, +1))
        return out


class SetOpOp(PhysicalOp):
    """Incremental bag union / difference / intersection.

    Union is linear (pass deltas through, relabelled to the output schema).
    Difference and intersection maintain both sides' multiplicities and
    re-derive each affected record's output multiplicity.
    """

    _STATE_ATTRS = ("_left", "_right", "_out")

    def __init__(self, kind: str, left: PhysicalOp, right: PhysicalOp,
                 out_schema: Schema) -> None:
        super().__init__([left, right])
        self._kind = kind
        self._schema = out_schema
        self._left: Counter = Counter()
        self._right: Counter = Counter()
        self._out: Counter = Counter()

    def _relabel(self, record: Record) -> Record:
        return record.with_schema(self._schema)

    def process(self, t, child_deltas):
        left_deltas, right_deltas = child_deltas
        if self._kind == "union":
            return ([Delta(self._relabel(r), m) for r, m in left_deltas]
                    + [Delta(self._relabel(r), m) for r, m in right_deltas])
        touched: set[Record] = set()
        for record, mult in left_deltas:
            record = self._relabel(record)
            self._left[record] += mult
            touched.add(record)
        for record, mult in right_deltas:
            record = self._relabel(record)
            self._right[record] += mult
            touched.add(record)
        out: list[Delta] = []
        for record in touched:
            left_count = self._left[record]
            right_count = self._right[record]
            if self._kind == "difference":
                target = max(0, left_count - right_count)
            else:  # intersection
                target = min(left_count, right_count)
            change = target - self._out[record]
            if change:
                out.append(Delta(record, change))
                self._out[record] = target
        return out


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------


def _subtree_streams(op: PhysicalOp) -> dict[str, list[StreamSourceOp]]:
    """The stream sources inside a physical subtree (for the memo)."""
    found: dict[str, list[StreamSourceOp]] = defaultdict(list)
    stack = [op]
    while stack:
        current = stack.pop()
        if isinstance(current, StreamSourceOp):
            found[current.scan.name].append(current)
        stack.extend(current.children)
    return dict(found)


def _executor_append_only(node: LogicalOp) -> bool:
    """Append-only fast path legality for the executor.

    The static classifier calls relation scans monotonic (the append-only
    database model), but this executor supports deletes on base relations
    (:meth:`ContinuousQuery.update_relation`), so a subtree reading a
    relation may still see retractions and must keep counted state.
    """
    from repro.plan.ir import RelationScan as _RelScan, walk as _walk
    from repro.plan.monotone import append_only_inputs
    if not append_only_inputs(node):
        return False
    return not any(isinstance(n, _RelScan) for n in _walk(node))


def compile_plan(plan: LogicalOp, catalog: Catalog, agenda: Agenda,
                 memo=None,
                 ) -> tuple[PhysicalOp, dict[str, list[StreamSourceOp]],
                            dict[str, list[RelationSourceOp]],
                            dict[int, PhysicalOp]]:
    """Compile a logical plan into a physical tree.

    Returns the root physical operator, the stream/relation source maps
    (name → source operators) the driver feeds, and a ``id(logical node)
    → physical op`` map that lets EXPLAIN ANALYZE annotate the logical IR
    with live execution statistics (window-consumed filter/scan nodes map
    to their window source; memo-shared subtrees map to the shared op).

    ``memo`` is an optional :class:`repro.plan.sharing.SubplanMemo`: when
    given, subtrees whose canonical signature matches an already-compiled
    subtree from an earlier query reuse that physical operator (and its
    window state) instead of compiling a private copy, and freshly built
    subtrees are published for later queries.  The caller must bracket the
    call with ``memo.start_compile()`` / ``memo.finish_compile()``.
    """
    stream_sources: dict[str, list[StreamSourceOp]] = defaultdict(list)
    relation_sources: dict[str, list[RelationSourceOp]] = defaultdict(list)
    node_map: dict[int, PhysicalOp] = {}
    if memo is not None:
        from repro.plan.sharing import memo_key
    else:
        memo_key = None

    def build(node: LogicalOp) -> PhysicalOp:
        if isinstance(node, RelToStream):
            raise PlanError("R2S must be the plan root")
        key = memo_key(node) if memo is not None else None
        if memo is not None:
            hit = memo.lookup(key)
            if hit is not None:
                shared_op, shared_streams = hit
                for name, sources in shared_streams.items():
                    stream_sources[name].extend(sources)
                _record(node, shared_op)
                return shared_op
        op = _build_fresh(node)
        if memo is not None:
            memo.publish(key, (op, _subtree_streams(op)))
        _record(node, op)
        return op

    def _record(node: LogicalOp, op: PhysicalOp) -> None:
        node_map[id(node)] = op
        if isinstance(node, WindowOp):
            # Pushed-below-window filters and the scan compiled *into*
            # the source op; point their logical nodes at it too.
            inner = node.child
            while isinstance(inner, Filter):
                node_map[id(inner)] = op
                inner = inner.child
            node_map[id(inner)] = op

    def _build_fresh(node: LogicalOp) -> PhysicalOp:
        if isinstance(node, WindowOp):
            # The optimizer may have pushed filters below the window; they
            # compile into a source prefilter (see StreamSourceOp).
            inner = node.child
            predicates = []
            while isinstance(inner, Filter):
                predicates.append(inner.predicate)
                inner = inner.child
            scan = inner
            if not isinstance(scan, StreamScan):
                raise PlanError("window operator must sit on a stream scan")
            prefilter = None
            if predicates:
                compiled = [compile_predicate(p, scan.schema)
                            for p in predicates]
                if len(compiled) == 1:
                    prefilter = compiled[0]
                else:
                    prefilter = (lambda r, _preds=compiled:
                                 all(p(r) for p in _preds))
            source = StreamSourceOp(scan, node.spec, agenda,
                                    prefilter=prefilter)
            stream_sources[scan.name].append(source)
            return source
        if isinstance(node, StreamScan):
            raise PlanError(
                f"bare stream scan {node.name!r}: apply a window first")
        if isinstance(node, RelationScan):
            source = RelationSourceOp(
                node, catalog.relation(node.name).contents.copy())
            relation_sources[node.name].append(source)
            return source
        if isinstance(node, Filter):
            child = build(node.child)
            predicate = compile_predicate(node.predicate, node.child.schema)
            return FilterOp(child, predicate)
        if isinstance(node, Project):
            child = build(node.child)
            evaluators = [compile_expr(e, node.child.schema)
                          for e in node.exprs]
            schema = node.schema

            def mapper(record: Record,
                       _evals=evaluators, _schema=schema) -> Record:
                return Record(_schema,
                              tuple(e(record) for e in _evals),
                              validate=False)

            return ProjectOp(child, mapper)
        if isinstance(node, Join):
            left = build(node.left)
            right = build(node.right)
            left_schema = node.left.schema
            right_schema = node.right.schema
            left_idx = [left_schema.index_of(c) for c in node.left_keys]
            right_idx = [right_schema.index_of(c) for c in node.right_keys]
            residual = (compile_predicate(node.residual, node.schema)
                        if node.residual is not None else None)
            join_cls = (AppendOnlyJoinOp if _executor_append_only(node)
                        else JoinOp)
            return join_cls(
                left, right,
                left_key=lambda r, _i=left_idx: tuple(r[i] for i in _i),
                right_key=lambda r, _i=right_idx: tuple(r[i] for i in _i),
                residual=residual)
        if isinstance(node, Aggregate):
            child = build(node.child)
            op = AggregateOp(node, node.child.schema)
            op.children = [child]
            return op
        if isinstance(node, Distinct):
            distinct_cls = (AppendOnlyDistinctOp
                            if _executor_append_only(node) else DistinctOp)
            return distinct_cls(build(node.child))
        if isinstance(node, SetOp):
            return SetOpOp(node.kind, build(node.left), build(node.right),
                           node.schema)
        raise PlanError(f"cannot compile plan node {node!r}")

    root_logical = plan.child if isinstance(plan, RelToStream) else plan
    root = build(root_logical)
    return root, dict(stream_sources), dict(relation_sources), node_map


# ---------------------------------------------------------------------------
# The continuous query driver
# ---------------------------------------------------------------------------


class Emission(NamedTuple):
    """One output stream element produced by an R2S query."""

    record: Record
    timestamp: Timestamp


class ContinuousQuery:
    """A registered continuous query: compiled once, runs until cancelled.

    Feed arrivals with :meth:`push` / :meth:`push_batch`; the query responds
    with the output elements it produced (for R2S queries) and maintains its
    current relation state (inspect with :meth:`current`).  Use
    :meth:`run_recorded` to replay recorded streams with exact per-instant
    batching.
    """

    def __init__(self, plan: LogicalOp, catalog: Catalog,
                 kernel: bool = True, shared=None, memo=None) -> None:
        self.plan = plan
        self.catalog = catalog
        self.r2s = plan.kind if isinstance(plan, RelToStream) else None
        self.output_schema = plan.schema
        #: The :class:`repro.cql.shared.SharedGroup` this query belongs to,
        #: or None for a private query.  Shared members have no kernel of
        #: their own: the group's MultiQueryKernel runs every member's
        #: (possibly overlapping) physical tree in one exec.Plan.
        self._shared = shared
        self._agenda = shared.agenda if shared is not None else Agenda()
        (self._root, self._stream_sources, self._relation_sources,
         self._phys_by_logical) = \
            compile_plan(plan, catalog, self._agenda, memo=memo)
        self._kernel = None
        if kernel and shared is None:
            # Imported lazily; repro.cql.kernel imports this module.
            from repro.cql.kernel import QueryKernel
            self._kernel = QueryKernel(self._root)
        self._state = Bag()
        self._log: list[tuple[Timestamp, Bag]] = []
        self._emissions: list[Emission] = []
        #: Emissions produced by group instants another member triggered,
        #: waiting to be returned from this member's next feeding call.
        self._undelivered: list[Emission] = []
        self._last_instant: Timestamp | None = None
        self._deltas_processed = 0
        self._eval_hist = None
        self._published_ops: dict[tuple[int, str], float] = {}

    # -- feeding -------------------------------------------------------------

    def start(self, at: Timestamp = 0) -> list[Emission]:
        """Process the registration instant: flushes base relations' initial
        contents so the maintained state matches the reference semantics
        from time ``at`` on."""
        if self._shared is not None:
            return self._shared.start(self, at)
        return self._process_instant(at)

    def push(self, stream_name: str, row: Mapping[str, Any] | Record,
             timestamp: Timestamp) -> list[Emission]:
        """Push one element into ``stream_name`` at ``timestamp``."""
        return self.push_batch(timestamp, {stream_name: [row]})

    def push_batch(self, timestamp: Timestamp,
                   arrivals: Mapping[str, Sequence[Mapping[str, Any]
                                                   | Record]],
                   ) -> list[Emission]:
        """Push all arrivals carrying ``timestamp``, atomically.

        Earlier agenda work (window expirations due before ``timestamp``)
        is processed first, then the batch.  Returns the emissions produced
        from the missed instants and this batch.
        """
        if self._shared is not None:
            return self._shared.push_batch(timestamp, arrivals, member=self)
        if timestamp < MIN_TIMESTAMP:
            # The semantics layer (Stream) rejects negative timestamps; the
            # incremental driver must agree, or it maintains states the
            # reference evaluator cannot even express.
            raise TimeError(
                f"timestamp {timestamp} before the epoch {MIN_TIMESTAMP}")
        if self._last_instant is not None and \
                timestamp < self._last_instant:
            raise StateError(
                f"arrivals must be pushed in timestamp order: {timestamp} "
                f"after {self._last_instant}")
        emitted: list[Emission] = []
        emitted.extend(self._process_instants(self._agenda.due(timestamp - 1)))
        for name, rows in arrivals.items():
            sources = self._stream_sources.get(name)
            if not sources:
                raise PlanError(
                    f"query does not read stream {name!r}")
            base_schema = self.catalog.stream(name).schema
            for row in rows:
                record = (row if isinstance(row, Record)
                          else Record.from_mapping(base_schema, row))
                for source in sources:
                    source.stage(record.with_schema(source.scan.schema),
                                 timestamp)
        self._agenda.due(timestamp)  # consume anything scheduled == now
        emitted.extend(self._process_instant(timestamp))
        return emitted

    def update_relation(self, name: str, row: Mapping[str, Any] | Record,
                        mult: int, timestamp: Timestamp) -> list[Emission]:
        """Apply an insert (+mult) / delete (-mult) to a base relation the
        query reads, propagating incrementally (InvaliDB-style push)."""
        if self._shared is not None:
            return self._shared.update_relation(name, row, mult, timestamp,
                                                member=self)
        sources = self._relation_sources.get(name)
        if not sources:
            raise PlanError(f"query does not read relation {name!r}")
        base_schema = self.catalog.relation(name).schema
        record = (row if isinstance(row, Record)
                  else Record.from_mapping(base_schema, row))
        for source in sources:
            source.stage_update(record, mult)
        emitted: list[Emission] = []
        emitted.extend(self._process_instants(self._agenda.due(timestamp - 1)))
        emitted.extend(self._process_instant(timestamp))
        return emitted

    def advance_to(self, timestamp: Timestamp) -> list[Emission]:
        """Advance event time without new data (fires due expirations)."""
        if self._shared is not None:
            return self._shared.advance_to(timestamp, member=self)
        return self._process_instants(self._agenda.due(timestamp))

    def finish(self) -> list[Emission]:
        """Drain all scheduled future work (window closes after end of
        input) and return the final emissions."""
        if self._shared is not None:
            return self._shared.finish(member=self)
        return self._process_instants(self._agenda.drain())

    def _drain_undelivered(self) -> list[Emission]:
        """Collect emissions buffered while other group members drove
        processing (shared groups only)."""
        out, self._undelivered = self._undelivered, []
        return out

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A consistent checkpoint of the whole query: every operator's
        state, the agenda, and the driver's maintained relation/log.

        Taken between instants (never mid-batch), the snapshot plus the
        input suffix replayed from the same point reproduces the fault-free
        run exactly — the property the kernel-crashed difftest leg checks.
        Shared-group members cannot snapshot independently: their operator
        state interleaves with other members'.
        """
        if self._shared is not None:
            raise StateError(
                "shared-group queries cannot be snapshotted independently")
        return {
            "operators": [op.snapshot() for _, op in self.operators()],
            "agenda": self._agenda.snapshot(),
            "state": self._state.copy(),
            "log": list(self._log),
            "emissions": list(self._emissions),
            "undelivered": list(self._undelivered),
            "last_instant": self._last_instant,
            "deltas_processed": self._deltas_processed,
        }

    def restore(self, payload: Mapping[str, Any]) -> None:
        """Roll the query back to a snapshot, in place.

        The compiled tree (predicates, schemas, kernel plan wiring) is
        reused; only mutable state is overwritten.  Any partially
        processed instant left over from a crash — staged arrivals,
        buffered kernel batches — is discarded wholesale.
        """
        if self._shared is not None:
            raise StateError(
                "shared-group queries cannot be restored independently")
        ops = self.operators()
        states = payload["operators"]
        if len(ops) != len(states):
            raise StateError(
                f"snapshot shape mismatch: {len(states)} operator states "
                f"for {len(ops)} operators")
        for (_, op), state in zip(ops, states):
            op.restore(state)
        self._agenda.restore(payload["agenda"])
        self._state = payload["state"].copy()
        self._log = list(payload["log"])
        self._emissions = list(payload["emissions"])
        self._undelivered = list(payload["undelivered"])
        self._last_instant = payload["last_instant"]
        self._deltas_processed = payload["deltas_processed"]
        if self._kernel is not None:
            # A crash can strand half-delivered batches inside the kernel
            # adapters; they belong to the rolled-back instant.
            self._kernel.reset_transients()

    # -- processing ----------------------------------------------------------

    def _evaluate_instant(self, t: Timestamp) -> tuple[list[Delta], bool]:
        """One instant through the kernel plan (or the legacy recursion)."""
        if self._kernel is not None:
            return self._kernel.run_instant(t)
        return self._root.process_instant(t)

    def _process_instants(self, ts: list[Timestamp]) -> list[Emission]:
        """Process several due instants, batching the kernel tick drive.

        An agenda drain covering k instants becomes one
        :meth:`QueryKernel.run_instants` sweep — one ``push_batch`` per
        tick source instead of k plan-wide pushes — followed by the same
        per-instant state/emission fold.  Falls back to the per-instant
        loop for the legacy recursion and whenever observability is on
        (the per-instant evaluation histogram must stay exact).
        """
        if not ts:
            return []
        if self._kernel is None or len(ts) == 1 or _obs_state.enabled:
            emitted: list[Emission] = []
            for t in ts:
                emitted.extend(self._process_instant(t))
            return emitted
        emitted = []
        for t, (deltas, _active) in zip(ts, self._kernel.run_instants(ts)):
            emitted.extend(self._apply_instant(t, deltas))
        return emitted

    def _process_instant(self, t: Timestamp) -> list[Emission]:
        if _obs_state.enabled:
            if self._eval_hist is None:
                self._eval_hist = _obs_registry().histogram(
                    "exec.query.instant_eval_seconds", layer="cql")
            started = time.perf_counter()
            deltas, _active = self._evaluate_instant(t)
            self._eval_hist.observe(time.perf_counter() - started)
        else:
            deltas, _active = self._evaluate_instant(t)
        return self._apply_instant(t, deltas)

    def _apply_instant(self, t: Timestamp,
                       deltas: list[Delta]) -> list[Emission]:
        """Fold one instant's root deltas into state, log and emissions.

        Split from :meth:`_process_instant` so a shared group's kernel can
        evaluate all member plans in one pass and hand each member its own
        root batch.
        """
        self._deltas_processed += len(deltas)
        # Cancel opposite-signed deltas within the instant: the reference
        # semantics only sees the *net* change R(τ) − R(τ−).
        net: Counter = Counter()
        for record, mult in deltas:
            net[record] += mult
        net = Counter({r: m for r, m in net.items() if m})
        if not net:
            return []
        self._last_instant = t
        for record, mult in net.items():
            if mult > 0:
                self._state.add(record, mult)
            else:
                removed = self._state.discard(record, -mult)
                if removed != -mult:
                    raise StateError(
                        f"retraction of absent record {record!r}")
        self._log.append((t, self._state.copy()))
        emitted: list[Emission] = []
        if self.r2s is R2SKind.ISTREAM:
            emitted = [Emission(r, t) for r, m in net.items() if m > 0
                       for _ in range(m)]
        elif self.r2s is R2SKind.DSTREAM:
            emitted = [Emission(r, t) for r, m in net.items() if m < 0
                       for _ in range(-m)]
        elif self.r2s is R2SKind.RSTREAM:
            emitted = [Emission(r, t) for r, m in self._state.items()
                       for _ in range(m)]
        self._emissions.extend(emitted)
        return emitted

    # -- inspection ----------------------------------------------------------

    def current(self) -> Bag:
        """The maintained relation state right now."""
        return self._state.copy()

    def emissions(self) -> list[Emission]:
        """All output elements produced so far (R2S queries)."""
        return list(self._emissions)

    def emitted_stream(self) -> Stream[Record]:
        """The output as a :class:`Stream` (sorted within each instant so
        it compares stably against the reference)."""
        out: Stream[Record] = Stream(schema=self.output_schema)
        by_time: dict[Timestamp, list[Record]] = defaultdict(list)
        for emission in self._emissions:
            by_time[emission.timestamp].append(emission.record)
        for t in sorted(by_time):
            for record in sorted(by_time[t], key=repr):
                out.append(record, t)
        return out

    def as_relation(self) -> TimeVaryingRelation:
        """The maintained state's change-log as a time-varying relation.

        Same-instant batches (e.g. a DSMS servicing one tuple at a time)
        append several log entries at one timestamp; only the last state per
        instant is the relation's value there.  Collapsing must happen
        *before* feeding ``set_at``, because ``set_at`` coalesces no-op
        states — popping its tail entry to overwrite could otherwise remove
        an earlier instant's state.
        """
        relation = TimeVaryingRelation(schema=self.output_schema)
        last_per_instant: dict[Timestamp, Bag] = {}
        for t, bag in self._log:
            last_per_instant[t] = bag
        for t, bag in last_per_instant.items():
            relation.set_at(t, bag)
        return relation

    @property
    def deltas_processed(self) -> int:
        """Total deltas that flowed through the root (a work measure)."""
        return self._deltas_processed

    def physical_roots(self) -> list["PhysicalOp"]:
        """The physical tree roots — one for a private query.  The same
        accessor exists on :class:`~repro.cql.parallel.PartitionedQuery`
        (one root per replica), so state accounting and introspection
        treat serial and fissioned queries uniformly."""
        return [self._root]

    def operators(self) -> list[tuple[str, PhysicalOp]]:
        """Every physical operator, depth-first, with a stable label."""
        out: list[tuple[str, PhysicalOp]] = []

        def visit(op: PhysicalOp) -> None:
            out.append((type(op).__name__, op))
            for child in op.children:
                visit(child)

        visit(self._root)
        return out

    def publish_metrics(self, registry=None, prefix: str = "exec.operator",
                        **labels: str) -> None:
        """Publish per-operator records in/out and eval time into a registry.

        Pull-based and idempotent: repeated calls publish only the growth
        since the previous call, so the hot path stays untouched and the
        registry's counters stay correct however often a driver snapshots.
        The metric names are the kernel's unified ``exec.operator.*``
        family (with ``layer="cql"``), so one dashboard covers every
        substrate.
        """
        registry = registry if registry is not None else _obs_registry()
        labels = dict(labels, layer="cql")
        for index, (name, op) in enumerate(self.operators()):
            tags = dict(labels, operator=name, index=str(index))
            for field, value in (("records_in", op.received),
                                 ("records_out", op.emitted)):
                counter = registry.counter(f"{prefix}.{field}", **tags)
                key = (index, field)
                counter.inc(int(value - self._published_ops.get(key, 0)))
                self._published_ops[key] = value
            if op.eval_seconds:
                registry.gauge(f"{prefix}.eval_seconds", **tags).set(
                    op.eval_seconds)
        deltas = registry.counter("exec.query.deltas", **labels)
        deltas.inc(self._deltas_processed
                   - int(self._published_ops.get((-1, "deltas"), 0)))
        self._published_ops[(-1, "deltas")] = self._deltas_processed

    @property
    def operator_work(self) -> int:
        """Total deltas emitted by *every* operator in the physical tree
        — the work measure optimisation rules actually reduce (a cross
        join's wasted intermediates count here, not at the root)."""
        total = 0
        stack = [self._root]
        while stack:
            op = stack.pop()
            total += op.emitted
            stack.extend(op.children)
        return total

    # -- batch replay --------------------------------------------------------

    def run_recorded(self, streams: Mapping[str, Stream[Record]],
                     finish: bool = True) -> list[Emission]:
        """Replay recorded streams with exact per-instant batching.

        All elements sharing a timestamp (across all input streams) are
        pushed as one batch, which makes the executor's outputs match the
        reference evaluator exactly.
        """
        arrivals: dict[Timestamp, dict[str, list[Record]]] = defaultdict(
            lambda: defaultdict(list))
        for name, stream in streams.items():
            for element in stream:
                arrivals[element.timestamp][name].append(element.value)
        emitted: list[Emission] = list(self.start())
        for t in sorted(arrivals):
            emitted.extend(self.push_batch(t, arrivals[t]))
        if finish:
            emitted.extend(self.finish())
        return emitted
