"""The query catalog: named streams and relations.

The DSMS-era systems the paper surveys (STREAM, TelegraphCQ...) all pair a
query language with a catalog of registered sources.  Ours maps names to
stream definitions (schema only — contents arrive at runtime) and relation
definitions (schema plus current contents, updatable to model slowly
changing reference tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.errors import PlanError
from repro.core.records import Record, Schema
from repro.core.relation import Bag


@dataclass(frozen=True)
class StreamDef:
    """A registered stream: a name and a schema."""

    name: str
    schema: Schema


class RelationDef:
    """A registered base relation: schema plus mutable current contents."""

    def __init__(self, name: str, schema: Schema,
                 rows: Iterable[Mapping[str, Any] | Record] = ()) -> None:
        self.name = name
        self.schema = schema
        self.contents = Bag()
        for row in rows:
            self.insert(row)

    def _coerce(self, row: Mapping[str, Any] | Record) -> Record:
        if isinstance(row, Record):
            return row.with_schema(self.schema)
        return Record.from_mapping(self.schema, row)

    def insert(self, row: Mapping[str, Any] | Record) -> Record:
        record = self._coerce(row)
        self.contents.add(record)
        return record

    def delete(self, row: Mapping[str, Any] | Record) -> Record:
        record = self._coerce(row)
        if self.contents.discard(record) == 0:
            raise PlanError(f"row not present in relation {self.name}: "
                            f"{record!r}")
        return record


class Catalog:
    """Name → source definitions, shared by the CQL and SQL front ends."""

    def __init__(self) -> None:
        self._streams: dict[str, StreamDef] = {}
        self._relations: dict[str, RelationDef] = {}

    def register_stream(self, name: str, schema: Schema) -> StreamDef:
        """Register a stream.  Names are unique across streams/relations."""
        self._check_free(name)
        definition = StreamDef(name, schema)
        self._streams[name] = definition
        return definition

    def register_relation(self, name: str, schema: Schema,
                          rows: Iterable[Mapping[str, Any] | Record] = (),
                          ) -> RelationDef:
        """Register a base relation with optional initial contents."""
        self._check_free(name)
        definition = RelationDef(name, schema, rows)
        self._relations[name] = definition
        return definition

    def _check_free(self, name: str) -> None:
        if name in self._streams or name in self._relations:
            raise PlanError(f"source {name!r} is already registered")

    def is_stream(self, name: str) -> bool:
        return name in self._streams

    def is_relation(self, name: str) -> bool:
        return name in self._relations

    def stream(self, name: str) -> StreamDef:
        try:
            return self._streams[name]
        except KeyError:
            raise PlanError(f"unknown stream {name!r}") from None

    def relation(self, name: str) -> RelationDef:
        try:
            return self._relations[name]
        except KeyError:
            raise PlanError(f"unknown relation {name!r}") from None

    def schema_of(self, name: str) -> Schema:
        if name in self._streams:
            return self._streams[name].schema
        if name in self._relations:
            return self._relations[name].schema
        raise PlanError(f"unknown source {name!r}")

    def stream_names(self) -> list[str]:
        return sorted(self._streams)

    def relation_names(self) -> list[str]:
        return sorted(self._relations)
