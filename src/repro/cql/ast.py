"""Abstract syntax trees for the CQL dialect (paper Listing 1).

The grammar follows Arasu et al.'s CQL: a SQL-92-style SELECT block whose
FROM sources may be streams decorated with window specifications
(``[Range 15 min]``, ``[Rows 10]``, ``[Partition By k Rows 10]``, ``[Now]``,
``[Range Unbounded]``), and whose output may be wrapped by one of the three
relation-to-stream operators (``ISTREAM`` / ``DSTREAM`` / ``RSTREAM``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.operators import R2SKind
from repro.core.time import Timestamp

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for scalar expressions."""

    def columns(self) -> list["Column"]:
        """All column references in this expression (pre-order)."""
        return []


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean or NULL."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class Column(Expr):
    """A column reference, possibly qualified (``P.id``)."""

    name: str

    def columns(self) -> list["Column"]:
        return [self]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` in a select list or inside COUNT(*)."""

    def __str__(self) -> str:
        return "*"


class BinOp(enum.Enum):
    """Binary operators, grouped by family."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "AND"
    OR = "OR"

    @property
    def is_comparison(self) -> bool:
        return self in (BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE,
                        BinOp.GT, BinOp.GE)

    @property
    def is_boolean(self) -> bool:
        return self in (BinOp.AND, BinOp.OR)


@dataclass(frozen=True)
class Binary(Expr):
    """A binary expression ``left op right``."""

    op: BinOp
    left: Expr
    right: Expr

    def columns(self) -> list[Column]:
        return self.left.columns() + self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class Unary(Expr):
    """``NOT expr`` or ``-expr``."""

    op: str  # "NOT" | "-"
    operand: Expr

    def columns(self) -> list[Column]:
        return self.operand.columns()

    def __str__(self) -> str:
        return f"{self.op} {self.operand}"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call — aggregates (COUNT/SUM/AVG/MIN/MAX) or scalars."""

    name: str  # upper-cased
    args: tuple[Expr, ...]

    AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES

    def columns(self) -> list[Column]:
        out: list[Column] = []
        for arg in self.args:
            out.extend(arg.columns())
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def contains_aggregate(expr: Expr) -> bool:
    """True when the expression tree contains any aggregate call."""
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, Binary):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, Unary):
        return contains_aggregate(expr.operand)
    return False


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op is BinOp.AND:
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Expr | None:
    """Rebuild a predicate from conjuncts (inverse of split_conjuncts)."""
    result: Expr | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else \
            Binary(BinOp.AND, result, conjunct)
    return result


# ---------------------------------------------------------------------------
# Window specifications
# ---------------------------------------------------------------------------


class WindowSpecKind(enum.Enum):
    """CQL's S2R window families."""

    RANGE = "range"            # [Range r] with optional Slide
    NOW = "now"                # [Now]
    UNBOUNDED = "unbounded"    # [Range Unbounded]
    ROWS = "rows"              # [Rows n]
    PARTITIONED = "partition"  # [Partition By cols Rows n]


@dataclass(frozen=True)
class WindowSpec:
    """A parsed window specification attached to a FROM source."""

    kind: WindowSpecKind
    range_: Timestamp | None = None
    slide: Timestamp | None = None
    rows: int | None = None
    partition_by: tuple[str, ...] = ()

    def __str__(self) -> str:
        if self.kind is WindowSpecKind.NOW:
            return "[Now]"
        if self.kind is WindowSpecKind.UNBOUNDED:
            return "[Range Unbounded]"
        if self.kind is WindowSpecKind.ROWS:
            return f"[Rows {self.rows}]"
        if self.kind is WindowSpecKind.PARTITIONED:
            return (f"[Partition By {', '.join(self.partition_by)} "
                    f"Rows {self.rows}]")
        if self.slide:
            return f"[Range {self.range_} Slide {self.slide}]"
        return f"[Range {self.range_}]"


UNBOUNDED_SPEC = WindowSpec(kind=WindowSpecKind.UNBOUNDED)
NOW_SPEC = WindowSpec(kind=WindowSpecKind.NOW)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None

    def output_name(self) -> str:
        """The column name this item produces."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name
        return str(self.expr).lower().replace(" ", "")


@dataclass(frozen=True)
class FromSource:
    """One FROM entry: a named stream/relation, alias, optional window."""

    name: str
    alias: str | None = None
    window: WindowSpec | None = None

    @property
    def binding(self) -> str:
        """The name other clauses use to refer to this source."""
        return self.alias or self.name


@dataclass(frozen=True)
class SelectStatement:
    """A full CQL SELECT block."""

    items: tuple[SelectItem, ...]      # empty tuple means SELECT *
    sources: tuple[FromSource, ...]
    where: Expr | None = None
    group_by: tuple[Column, ...] = ()
    having: Expr | None = None
    distinct: bool = False
    r2s: R2SKind | None = None         # None => relation output

    @property
    def is_star(self) -> bool:
        return not self.items


@dataclass(frozen=True)
class SetStatement:
    """A set combination of two query blocks.

    ``kind`` is ``union`` / ``difference`` / ``intersection`` over bags;
    ``distinct`` (SQL's plain UNION, vs UNION ALL) adds duplicate
    elimination on top.  ``r2s`` applies to the combined result.
    """

    kind: str
    left: "SelectStatement | SetStatement"
    right: "SelectStatement | SetStatement"
    distinct: bool = False
    r2s: R2SKind | None = None
