"""Abstract syntax trees for the CQL dialect (paper Listing 1).

The grammar follows Arasu et al.'s CQL: a SQL-92-style SELECT block whose
FROM sources may be streams decorated with window specifications
(``[Range 15 min]``, ``[Rows 10]``, ``[Partition By k Rows 10]``, ``[Now]``,
``[Range Unbounded]``), and whose output may be wrapped by one of the three
relation-to-stream operators (``ISTREAM`` / ``DSTREAM`` / ``RSTREAM``).

The expression layer and window specifications now live in
:mod:`repro.plan.exprs` — the IR shared by every frontend — and are
re-exported here for compatibility.  Only the statement forms (the part
that is genuinely CQL surface syntax) remain in this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operators import R2SKind
from repro.plan.exprs import (  # noqa: F401  (compatibility re-exports)
    Binary,
    BinOp,
    Column,
    Expr,
    FuncCall,
    Literal,
    NOW_SPEC,
    Star,
    UNBOUNDED_SPEC,
    Unary,
    WindowSpec,
    WindowSpecKind,
    conjoin,
    contains_aggregate,
    split_conjuncts,
)

# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None

    def output_name(self) -> str:
        """The column name this item produces."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name
        return str(self.expr).lower().replace(" ", "")


@dataclass(frozen=True)
class FromSource:
    """One FROM entry: a named stream/relation, alias, optional window."""

    name: str
    alias: str | None = None
    window: WindowSpec | None = None

    @property
    def binding(self) -> str:
        """The name other clauses use to refer to this source."""
        return self.alias or self.name


@dataclass(frozen=True)
class SelectStatement:
    """A full CQL SELECT block."""

    items: tuple[SelectItem, ...]      # empty tuple means SELECT *
    sources: tuple[FromSource, ...]
    where: Expr | None = None
    group_by: tuple[Column, ...] = ()
    having: Expr | None = None
    distinct: bool = False
    r2s: R2SKind | None = None         # None => relation output

    @property
    def is_star(self) -> bool:
        return not self.items


@dataclass(frozen=True)
class SetStatement:
    """A set combination of two query blocks.

    ``kind`` is ``union`` / ``difference`` / ``intersection`` over bags;
    ``distinct`` (SQL's plain UNION, vs UNION ALL) adds duplicate
    elimination on top.  ``r2s`` applies to the combined result.
    """

    kind: str
    left: "SelectStatement | SetStatement"
    right: "SelectStatement | SetStatement"
    distinct: bool = False
    r2s: R2SKind | None = None
