"""Tokenizer for the CQL and streaming-SQL dialects.

One lexer serves both languages: the streaming-SQL dialect
(:mod:`repro.sql`) is a superset of CQL at the token level, so keywords of
both are recognised here and each parser accepts the subset it understands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ParseError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


#: Keywords of the combined CQL / streaming-SQL surface (upper-case).
KEYWORDS = frozenset({
    # SQL core
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS",
    "AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "UNION", "EXCEPT",
    "INTERSECT", "ALL", "ORDER", "LIMIT", "JOIN", "ON", "INNER",
    # CQL windows
    "RANGE", "SLIDE", "ROWS", "NOW", "UNBOUNDED", "PARTITION",
    # R2S
    "ISTREAM", "DSTREAM", "RSTREAM",
    # streaming SQL windows (Begoli et al. style)
    "TUMBLE", "HOP", "SESSION", "EMIT", "CHANGES", "AFTER", "WATERMARK",
    # DDL-ish (catalog statements)
    "CREATE", "STREAM", "TABLE", "VIEW", "MATERIALIZED",
    # dynamic tables
    "DYNAMIC", "TARGET_LAG", "DOWNSTREAM",
    # time units
    "MS", "MILLISECOND", "MILLISECONDS", "SEC", "SECOND", "SECONDS",
    "MIN", "MINUTE", "MINUTES", "HOUR", "HOURS",
})

#: Multi-character symbols, longest first so the scanner is greedy.
SYMBOLS = ("<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", "[", "]",
           ",", ".", "*", "+", "-", "/", "%", ";")


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.type is TokenType.SYMBOL and self.text in symbols

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenise query text.  Raises :class:`ParseError` on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":  # line comment
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            number = text[start:i]
            if number.count(".") > 1:
                raise ParseError(f"malformed number {number!r}", start)
            yield Token(TokenType.NUMBER, number, start)
            continue
        if ch == "'":
            start = i
            i += 1
            chunks = []
            while i < n:
                if text[i] == "'":
                    if text[i:i + 2] == "''":  # escaped quote
                        chunks.append("'")
                        i += 2
                        continue
                    break
                chunks.append(text[i])
                i += 1
            if i >= n:
                raise ParseError("unterminated string literal", start)
            i += 1  # closing quote
            yield Token(TokenType.STRING, "".join(chunks), start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, start)
            else:
                yield Token(TokenType.IDENT, word, start)
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                yield Token(TokenType.SYMBOL, symbol, i)
                i += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.EOF, "", n)


class TokenCursor:
    """A peekable cursor over a token list, shared by both parsers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def match_keyword(self, *names: str) -> Token | None:
        """Consume and return the next token when it is one of ``names``."""
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def match_symbol(self, *symbols: str) -> Token | None:
        if self.peek().is_symbol(*symbols):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.match_keyword(*names)
        if token is None:
            raise ParseError(
                f"expected {' or '.join(names)}, found {self.peek().text!r}",
                self.peek().position)
        return token

    def expect_symbol(self, *symbols: str) -> Token:
        token = self.match_symbol(*symbols)
        if token is None:
            raise ParseError(
                f"expected {' or '.join(symbols)!r}, found "
                f"{self.peek().text!r}", self.peek().position)
        return token

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(
                f"expected identifier, found {token.text!r}", token.position)
        return self.advance()

    def expect_number(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.NUMBER:
            raise ParseError(
                f"expected number, found {token.text!r}", token.position)
        return self.advance()

    def at_end(self) -> bool:
        token = self.peek()
        return token.type is TokenType.EOF or token.is_symbol(";")
