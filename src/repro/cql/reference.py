"""Reference (denotational) evaluation of logical plans.

Interprets a :mod:`repro.plan.ir` plan directly with the core operators
of :mod:`repro.core.operators` over *recorded* input streams — the
executable form of CQL's abstract semantics (paper Section 3.1): the result
at every instant τ is exactly what the one-shot relational query would
return over the inputs up to τ.

This evaluator replays history and is deliberately non-incremental; the
incremental executor (:mod:`repro.cql.executor`) and the DSMS runtime are
both validated against it, and the Figure 1 / Listing 1 benchmarks use it
as the re-execution baseline.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping

from repro.core.errors import PlanError
from repro.core.operators import AggregateKind, relation_to_stream
from repro.core.records import Record
from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.stream import Stream
from repro.plan.ir import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    RelationScan,
    RelToStream,
    SetOp,
    StreamScan,
    WindowOp,
)
from repro.cql.catalog import Catalog
from repro.cql.expressions import compile_expr, compile_predicate
from repro.cql.planner import window_object
from repro.core import operators as core_ops


def reference_evaluate(plan: LogicalOp, catalog: Catalog,
                       streams: Mapping[str, Stream[Record]],
                       ) -> TimeVaryingRelation | Stream[Record]:
    """Evaluate ``plan`` denotationally over recorded streams.

    ``streams`` maps stream *names* to recorded :class:`Stream` objects of
    records in the stream's base schema.  Relations come from the catalog's
    current contents.  Returns a stream when the plan's root is an R2S
    operator and a time-varying relation otherwise.
    """
    if isinstance(plan, RelToStream):
        relation = _evaluate_relation(plan.child, catalog, streams)
        return relation_to_stream(relation, plan.kind)
    return _evaluate_relation(plan, catalog, streams)


def _qualified_stream(scan: StreamScan,
                      streams: Mapping[str, Stream[Record]],
                      ) -> Stream[Record]:
    try:
        recorded = streams[scan.name]
    except KeyError:
        raise PlanError(
            f"no recorded stream for {scan.name!r}") from None
    return recorded.map(lambda r: r.with_schema(scan.schema),
                        schema=scan.schema)


def _evaluate_relation(plan: LogicalOp, catalog: Catalog,
                       streams: Mapping[str, Stream[Record]],
                       ) -> TimeVaryingRelation:
    if isinstance(plan, WindowOp):
        # The optimizer may have pushed filters below the window
        # (push_filter_through_window).  Evaluate them *above* the window:
        # for time-based windows the two orders produce the same relation,
        # and windowing the raw stream keeps the change-point structure
        # (instants where the relation is re-evaluated) identical to the
        # un-rewritten plan's.
        node = plan.child
        predicates = []
        while isinstance(node, Filter):
            predicates.append(node.predicate)
            node = node.child
        scan = node
        if not isinstance(scan, StreamScan):
            raise PlanError("window operator must sit on a stream scan")
        stream = _qualified_stream(scan, streams)
        window = window_object(plan.spec, schema=scan.schema)
        relation = core_ops.stream_to_relation(stream, window)
        for predicate in predicates:
            relation = core_ops.select(
                relation, compile_predicate(predicate, scan.schema))
        return relation

    if isinstance(plan, StreamScan):
        raise PlanError(
            f"bare stream scan {plan.name!r}: streams must be windowed "
            f"before relational operators apply (CQL's S2R rule)")

    if isinstance(plan, RelationScan):
        contents = catalog.relation(plan.name).contents
        relabeled = contents.map(lambda r: r.with_schema(plan.schema))
        relation = TimeVaryingRelation(schema=plan.schema)
        relation.set_at(0, relabeled)
        return relation

    if isinstance(plan, Filter):
        child = _evaluate_relation(plan.child, catalog, streams)
        predicate = compile_predicate(plan.predicate, plan.child.schema)
        return core_ops.select(child, predicate)

    if isinstance(plan, Project):
        child = _evaluate_relation(plan.child, catalog, streams)
        evaluators = [compile_expr(e, plan.child.schema)
                      for e in plan.exprs]
        schema = plan.schema

        def project_record(record: Record) -> Record:
            return Record(schema, tuple(e(record) for e in evaluators),
                          validate=False)

        return child.lift(lambda bag: bag.map(project_record), schema=schema)

    if isinstance(plan, Join):
        left = _evaluate_relation(plan.left, catalog, streams)
        right = _evaluate_relation(plan.right, catalog, streams)
        if plan.left_keys:
            joined = core_ops.equijoin(left, right,
                                       list(plan.left_keys),
                                       list(plan.right_keys))
        else:
            joined = core_ops.cross(left, right)
        if plan.residual is not None:
            predicate = compile_predicate(plan.residual, plan.schema)
            joined = core_ops.select(joined, predicate)
        return joined

    if isinstance(plan, Aggregate):
        child = _evaluate_relation(plan.child, catalog, streams)
        return _evaluate_aggregate(plan, child)

    if isinstance(plan, Distinct):
        child = _evaluate_relation(plan.child, catalog, streams)
        return core_ops.distinct(child)

    if isinstance(plan, SetOp):
        left = _evaluate_relation(plan.left, catalog, streams)
        right = _evaluate_relation(plan.right, catalog, streams)
        fn = {"union": core_ops.union,
              "difference": core_ops.difference,
              "intersection": core_ops.intersection}[plan.kind]
        return fn(left, right)

    if isinstance(plan, RelToStream):
        raise PlanError("nested relation-to-stream operators are invalid")

    raise PlanError(f"cannot evaluate plan node {plan!r}")


def _evaluate_aggregate(plan: Aggregate,
                        child: TimeVaryingRelation) -> TimeVaryingRelation:
    in_schema = plan.child.schema
    out_schema = plan.schema
    group_indexes = [in_schema.index_of(c) for c in plan.group_by]
    arg_evaluators = [
        None if spec.arg is None else compile_expr(spec.arg, in_schema)
        for spec in plan.aggregates]

    def aggregate_bag(bag: Bag) -> Bag:
        groups: dict[tuple, list[Record]] = defaultdict(list)
        for record in bag:
            groups[tuple(record[i] for i in group_indexes)].append(record)
        if not groups and not plan.group_by:
            groups[()] = []
        out = Bag()
        for key, rows in groups.items():
            values: list[Any] = list(key)
            for spec, evaluator in zip(plan.aggregates, arg_evaluators):
                values.append(_aggregate_value(spec.kind, evaluator, rows))
            out.add(Record(out_schema, values, validate=False))
        return out

    return child.lift(aggregate_bag, schema=out_schema)


def _aggregate_value(kind: AggregateKind, evaluator, rows: list[Record]):
    if evaluator is None:  # COUNT(*)
        return len(rows)
    values = [v for v in (evaluator(r) for r in rows) if v is not None]
    if kind is AggregateKind.COUNT:
        return len(values)
    if not values:
        return None
    if kind is AggregateKind.SUM:
        return sum(values)
    if kind is AggregateKind.AVG:
        return sum(values) / len(values)
    if kind is AggregateKind.MIN:
        return min(values)
    if kind is AggregateKind.MAX:
        return max(values)
    raise PlanError(f"unknown aggregate kind {kind}")
