"""Logical algebra for continuous queries.

The plan language shared by the CQL parser (:mod:`repro.cql.planner`) and
the streaming-SQL dialect (:mod:`repro.sql`): an operator tree whose leaves
scan streams or relations, whose inner nodes are the relational operators
lifted over time (CQL's R2R class), plus the S2R window node and the R2S
output node.  Nodes expose ``op_name``/``children`` so the monotonicity
classifier in :mod:`repro.core.monotonicity` applies directly, and carry
their output :class:`~repro.core.records.Schema` so expression compilation
can resolve column positions at plan time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.errors import PlanError
from repro.core.operators import AggregateKind, R2SKind
from repro.core.records import Schema
from repro.cql.ast import Expr, WindowSpec


@dataclass(frozen=True)
class LogicalOp:
    """Base class for logical plan nodes."""

    @property
    def op_name(self) -> str:
        raise NotImplementedError

    @property
    def children(self) -> tuple["LogicalOp", ...]:
        return ()

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def with_children(self, children: Sequence["LogicalOp"]) -> "LogicalOp":
        """A copy of this node over different children (same arity)."""
        raise NotImplementedError

    # -- pretty printing -----------------------------------------------------

    def explain(self, indent: int = 0) -> str:
        """An EXPLAIN-style rendering of the plan tree."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.op_name


@dataclass(frozen=True)
class StreamScan(LogicalOp):
    """Leaf: read a registered stream.  Schema is alias-qualified."""

    name: str
    alias: str
    stream_schema: Schema

    @property
    def op_name(self) -> str:
        return "stream_scan"

    @property
    def schema(self) -> Schema:
        return self.stream_schema

    def with_children(self, children: Sequence[LogicalOp]) -> "StreamScan":
        if children:
            raise PlanError("stream_scan takes no children")
        return self

    def describe(self) -> str:
        return f"StreamScan({self.name} AS {self.alias})"


@dataclass(frozen=True)
class RelationScan(LogicalOp):
    """Leaf: read a registered (time-varying) relation."""

    name: str
    alias: str
    relation_schema: Schema

    @property
    def op_name(self) -> str:
        return "relation_scan"

    @property
    def schema(self) -> Schema:
        return self.relation_schema

    def with_children(self, children: Sequence[LogicalOp]) -> "RelationScan":
        if children:
            raise PlanError("relation_scan takes no children")
        return self

    def describe(self) -> str:
        return f"RelationScan({self.name} AS {self.alias})"


@dataclass(frozen=True)
class WindowOp(LogicalOp):
    """S2R: apply a window specification to a stream scan."""

    child: LogicalOp
    spec: WindowSpec

    @property
    def op_name(self) -> str:
        from repro.cql.ast import WindowSpecKind
        if self.spec.kind is WindowSpecKind.UNBOUNDED:
            return "unbounded_window"
        return "window"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "WindowOp":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return f"Window{self.spec}"


@dataclass(frozen=True)
class Filter(LogicalOp):
    """R2R: σ — keep records satisfying ``predicate``."""

    child: LogicalOp
    predicate: Expr

    @property
    def op_name(self) -> str:
        return "select"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "Filter":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return f"Filter({self.predicate})"


@dataclass(frozen=True)
class Project(LogicalOp):
    """R2R: π — compute output columns from expressions."""

    child: LogicalOp
    exprs: tuple[Expr, ...]
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.exprs) != len(self.names):
            raise PlanError("projection exprs/names arity mismatch")

    @property
    def op_name(self) -> str:
        return "project"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return Schema(self.names)

    def with_children(self, children: Sequence[LogicalOp]) -> "Project":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        cols = ", ".join(f"{e} AS {n}" for e, n in
                         zip(self.exprs, self.names))
        return f"Project({cols})"


@dataclass(frozen=True)
class Join(LogicalOp):
    """R2R: ⋈ — join two relations.

    ``left_keys``/``right_keys`` hold the extracted equi-join columns (empty
    for a pure cross/theta join); ``residual`` is any non-equi condition
    applied to joined records.
    """

    left: LogicalOp
    right: LogicalOp
    left_keys: tuple[str, ...] = ()
    right_keys: tuple[str, ...] = ()
    residual: Expr | None = None

    @property
    def op_name(self) -> str:
        return "equijoin" if self.left_keys else "cross"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    @property
    def schema(self) -> Schema:
        return self.left.schema.concat(self.right.schema)

    def with_children(self, children: Sequence[LogicalOp]) -> "Join":
        left, right = children
        return replace(self, left=left, right=right)

    def describe(self) -> str:
        if self.left_keys:
            keys = ", ".join(f"{l}={r}" for l, r in
                             zip(self.left_keys, self.right_keys))
            extra = f" residual={self.residual}" if self.residual else ""
            return f"EquiJoin({keys}){extra}"
        if self.residual is not None:
            return f"ThetaJoin({self.residual})"
        return "CrossJoin"


@dataclass(frozen=True)
class AggregateExpr:
    """One aggregate output column at the plan level."""

    kind: AggregateKind
    arg: Expr | None  # None for COUNT(*)
    name: str

    def describe(self) -> str:
        arg = "*" if self.arg is None else str(self.arg)
        return f"{self.kind.value}({arg}) AS {self.name}"


@dataclass(frozen=True)
class Aggregate(LogicalOp):
    """R2R: γ — grouped aggregation.

    Output schema: group-by columns (under their given output names)
    followed by aggregate columns.
    """

    child: LogicalOp
    group_by: tuple[str, ...]           # input column names
    group_names: tuple[str, ...]        # output names for the group columns
    aggregates: tuple[AggregateExpr, ...]

    def __post_init__(self) -> None:
        if len(self.group_by) != len(self.group_names):
            raise PlanError("group_by/group_names arity mismatch")

    @property
    def op_name(self) -> str:
        return "aggregate"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return Schema(self.group_names + tuple(a.name
                                               for a in self.aggregates))

    def with_children(self, children: Sequence[LogicalOp]) -> "Aggregate":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        parts = list(self.group_by) + [a.describe() for a in self.aggregates]
        return f"Aggregate({', '.join(parts)})"


@dataclass(frozen=True)
class Distinct(LogicalOp):
    """R2R: δ — duplicate elimination."""

    child: LogicalOp

    @property
    def op_name(self) -> str:
        return "distinct"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "Distinct":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class SetOp(LogicalOp):
    """R2R: bag union / difference / intersection of two relations."""

    kind: str  # "union" | "difference" | "intersection"
    left: LogicalOp
    right: LogicalOp

    _VALID = ("union", "difference", "intersection")

    def __post_init__(self) -> None:
        if self.kind not in self._VALID:
            raise PlanError(f"bad set-op kind {self.kind!r}")
        if self.left.schema.arity != self.right.schema.arity:
            raise PlanError("set operands must have equal arity")

    @property
    def op_name(self) -> str:
        return self.kind

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    @property
    def schema(self) -> Schema:
        return self.left.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "SetOp":
        left, right = children
        return replace(self, left=left, right=right)

    def describe(self) -> str:
        return self.kind.capitalize()


@dataclass(frozen=True)
class RelToStream(LogicalOp):
    """R2S: the topmost ISTREAM / DSTREAM / RSTREAM operator."""

    child: LogicalOp
    kind: R2SKind

    @property
    def op_name(self) -> str:
        return self.kind.value

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "RelToStream":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return self.kind.value.upper()


def walk(plan: LogicalOp):
    """Pre-order traversal of a plan tree."""
    yield plan
    for child in plan.children:
        yield from walk(child)


def scans_of(plan: LogicalOp) -> list[StreamScan | RelationScan]:
    """All leaf scans of a plan, in left-to-right order."""
    return [node for node in walk(plan)
            if isinstance(node, (StreamScan, RelationScan))]
