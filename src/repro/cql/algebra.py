"""Compatibility shim: the logical algebra moved to :mod:`repro.plan.ir`.

The operator hierarchy formerly defined here is now the unified IR that
every frontend (CQL, streaming SQL, RSP-QL, dataflow) lowers into.  This
module re-exports it so existing imports — and isinstance checks, since
these are the *same* classes — keep working.  New code should import
from :mod:`repro.plan` directly; importing this shim emits a
:class:`DeprecationWarning`.
"""

import warnings

warnings.warn(
    "repro.cql.algebra is deprecated; import the logical IR from "
    "repro.plan (repro.plan.ir) instead",
    DeprecationWarning, stacklevel=2)

from repro.plan.ir import (  # noqa: E402, F401  (compatibility re-exports)
    Aggregate,
    AggregateExpr,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    RelToStream,
    RelationScan,
    SetOp,
    StreamScan,
    WindowOp,
    scans_of,
    walk,
)

__all__ = [
    "Aggregate", "AggregateExpr", "Distinct", "Filter", "Join", "LogicalOp",
    "Project", "RelToStream", "RelationScan", "SetOp", "StreamScan",
    "WindowOp", "scans_of", "walk",
]
