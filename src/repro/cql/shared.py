"""Multi-query plan sharing: N standing queries, one kernel plan.

The paper's DSMS model registers *many* standing queries over few streams;
running each in isolation repeats the same window buffering and join work
per query.  :class:`SharedGroup` applies the classic multi-query
optimisation instead: every member query is compiled through one
:class:`repro.plan.sharing.SubplanMemo`, so subtrees with the same
canonical signature (``plan_signature(detail=True)`` — commutativity
aware, so ``A ⋈ B`` and ``B ⋈ A`` share) map to the *same* physical
operator, and the whole group runs as one
:class:`repro.cql.kernel.MultiQueryKernel` with fan-out emitters.  Window
state, join state and per-source arrival staging are paid once per
distinct subplan, not once per query.

The group owns the event-time :class:`~repro.cql.executor.Agenda`: any
member's feeding call advances *all* members in lockstep, which is what
keeps shared window state sound — every member observes every instant.
Emissions for members other than the caller are buffered per member
(``_undelivered``) and returned from that member's next feeding call.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.errors import PlanError, StateError, TimeError
from repro.core.records import Record
from repro.core.time import MIN_TIMESTAMP, Timestamp
from repro.plan.ir import LogicalOp
from repro.cql.catalog import Catalog
from repro.cql.executor import (
    Agenda,
    ContinuousQuery,
    Emission,
    PhysicalOp,
    StreamSourceOp,
)
from repro.cql.kernel import MultiQueryKernel
from repro.plan.sharing import SubplanMemo


class SharedGroup:
    """A set of continuous queries executing as one shared kernel plan.

    Members are added with :meth:`register` while the group is *cold* (no
    data pushed yet); each registration recompiles the kernel around the
    union of member physical trees (operator state is preserved — the
    kernel adapters are stateless wrappers).  Once data has flowed the
    plan is frozen: ``exec.Plan`` channels cannot be rewired mid-stream
    without replaying history into the newcomer's private operators.
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.agenda = Agenda()
        self.memo = SubplanMemo()
        self.members: list[ContinuousQuery] = []
        self.kernel: MultiQueryKernel | None = None
        self._started = False       # data has flowed; group frozen
        self._cursor: Timestamp | None = None

    # -- membership ----------------------------------------------------------

    def register(self, plan: LogicalOp) -> ContinuousQuery:
        """Compile ``plan`` into the group, sharing common subplans."""
        if self._started:
            raise PlanError(
                "cannot add a query to a shared group after data has "
                "flowed: the shared window state would be missing the "
                "newcomer's history")
        self.memo.start_compile()
        query = ContinuousQuery(plan, self.catalog, kernel=False,
                                shared=self, memo=self.memo)
        self.memo.finish_compile()
        self.members.append(query)
        self.kernel = MultiQueryKernel([m._root for m in self.members])
        return query

    def reads_stream(self, name: str) -> bool:
        return any(name in m._stream_sources for m in self.members)

    @property
    def shared_hits(self) -> int:
        """Subplan compilations avoided by sharing (memo hits)."""
        return self.memo.hits

    def distinct_operators(self) -> list[PhysicalOp]:
        """Every physical operator in the group DAG, counted once."""
        seen: set[int] = set()
        out: list[PhysicalOp] = []
        stack: list[PhysicalOp] = [m._root for m in self.members]
        while stack:
            op = stack.pop()
            if id(op) in seen:
                continue
            seen.add(id(op))
            out.append(op)
            stack.extend(op.children)
        return out

    def state_size(self) -> int:
        """Total tuples held by stateful operators, shared state counted
        once (contrast with summing each member's private accounting)."""
        return sum(getattr(op, "state_size", 0)
                   for op in self.distinct_operators())

    # -- feeding (member-delegated) ------------------------------------------

    def start(self, member: ContinuousQuery,
              at: Timestamp = 0) -> list[Emission]:
        self._process_instant(at)
        return member._drain_undelivered()

    def push_batch(self, timestamp: Timestamp,
                   arrivals: Mapping[str, Sequence[Mapping[str, Any]
                                                   | Record]],
                   member: ContinuousQuery | None = None,
                   ) -> list[Emission]:
        """Push one instant's arrivals through the whole group.

        Arrivals are staged into every *distinct* source reading each
        stream (a shared window buffers the record once), then the group
        instant runs for all members.  Returns the calling member's
        pending emissions; other members' outputs are buffered for them.
        """
        if timestamp < MIN_TIMESTAMP:
            raise TimeError(
                f"timestamp {timestamp} before the epoch {MIN_TIMESTAMP}")
        if self._cursor is not None and timestamp < self._cursor:
            raise StateError(
                f"arrivals must be pushed in timestamp order: {timestamp} "
                f"after {self._cursor}")
        for instant in self.agenda.due(timestamp - 1):
            self._process_instant(instant)
        for name, rows in arrivals.items():
            sources = self._sources_for(name)
            if not sources:
                raise PlanError(
                    f"no query in the shared group reads stream {name!r}")
            base_schema = self.catalog.stream(name).schema
            for row in rows:
                record = (row if isinstance(row, Record)
                          else Record.from_mapping(base_schema, row))
                for source in sources:
                    source.stage(record.with_schema(source.scan.schema),
                                 timestamp)
        self.agenda.due(timestamp)  # consume anything scheduled == now
        self._process_instant(timestamp)
        self._started = True
        return member._drain_undelivered() if member is not None else []

    def update_relation(self, name: str, row: Mapping[str, Any] | Record,
                        mult: int, timestamp: Timestamp,
                        member: ContinuousQuery) -> list[Emission]:
        """Apply a base-relation update for ``member``.

        Relation scans are never shared (the memo refuses them: members
        may diverge via private updates), so staging touches only the
        member's own sources — but the instant still runs group-wide to
        keep every member's clock aligned.
        """
        sources = member._relation_sources.get(name)
        if not sources:
            raise PlanError(f"query does not read relation {name!r}")
        base_schema = self.catalog.relation(name).schema
        record = (row if isinstance(row, Record)
                  else Record.from_mapping(base_schema, row))
        for source in sources:
            source.stage_update(record, mult)
        for instant in self.agenda.due(timestamp - 1):
            self._process_instant(instant)
        self._process_instant(timestamp)
        self._started = True
        return member._drain_undelivered()

    def advance_to(self, timestamp: Timestamp,
                   member: ContinuousQuery | None = None) -> list[Emission]:
        for instant in self.agenda.due(timestamp):
            self._process_instant(instant)
        return member._drain_undelivered() if member is not None else []

    def finish(self, member: ContinuousQuery | None = None) -> list[Emission]:
        for instant in self.agenda.drain():
            self._process_instant(instant)
        return member._drain_undelivered() if member is not None else []

    # -- internals -----------------------------------------------------------

    def _sources_for(self, stream_name: str) -> list[StreamSourceOp]:
        """Distinct source operators reading ``stream_name`` (a source
        shared by several members is staged into exactly once)."""
        seen: set[int] = set()
        out: list[StreamSourceOp] = []
        for query in self.members:
            for source in query._stream_sources.get(stream_name, ()):
                if id(source) not in seen:
                    seen.add(id(source))
                    out.append(source)
        return out

    def _process_instant(self, t: Timestamp) -> None:
        """Run one instant through the shared kernel for every member."""
        assert self.kernel is not None
        self._cursor = t if self._cursor is None else max(self._cursor, t)
        batches = self.kernel.run_instant(t)
        for query, (deltas, _active) in zip(self.members, batches):
            emitted = query._apply_instant(t, deltas)
            query._undelivered.extend(emitted)
