"""Expression compilation: AST expressions → record-level closures.

Column references are resolved to positional indexes against the operator's
input schema *at plan time*, so per-record evaluation is a tuple index, not
a name lookup.  NULL (None) propagates through arithmetic and comparisons
the SQL way: any operation on NULL yields NULL, and a NULL predicate result
is treated as false.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from repro.core.errors import PlanError
from repro.core.records import Record, Schema
from repro.plan.exprs import (
    Binary,
    BinOp,
    Column,
    Expr,
    FuncCall,
    Literal,
    Star,
    Unary,
)
from repro.plan.exprs import (  # noqa: F401  (compatibility re-exports)
    columns_resolvable,
    equality_columns,
)

#: A compiled scalar expression.
Evaluator = Callable[[Record], Any]

_ARITHMETIC = {
    BinOp.ADD: operator.add,
    BinOp.SUB: operator.sub,
    BinOp.MUL: operator.mul,
    BinOp.MOD: operator.mod,
}

_COMPARISONS = {
    BinOp.EQ: operator.eq,
    BinOp.NE: operator.ne,
    BinOp.LT: operator.lt,
    BinOp.LE: operator.le,
    BinOp.GT: operator.gt,
    BinOp.GE: operator.ge,
}

#: Scalar (non-aggregate) functions available in queries.
SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "ABS": abs,
    "LENGTH": len,
    "UPPER": lambda s: s.upper(),
    "LOWER": lambda s: s.lower(),
    "COALESCE": lambda *args: next((a for a in args if a is not None), None),
    "ROUND": round,
}


def compile_expr(expr: Expr, schema: Schema) -> Evaluator:
    """Compile ``expr`` into a closure over records of ``schema``.

    Raises:
        PlanError: on unknown columns, aggregate calls (those must have been
            rewritten away by the planner) or unknown functions.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda record: value
    if isinstance(expr, Column):
        index = schema.index_of(expr.name)
        return lambda record: record[index]
    if isinstance(expr, Star):
        raise PlanError("* is only valid inside COUNT(*) or SELECT *")
    if isinstance(expr, Unary):
        inner = compile_expr(expr.operand, schema)
        if expr.op == "NOT":
            return lambda record: _sql_not(inner(record))
        return lambda record: _null_safe_neg(inner(record))
    if isinstance(expr, Binary):
        return _compile_binary(expr, schema)
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise PlanError(
                f"aggregate {expr.name} cannot appear here; aggregates are "
                f"evaluated by the Aggregate operator")
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise PlanError(f"unknown function {expr.name}")
        arg_evals = [compile_expr(a, schema) for a in expr.args]
        return lambda record: _null_safe_call(
            fn, [e(record) for e in arg_evals])
    raise PlanError(f"cannot compile expression {expr!r}")


def compile_predicate(expr: Expr, schema: Schema) -> Callable[[Record], bool]:
    """Compile a boolean expression; NULL results count as false."""
    evaluator = compile_expr(expr, schema)
    return lambda record: evaluator(record) is True


def _compile_binary(expr: Binary, schema: Schema) -> Evaluator:
    left = compile_expr(expr.left, schema)
    right = compile_expr(expr.right, schema)
    if expr.op is BinOp.AND:
        return lambda record: _sql_and(left(record), right(record))
    if expr.op is BinOp.OR:
        return lambda record: _sql_or(left(record), right(record))
    if expr.op in _COMPARISONS:
        fn = _COMPARISONS[expr.op]
        return lambda record: _null_safe_binary(
            fn, left(record), right(record))
    if expr.op is BinOp.DIV:
        return lambda record: _sql_div(left(record), right(record))
    fn = _ARITHMETIC[expr.op]
    return lambda record: _null_safe_binary(fn, left(record), right(record))


def _null_safe_binary(fn: Callable[[Any, Any], Any], a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    return fn(a, b)


def _sql_div(a: Any, b: Any) -> Any:
    if a is None or b is None or b == 0:
        return None
    return a / b


def _null_safe_neg(a: Any) -> Any:
    return None if a is None else -a


def _null_safe_call(fn: Callable[..., Any], args: list[Any]) -> Any:
    # COALESCE is the one function defined on NULLs.
    if fn is SCALAR_FUNCTIONS["COALESCE"]:
        return fn(*args)
    if any(a is None for a in args):
        return None
    return fn(*args)


def _sql_not(value: Any) -> Any:
    if value is None:
        return None
    return not value


def _sql_and(a: Any, b: Any) -> Any:
    # Three-valued logic: FALSE dominates, then NULL.
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return bool(a) and bool(b)


def _sql_or(a: Any, b: Any) -> Any:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return bool(a) or bool(b)
