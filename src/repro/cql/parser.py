"""Recursive-descent parser for the CQL dialect (paper Listing 1).

Accepted grammar (case-insensitive keywords)::

    query       := [r2s] SELECT [DISTINCT] select_list
                   FROM source ("," source)*
                   [WHERE expr] [GROUP BY column ("," column)*] [HAVING expr]
    r2s         := ISTREAM | DSTREAM | RSTREAM           -- also allowed
                                                         -- right after SELECT
    select_list := "*" | item ("," item)*
    item        := expr [[AS] ident]
    source      := ident [ident] [window]
    window      := "[" RANGE duration [SLIDE duration]
                 | "[" RANGE UNBOUNDED
                 | "[" NOW
                 | "[" ROWS number
                 | "[" PARTITION BY column ("," column)* ROWS number "]"
    duration    := number [MS|SEC|SECOND(S)|MIN|MINUTE(S)|HOUR(S)]

Both R2S placements from the literature are accepted:
``ISTREAM (SELECT ...)`` and ``SELECT ISTREAM ...``.
"""

from __future__ import annotations

from repro.core.errors import ParseError
from repro.core.operators import R2SKind
from repro.core.time import Timestamp, hours, millis, minutes, seconds
from repro.cql.ast import (
    Binary,
    BinOp,
    Column,
    Expr,
    FromSource,
    FuncCall,
    Literal,
    SelectItem,
    SelectStatement,
    SetStatement,
    Star,
    Unary,
    WindowSpec,
    WindowSpecKind,
)
from repro.cql.lexer import TokenCursor, TokenType, tokenize

_R2S_BY_KEYWORD = {
    "ISTREAM": R2SKind.ISTREAM,
    "DSTREAM": R2SKind.DSTREAM,
    "RSTREAM": R2SKind.RSTREAM,
}

_UNIT_FACTORS = {
    "MS": millis, "MILLISECOND": millis, "MILLISECONDS": millis,
    "SEC": seconds, "SECOND": seconds, "SECONDS": seconds,
    "MIN": minutes, "MINUTE": minutes, "MINUTES": minutes,
    "HOUR": hours, "HOURS": hours,
}

#: Keywords that may appear as function names in expressions.
_KEYWORD_FUNCTIONS = frozenset({"MIN"})


_SET_KINDS = {"UNION": "union", "EXCEPT": "difference",
              "INTERSECT": "intersection"}


def parse_query(text: str) -> SelectStatement | SetStatement:
    """Parse a CQL query string: a SELECT block or a set combination
    (``UNION [ALL]`` / ``EXCEPT [ALL]`` / ``INTERSECT [ALL]``)."""
    cursor = TokenCursor(tokenize(text))
    statement = _parse_statement(cursor)
    statement = _parse_set_tail(cursor, statement)
    if not cursor.at_end():
        token = cursor.peek()
        raise ParseError(
            f"unexpected trailing input {token.text!r}", token.position)
    return statement


def _parse_set_tail(cursor: TokenCursor,
                    left: SelectStatement | SetStatement,
                    ) -> SelectStatement | SetStatement:
    while True:
        token = cursor.match_keyword(*_SET_KINDS)
        if token is None:
            return left
        distinct = cursor.match_keyword("ALL") is None
        right = _parse_statement(cursor)
        for operand in (left, right):
            if operand.r2s is not None:
                raise ParseError(
                    "relation-to-stream operators must wrap the whole "
                    "set expression, not an operand", token.position)
        left = SetStatement(_SET_KINDS[token.text], left, right,
                            distinct=distinct)


def _parse_statement(cursor: TokenCursor) -> SelectStatement | SetStatement:
    outer_r2s: R2SKind | None = None
    wrapped = False
    r2s_token = cursor.match_keyword(*_R2S_BY_KEYWORD)
    if r2s_token is not None:
        outer_r2s = _R2S_BY_KEYWORD[r2s_token.text]
        wrapped = cursor.match_symbol("(") is not None

    cursor.expect_keyword("SELECT")
    inner_r2s_token = cursor.match_keyword(*_R2S_BY_KEYWORD)
    if inner_r2s_token is not None:
        if outer_r2s is not None:
            raise ParseError("duplicate relation-to-stream operator",
                             inner_r2s_token.position)
        outer_r2s = _R2S_BY_KEYWORD[inner_r2s_token.text]

    distinct = cursor.match_keyword("DISTINCT") is not None
    items = _parse_select_list(cursor)
    cursor.expect_keyword("FROM")
    sources = [_parse_source(cursor)]
    while cursor.match_symbol(","):
        sources.append(_parse_source(cursor))

    where = None
    if cursor.match_keyword("WHERE"):
        where = _parse_expr(cursor)

    group_by: list[Column] = []
    if cursor.match_keyword("GROUP"):
        cursor.expect_keyword("BY")
        group_by.append(_parse_column(cursor))
        while cursor.match_symbol(","):
            group_by.append(_parse_column(cursor))

    having = None
    if cursor.match_keyword("HAVING"):
        having = _parse_expr(cursor)

    statement = SelectStatement(
        items=tuple(items), sources=tuple(sources), where=where,
        group_by=tuple(group_by), having=having, distinct=distinct,
        r2s=outer_r2s if not wrapped else None)
    if wrapped:
        # A wrapping R2S covers any set combination inside the parens:
        # ``ISTREAM (SELECT ... UNION SELECT ...)``.
        combined = _parse_set_tail(cursor, statement)
        cursor.expect_symbol(")")
        if isinstance(combined, SetStatement):
            return SetStatement(combined.kind, combined.left,
                                combined.right, combined.distinct,
                                r2s=outer_r2s)
        return SelectStatement(
            items=combined.items, sources=combined.sources,
            where=combined.where, group_by=combined.group_by,
            having=combined.having, distinct=combined.distinct,
            r2s=outer_r2s)
    return statement


def _parse_select_list(cursor: TokenCursor) -> list[SelectItem]:
    if cursor.peek().is_symbol("*"):
        cursor.advance()
        return []
    items = [_parse_select_item(cursor)]
    while cursor.match_symbol(","):
        items.append(_parse_select_item(cursor))
    return items


def _parse_select_item(cursor: TokenCursor) -> SelectItem:
    expr = _parse_expr(cursor)
    alias = None
    if cursor.match_keyword("AS"):
        alias = cursor.expect_ident().text
    elif cursor.peek().type is TokenType.IDENT:
        alias = cursor.advance().text
    return SelectItem(expr, alias)


def _parse_source(cursor: TokenCursor) -> FromSource:
    name = cursor.expect_ident().text
    alias = None
    if cursor.peek().type is TokenType.IDENT:
        alias = cursor.advance().text
    elif cursor.match_keyword("AS"):
        alias = cursor.expect_ident().text
    window = None
    if cursor.peek().is_symbol("["):
        window = _parse_window(cursor)
    return FromSource(name=name, alias=alias, window=window)


def _parse_window(cursor: TokenCursor) -> WindowSpec:
    cursor.expect_symbol("[")
    if cursor.match_keyword("NOW"):
        cursor.expect_symbol("]")
        return WindowSpec(kind=WindowSpecKind.NOW)
    if cursor.match_keyword("UNBOUNDED"):
        cursor.expect_symbol("]")
        return WindowSpec(kind=WindowSpecKind.UNBOUNDED)
    if cursor.match_keyword("RANGE"):
        if cursor.match_keyword("UNBOUNDED"):
            cursor.expect_symbol("]")
            return WindowSpec(kind=WindowSpecKind.UNBOUNDED)
        range_ = _parse_duration(cursor)
        slide = None
        if cursor.match_keyword("SLIDE"):
            slide = _parse_duration(cursor)
        cursor.expect_symbol("]")
        return WindowSpec(kind=WindowSpecKind.RANGE, range_=range_,
                          slide=slide)
    if cursor.match_keyword("ROWS"):
        rows = _parse_positive_int(cursor)
        cursor.expect_symbol("]")
        return WindowSpec(kind=WindowSpecKind.ROWS, rows=rows)
    if cursor.match_keyword("PARTITION"):
        cursor.expect_keyword("BY")
        columns = [_parse_column(cursor).name]
        while cursor.match_symbol(","):
            columns.append(_parse_column(cursor).name)
        cursor.expect_keyword("ROWS")
        rows = _parse_positive_int(cursor)
        cursor.expect_symbol("]")
        return WindowSpec(kind=WindowSpecKind.PARTITIONED, rows=rows,
                          partition_by=tuple(columns))
    token = cursor.peek()
    raise ParseError(f"bad window specification near {token.text!r}",
                     token.position)


def _parse_duration(cursor: TokenCursor) -> Timestamp:
    token = cursor.expect_number()
    amount = float(token.text)
    unit = cursor.match_keyword(*_UNIT_FACTORS)
    factor = _UNIT_FACTORS[unit.text] if unit else millis
    value = factor(amount)
    if value <= 0:
        raise ParseError(f"duration must be positive, got {token.text}",
                         token.position)
    return value


def _parse_positive_int(cursor: TokenCursor) -> int:
    token = cursor.expect_number()
    if "." in token.text:
        raise ParseError(f"expected integer, got {token.text}",
                         token.position)
    value = int(token.text)
    if value <= 0:
        raise ParseError(f"expected positive integer, got {value}",
                         token.position)
    return value


def _parse_column(cursor: TokenCursor) -> Column:
    first = cursor.expect_ident().text
    if cursor.match_symbol("."):
        second = cursor.expect_ident().text
        return Column(f"{first}.{second}")
    return Column(first)


# ---------------------------------------------------------------------------
# Expressions (precedence climbing)
# ---------------------------------------------------------------------------


def _parse_expr(cursor: TokenCursor) -> Expr:
    return _parse_or(cursor)


def _parse_or(cursor: TokenCursor) -> Expr:
    expr = _parse_and(cursor)
    while cursor.match_keyword("OR"):
        expr = Binary(BinOp.OR, expr, _parse_and(cursor))
    return expr


def _parse_and(cursor: TokenCursor) -> Expr:
    expr = _parse_not(cursor)
    while cursor.match_keyword("AND"):
        expr = Binary(BinOp.AND, expr, _parse_not(cursor))
    return expr


def _parse_not(cursor: TokenCursor) -> Expr:
    if cursor.match_keyword("NOT"):
        return Unary("NOT", _parse_not(cursor))
    return _parse_comparison(cursor)


_COMPARISONS = {
    "=": BinOp.EQ, "<>": BinOp.NE, "!=": BinOp.NE,
    "<": BinOp.LT, "<=": BinOp.LE, ">": BinOp.GT, ">=": BinOp.GE,
}


def _parse_comparison(cursor: TokenCursor) -> Expr:
    expr = _parse_additive(cursor)
    token = cursor.match_symbol(*_COMPARISONS)
    if token is not None:
        expr = Binary(_COMPARISONS[token.text], expr,
                      _parse_additive(cursor))
    return expr


def _parse_additive(cursor: TokenCursor) -> Expr:
    expr = _parse_multiplicative(cursor)
    while True:
        token = cursor.match_symbol("+", "-")
        if token is None:
            return expr
        op = BinOp.ADD if token.text == "+" else BinOp.SUB
        expr = Binary(op, expr, _parse_multiplicative(cursor))


def _parse_multiplicative(cursor: TokenCursor) -> Expr:
    expr = _parse_unary(cursor)
    while True:
        token = cursor.match_symbol("*", "/", "%")
        if token is None:
            return expr
        op = {"*": BinOp.MUL, "/": BinOp.DIV, "%": BinOp.MOD}[token.text]
        expr = Binary(op, expr, _parse_unary(cursor))


def _parse_unary(cursor: TokenCursor) -> Expr:
    if cursor.match_symbol("-"):
        return Unary("-", _parse_unary(cursor))
    return _parse_primary(cursor)


def _parse_primary(cursor: TokenCursor) -> Expr:
    token = cursor.peek()
    if token.is_symbol("("):
        cursor.advance()
        expr = _parse_expr(cursor)
        cursor.expect_symbol(")")
        return expr
    if token.type is TokenType.NUMBER:
        cursor.advance()
        text = token.text
        return Literal(float(text) if "." in text else int(text))
    if token.type is TokenType.STRING:
        cursor.advance()
        return Literal(token.text)
    if token.is_keyword("TRUE"):
        cursor.advance()
        return Literal(True)
    if token.is_keyword("FALSE"):
        cursor.advance()
        return Literal(False)
    if token.is_keyword("NULL"):
        cursor.advance()
        return Literal(None)
    if token.is_keyword(*_KEYWORD_FUNCTIONS) and \
            cursor.peek(1).is_symbol("("):
        cursor.advance()
        return _parse_call(cursor, token.text)
    if token.type is TokenType.IDENT:
        cursor.advance()
        if cursor.peek().is_symbol("("):
            return _parse_call(cursor, token.text.upper())
        if cursor.match_symbol("."):
            second = cursor.expect_ident().text
            return Column(f"{token.text}.{second}")
        return Column(token.text)
    raise ParseError(f"unexpected token {token.text!r}", token.position)


def _parse_call(cursor: TokenCursor, name: str) -> FuncCall:
    cursor.expect_symbol("(")
    args: list[Expr] = []
    if cursor.peek().is_symbol("*"):
        cursor.advance()
        args.append(Star())
    elif not cursor.peek().is_symbol(")"):
        args.append(_parse_expr(cursor))
        while cursor.match_symbol(","):
            args.append(_parse_expr(cursor))
    cursor.expect_symbol(")")
    return FuncCall(name.upper(), tuple(args))
