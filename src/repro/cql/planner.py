"""Planner: CQL ASTs → logical plans.

The planner is deliberately naive — it produces the straightforward plan
(cross joins in FROM order, one Filter holding the whole WHERE clause on
top) and leaves rewriting to :mod:`repro.plan.rules`, mirroring how the
paper separates query *models* (Section 3.1) from query *optimisation*
(Sections 3.2 / 4.2).  The exception is aggregate extraction, which is a
semantic necessity rather than an optimisation: aggregate calls in SELECT /
HAVING are pulled into an :class:`~repro.plan.ir.Aggregate` node and
replaced by column references.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import PlanError
from repro.core.operators import AggregateKind
from repro.core.windows import (
    CountWindow,
    NowWindow,
    PartitionedWindow,
    RangeWindow,
    SteppedRangeWindow,
    UnboundedWindow,
)
from repro.plan.ir import (
    Aggregate,
    AggregateExpr,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    RelationScan,
    RelToStream,
    SetOp,
    StreamScan,
    WindowOp,
)
from repro.cql.ast import (
    Binary,
    Column,
    Expr,
    FuncCall,
    SelectStatement,
    SetStatement,
    Star,
    Unary,
    UNBOUNDED_SPEC,
    WindowSpec,
    WindowSpecKind,
)
from repro.cql.catalog import Catalog

_AGGREGATE_KINDS = {
    "COUNT": AggregateKind.COUNT,
    "SUM": AggregateKind.SUM,
    "AVG": AggregateKind.AVG,
    "MIN": AggregateKind.MIN,
    "MAX": AggregateKind.MAX,
}


def plan_statement(statement: "SelectStatement | SetStatement",
                   catalog: Catalog) -> LogicalOp:
    """Build the naive logical plan for a parsed statement."""
    if isinstance(statement, SetStatement):
        return _plan_set(statement, catalog)
    plan = _plan_sources(statement, catalog)
    if statement.where is not None:
        plan = Filter(plan, statement.where)
    plan = _plan_projection(statement, plan)
    if statement.distinct:
        plan = Distinct(plan)
    if statement.r2s is not None:
        plan = RelToStream(plan, statement.r2s)
    return plan


def _plan_set(statement: SetStatement, catalog: Catalog) -> LogicalOp:
    left = plan_statement(statement.left, catalog)
    right = plan_statement(statement.right, catalog)
    if left.schema.arity != right.schema.arity:
        raise PlanError(
            f"set operands must have equal arity: "
            f"{left.schema.arity} vs {right.schema.arity}")
    if right.schema.fields != left.schema.fields:
        # SQL convention: the left operand names the output columns; the
        # right side is relabelled positionally.
        right = Project(
            right,
            tuple(Column(f) for f in right.schema.fields),
            left.schema.fields)
    plan: LogicalOp = SetOp(statement.kind, left, right)
    if statement.distinct:
        plan = Distinct(plan)
    if statement.r2s is not None:
        plan = RelToStream(plan, statement.r2s)
    return plan


def _plan_sources(statement: SelectStatement, catalog: Catalog) -> LogicalOp:
    if not statement.sources:
        raise PlanError("query needs at least one FROM source")
    seen_bindings: set[str] = set()
    plans: list[LogicalOp] = []
    for source in statement.sources:
        binding = source.binding
        if binding in seen_bindings:
            raise PlanError(f"duplicate source binding {binding!r}")
        seen_bindings.add(binding)
        if catalog.is_stream(source.name):
            schema = catalog.stream(source.name).schema.qualify(binding)
            scan = StreamScan(source.name, binding, schema)
            spec = source.window or UNBOUNDED_SPEC
            plans.append(WindowOp(scan, spec))
        elif catalog.is_relation(source.name):
            if source.window is not None:
                raise PlanError(
                    f"window on relation {source.name!r}: windows apply "
                    f"only to streams")
            schema = catalog.relation(source.name).schema.qualify(binding)
            plans.append(RelationScan(source.name, binding, schema))
        else:
            raise PlanError(f"unknown source {source.name!r}")
    plan = plans[0]
    for right in plans[1:]:
        plan = Join(plan, right)  # cross join; optimiser introduces keys
    return plan


def _plan_projection(statement: SelectStatement,
                     plan: LogicalOp) -> LogicalOp:
    has_aggregates = bool(statement.group_by) or any(
        _contains_aggregate(item.expr) for item in statement.items) or (
        statement.having is not None
        and _contains_aggregate(statement.having))

    if not has_aggregates:
        if statement.having is not None:
            raise PlanError("HAVING requires GROUP BY or aggregates")
        if statement.is_star:
            return plan
        exprs = tuple(item.expr for item in statement.items)
        names = tuple(item.output_name() for item in statement.items)
        _check_unique(names)
        return Project(plan, exprs, names)

    if statement.is_star:
        raise PlanError("SELECT * cannot be combined with aggregation")

    collector = _AggregateCollector()
    rewritten_items = [
        (collector.rewrite(item.expr, alias=item.alias), item.output_name())
        for item in statement.items]
    rewritten_having = (collector.rewrite(statement.having)
                        if statement.having is not None else None)

    group_columns = tuple(c.name for c in statement.group_by)
    # Group columns keep the name they were written under (qualified or
    # not), so post-aggregation expressions resolve either way: an exact
    # match for ``R.floor``, a suffix match for plain ``floor``.
    group_names = group_columns
    _check_unique(group_names + tuple(s.name for s in collector.specs))

    plan = Aggregate(plan, group_columns, group_names,
                     tuple(collector.specs))
    if rewritten_having is not None:
        plan = Filter(plan, rewritten_having)

    exprs = tuple(expr for expr, _ in rewritten_items)
    names = tuple(name for _, name in rewritten_items)
    _check_unique(names)
    # Non-aggregate columns in SELECT must come from the GROUP BY list.
    for expr in exprs:
        for column in expr.columns():
            available = set(group_names) | \
                {s.name for s in collector.specs} | set(group_columns)
            if column.name not in available and \
                    _output_name(column.name) not in available:
                raise PlanError(
                    f"column {column.name!r} must appear in GROUP BY or an "
                    f"aggregate")
    return Project(plan, exprs, names)


def _output_name(column: str) -> str:
    return column.rpartition(".")[2]


def _check_unique(names: tuple[str, ...]) -> None:
    if len(set(names)) != len(names):
        raise PlanError(f"duplicate output column names in {names}")


def _contains_aggregate(expr: Expr) -> bool:
    from repro.cql.ast import contains_aggregate
    return contains_aggregate(expr)


@dataclass
class _AggregateCollector:
    """Extracts aggregate calls, assigning each a stable output column."""

    def __post_init__(self) -> None:
        self.specs: list[AggregateExpr] = []
        self._by_key: dict[tuple[str, str], str] = {}

    def rewrite(self, expr: Expr, alias: str | None = None) -> Expr:
        """Replace aggregate calls in ``expr`` by generated columns."""
        if isinstance(expr, FuncCall) and expr.name in _AGGREGATE_KINDS:
            return Column(self._register(expr, alias))
        if isinstance(expr, Binary):
            return Binary(expr.op, self.rewrite(expr.left),
                          self.rewrite(expr.right))
        if isinstance(expr, Unary):
            return Unary(expr.op, self.rewrite(expr.operand))
        if isinstance(expr, FuncCall):
            return FuncCall(expr.name,
                            tuple(self.rewrite(a) for a in expr.args))
        return expr

    def _register(self, call: FuncCall, alias: str | None) -> str:
        kind = _AGGREGATE_KINDS[call.name]
        if len(call.args) != 1:
            raise PlanError(f"{call.name} takes exactly one argument")
        arg = call.args[0]
        if isinstance(arg, Star):
            if kind is not AggregateKind.COUNT:
                raise PlanError(f"{call.name}(*) is not valid")
            arg = None
        key = (call.name, str(arg))
        if key in self._by_key:
            return self._by_key[key]
        name = alias or f"{call.name.lower()}_{len(self.specs)}"
        if any(spec.name == name for spec in self.specs):
            raise PlanError(f"duplicate aggregate alias {name!r}")
        self.specs.append(AggregateExpr(kind, arg, name))
        self._by_key[key] = name
        return name


def window_object(spec: WindowSpec, schema=None):
    """Instantiate the core window object for a parsed window spec.

    ``schema`` is the (qualified) input schema — needed by partitioned
    windows to build their key function.
    """
    if spec.kind is WindowSpecKind.NOW:
        return NowWindow()
    if spec.kind is WindowSpecKind.UNBOUNDED:
        return UnboundedWindow()
    if spec.kind is WindowSpecKind.RANGE:
        if spec.slide:
            return SteppedRangeWindow(spec.range_, spec.slide)
        return RangeWindow(spec.range_)
    if spec.kind is WindowSpecKind.ROWS:
        return CountWindow(spec.rows)
    if spec.kind is WindowSpecKind.PARTITIONED:
        if schema is None:
            raise PlanError("partitioned window needs the input schema")
        indexes = [schema.index_of(c) for c in spec.partition_by]
        return PartitionedWindow(
            key_fn=lambda record: tuple(record[i] for i in indexes),
            rows=spec.rows, key_names=spec.partition_by)
    raise PlanError(f"unsupported window spec {spec}")
