"""governance — the paper's Section 7 open challenges, made executable.

* :mod:`repro.governance.provenance` — why-provenance through streaming
  pipelines (the "Streaming Data Governance" challenge, provenance half);
* :mod:`repro.governance.consistency` — in-stream constraint enforcement
  with repair policies and quarantine (the consistency/cleansing half);
* :mod:`repro.governance.portability` — porting queries between the
  library's SQL and CQL dialects with the window-semantics differences
  made explicit (the "Query Portability" challenge).
"""

from repro.governance.consistency import (
    CleansingStats,
    Constraint,
    DomainConstraint,
    MonotonicConstraint,
    RepairAction,
    StreamCleaner,
    UniqueKeyConstraint,
    Violation,
)
from repro.governance.portability import (
    PortabilityError,
    PortabilityNote,
    PortedQuery,
    port_sql_to_cql,
)
from repro.governance.provenance import (
    Provenant,
    WhyPipeline,
    blame,
    verify_witness,
)

__all__ = [
    # provenance
    "WhyPipeline", "Provenant", "verify_witness", "blame",
    # consistency
    "StreamCleaner", "Constraint", "DomainConstraint",
    "UniqueKeyConstraint", "MonotonicConstraint", "RepairAction",
    "Violation", "CleansingStats",
    # portability
    "port_sql_to_cql", "PortedQuery", "PortabilityNote",
    "PortabilityError",
]
