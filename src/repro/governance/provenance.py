"""Why-provenance for streaming pipelines (paper Section 7, "Streaming
Data Governance").

The paper notes that provenance research for continuous queries is
nascent and currently limited to why/how-provenance within streaming
pipelines framed in functional languages (Erebus; Pintor et al.).  This
module implements that state of the art: a functional pipeline whose
every output carries its **why-provenance** — the set of input element
ids that contributed to it — maintained through maps, filters, flat-maps
and windowed aggregation.

The defining property (tested, and checkable via :func:`verify_witness`):
replaying *only* an output's witness inputs through the pipeline
reproduces that output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.errors import StateError
from repro.core.time import Timestamp
from repro.core.windows import WindowAssigner


@dataclass(frozen=True)
class Provenant:
    """A value annotated with its why-provenance."""

    value: Any
    timestamp: Timestamp
    why: frozenset[int]   # contributing source element ids


class WhyPipeline:
    """A functional stream pipeline with why-provenance tracking.

    Stages are recorded declaratively; :meth:`run` executes over
    ``(value, timestamp)`` pairs, assigning each input an id (its arrival
    index) and threading witness sets through every stage.
    """

    def __init__(self) -> None:
        self._stages: list[tuple[str, Any]] = []

    # -- stage constructors (chainable) ----------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "WhyPipeline":
        self._stages.append(("map", fn))
        return self

    def filter(self, predicate: Callable[[Any], bool]) -> "WhyPipeline":
        self._stages.append(("filter", predicate))
        return self

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "WhyPipeline":
        self._stages.append(("flat_map", fn))
        return self

    def window_aggregate(self, assigner: WindowAssigner,
                         key_fn: Callable[[Any], Any],
                         aggregate: Callable[[list[Any]], Any],
                         ) -> "WhyPipeline":
        """Per-(key, window) aggregation: the output's witness is the union
        of the witnesses of every element in the pane."""
        self._stages.append(("window", (assigner, key_fn, aggregate)))
        return self

    # -- execution ----------------------------------------------------------------

    def run(self, elements: Iterable[tuple[Any, Timestamp]],
            ids: Iterable[int] | None = None) -> list[Provenant]:
        """Execute over (value, timestamp) pairs.

        ``ids`` overrides the source ids (used by witness replay); by
        default element i gets id i.
        """
        current: list[Provenant] = []
        id_iter = iter(ids) if ids is not None else None
        for index, (value, timestamp) in enumerate(elements):
            source_id = next(id_iter) if id_iter is not None else index
            current.append(Provenant(value, timestamp,
                                     frozenset([source_id])))
        for kind, payload in self._stages:
            current = self._apply(kind, payload, current)
        return current

    def _apply(self, kind: str, payload: Any,
               elements: list[Provenant]) -> list[Provenant]:
        if kind == "map":
            return [Provenant(payload(e.value), e.timestamp, e.why)
                    for e in elements]
        if kind == "filter":
            return [e for e in elements if payload(e.value)]
        if kind == "flat_map":
            out = []
            for e in elements:
                for value in payload(e.value):
                    out.append(Provenant(value, e.timestamp, e.why))
            return out
        if kind == "window":
            assigner, key_fn, aggregate = payload
            panes: dict[tuple[Any, Any], list[Provenant]] = {}
            for e in elements:
                for window in assigner.assign(e.timestamp):
                    panes.setdefault((key_fn(e.value), window),
                                     []).append(e)
            out = []
            for (key, window), members in sorted(
                    panes.items(), key=lambda kv: (kv[0][1], repr(kv[0]))):
                why = frozenset().union(*(m.why for m in members))
                value = aggregate([m.value for m in members])
                out.append(Provenant((key, value, window),
                                     window.end - 1, why))
            return out
        raise StateError(f"unknown stage kind {kind!r}")


def verify_witness(pipeline: WhyPipeline,
                   inputs: list[tuple[Any, Timestamp]],
                   output: Provenant) -> bool:
    """The why-provenance correctness check: replaying only the witness
    inputs reproduces the output's value."""
    witness_inputs = [(inputs[i], i) for i in sorted(output.why)]
    replayed = pipeline.run([pair for pair, _ in witness_inputs],
                            ids=[i for _, i in witness_inputs])
    return any(r.value == output.value and r.why == output.why
               for r in replayed)


def blame(outputs: Iterable[Provenant],
          predicate: Callable[[Any], bool]) -> frozenset[int]:
    """Which inputs are responsible for the outputs matching
    ``predicate``?  (The debugging question provenance exists to answer:
    'why is this alert firing?')"""
    guilty: frozenset[int] = frozenset()
    for output in outputs:
        if predicate(output.value):
            guilty |= output.why
    return guilty
