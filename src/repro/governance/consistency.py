"""In-stream consistency enforcement (paper Section 7, "Streaming Data
Governance").

The paper calls data cleansing under streaming latency constraints an
unaddressed challenge and suggests "integrating consistency measures
directly into continuous query frameworks".  This module is that
integration point: a :class:`StreamCleaner` sits in front of a continuous
query and enforces declared constraints per arrival — O(1)-ish per
element, never blocking the stream — with explicit repair policies and a
quarantine channel instead of silent drops.

Constraint kinds: domain predicates, windowed key uniqueness, and
per-key monotonicity (sequence regressions) — the shapes sensor/CDC
pipelines actually violate.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

from repro.core.errors import StateError
from repro.core.time import Timestamp

Record = Mapping[str, Any]


class RepairAction(enum.Enum):
    """What to do with a violating record."""

    DROP = "drop"               # discard (but count + quarantine)
    REPAIR = "repair"           # apply the constraint's repair function
    LAST_GOOD = "last_good"     # substitute the key's last valid record
    PASS_THROUGH = "pass"       # let it through, flagged (audit mode)


@dataclass(frozen=True)
class Violation:
    """One detected inconsistency."""

    constraint: str
    record: dict[str, Any]
    timestamp: Timestamp
    detail: str


class Constraint:
    """Base: check one record; optionally repair it."""

    def __init__(self, name: str,
                 action: RepairAction = RepairAction.DROP) -> None:
        self.name = name
        self.action = action

    def check(self, record: Record, t: Timestamp) -> str | None:
        """None when consistent, else a human-readable detail."""
        raise NotImplementedError

    def repair(self, record: Record) -> dict[str, Any]:
        raise StateError(f"constraint {self.name!r} has no repair")

    def observe_valid(self, record: Record, t: Timestamp) -> None:
        """Hook: a record passed all constraints (state update point)."""


class DomainConstraint(Constraint):
    """A per-record predicate, e.g. ``0 <= temp <= 60``.

    With ``action=REPAIR``, ``repair_fn`` fixes the record (clamping,
    defaulting) instead of dropping it.
    """

    def __init__(self, name: str,
                 predicate: Callable[[Record], bool],
                 action: RepairAction = RepairAction.DROP,
                 repair_fn: Callable[[Record], dict[str, Any]] | None = None,
                 ) -> None:
        super().__init__(name, action)
        self._predicate = predicate
        self._repair_fn = repair_fn
        if action is RepairAction.REPAIR and repair_fn is None:
            raise StateError(f"{name!r}: REPAIR needs a repair_fn")

    def check(self, record: Record, t: Timestamp) -> str | None:
        try:
            ok = self._predicate(record)
        except Exception as exc:  # malformed record
            return f"predicate error: {exc}"
        return None if ok else "domain predicate failed"

    def repair(self, record: Record) -> dict[str, Any]:
        return self._repair_fn(record)


class UniqueKeyConstraint(Constraint):
    """Key uniqueness within a sliding window (streaming primary key).

    A record whose key was already seen within ``window`` ticks is a
    duplicate — the at-least-once-delivery artefact cleansing must absorb.
    """

    def __init__(self, name: str,
                 key_fn: Callable[[Record], Hashable],
                 window: Timestamp,
                 action: RepairAction = RepairAction.DROP) -> None:
        super().__init__(name, action)
        if window <= 0:
            raise StateError("uniqueness window must be positive")
        self._key_fn = key_fn
        self._window = window
        self._recent: dict[Hashable, Timestamp] = {}
        self._order: deque[tuple[Timestamp, Hashable]] = deque()

    def check(self, record: Record, t: Timestamp) -> str | None:
        self._expire(t)
        key = self._key_fn(record)
        if key in self._recent:
            return f"duplicate key {key!r} within {self._window} ticks"
        return None

    def observe_valid(self, record: Record, t: Timestamp) -> None:
        key = self._key_fn(record)
        self._recent[key] = t
        self._order.append((t, key))

    def _expire(self, t: Timestamp) -> None:
        horizon = t - self._window
        while self._order and self._order[0][0] <= horizon:
            stamped, key = self._order.popleft()
            if self._recent.get(key) == stamped:
                del self._recent[key]


class MonotonicConstraint(Constraint):
    """A per-key field must never regress (sequence numbers, meter
    readings).  ``LAST_GOOD`` substitutes the key's last valid record."""

    def __init__(self, name: str,
                 key_fn: Callable[[Record], Hashable],
                 value_fn: Callable[[Record], Any],
                 action: RepairAction = RepairAction.DROP) -> None:
        super().__init__(name, action)
        self._key_fn = key_fn
        self._value_fn = value_fn
        self._high: dict[Hashable, Any] = {}

    def check(self, record: Record, t: Timestamp) -> str | None:
        key = self._key_fn(record)
        value = self._value_fn(record)
        high = self._high.get(key)
        if high is not None and value < high:
            return f"{value!r} regresses below {high!r} for key {key!r}"
        return None

    def observe_valid(self, record: Record, t: Timestamp) -> None:
        key = self._key_fn(record)
        value = self._value_fn(record)
        if key not in self._high or value > self._high[key]:
            self._high[key] = value


@dataclass
class CleansingStats:
    admitted: int = 0
    repaired: int = 0
    substituted: int = 0
    dropped: int = 0
    flagged: int = 0

    @property
    def total(self) -> int:
        return (self.admitted + self.repaired + self.substituted
                + self.dropped + self.flagged)


class StreamCleaner:
    """The consistency gate in front of a continuous query.

    Per arrival: constraints are checked in declaration order; the first
    violation triggers its constraint's repair action.  Every violation is
    recorded in the quarantine log regardless of the action, so no
    inconsistency passes silently (the governance requirement).
    """

    def __init__(self, constraints: list[Constraint]) -> None:
        if not constraints:
            raise StateError("a cleaner needs at least one constraint")
        self.constraints = list(constraints)
        self.quarantine: list[Violation] = []
        self.stats = CleansingStats()
        self._last_good: dict[Hashable, dict[str, Any]] = {}
        self._last_good_key: Callable[[Record], Hashable] | None = None

    def with_last_good_key(self, key_fn: Callable[[Record], Hashable],
                           ) -> "StreamCleaner":
        """Enable LAST_GOOD substitution, keyed by ``key_fn``."""
        self._last_good_key = key_fn
        return self

    def process(self, record: Record,
                t: Timestamp) -> dict[str, Any] | None:
        """Cleanse one arrival; returns the record to admit (possibly
        repaired/substituted) or None when dropped."""
        current = dict(record)
        outcome = "admitted"
        for constraint in self.constraints:
            detail = constraint.check(current, t)
            if detail is None:
                continue
            self.quarantine.append(
                Violation(constraint.name, dict(record), t, detail))
            if constraint.action is RepairAction.DROP:
                self.stats.dropped += 1
                return None
            if constraint.action is RepairAction.REPAIR:
                current = dict(constraint.repair(current))
                outcome = "repaired"
                continue
            if constraint.action is RepairAction.LAST_GOOD:
                substitute = self._substitute(current)
                if substitute is None:
                    self.stats.dropped += 1
                    return None
                current = substitute
                outcome = "substituted"
                continue
            outcome = "flagged"  # PASS_THROUGH
        for constraint in self.constraints:
            constraint.observe_valid(current, t)
        if self._last_good_key is not None:
            self._last_good[self._last_good_key(current)] = dict(current)
        setattr(self.stats, outcome,
                getattr(self.stats, outcome) + 1)
        return current

    def _substitute(self, record: Record) -> dict[str, Any] | None:
        if self._last_good_key is None:
            raise StateError(
                "LAST_GOOD requires with_last_good_key(...)")
        return self._last_good.get(self._last_good_key(record))

    @property
    def violation_rate(self) -> float:
        total = self.stats.total
        return len(self.quarantine) / total if total else 0.0
