"""Query portability across dialects (paper Section 7, "Query
Portability").

The paper identifies porting workloads across systems — and especially
the varied semantics of windowing across languages — as a primary
adoption obstacle.  This module is a working porting layer for the
library's own two dialects: it translates a streaming-SQL statement
(window-in-GROUP-BY, Begoli-style) into an equivalent CQL query
(window-in-FROM, Arasu-style), making the semantic gaps *explicit*:

* ``TUMBLE(w)``   →  ``[Range w Slide w]``  — CQL's stepped window covers
  ``(b-w, b]`` where SQL's tumbling window covers ``[b-w, b)``: the two
  agree except for events landing exactly on a window boundary, which the
  translation reports as a :class:`PortabilityNote`;
* ``HOP(w, s)``   →  ``[Range w Slide s]`` — same boundary caveat;
* ``SESSION(g)``  →  **not portable**: CQL has no data-driven windows
  (raises :class:`PortabilityError`, listing the gap);
* ``EMIT CHANGES``→  a plain (relation-output) CQL continuous query;
  ``EMIT FINAL``  →  the CQL relation *sampled at window closes*.

:func:`port_sql_to_cql` returns the CQL text plus the notes; the tests
run both dialects on one workload and verify the results coincide off
boundaries — exactly the compatibility statement the paper calls for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.cql.ast import SelectItem
from repro.sql.ast import EmitMode, GroupWindowKind
from repro.sql.parser import parse_sql


class PortabilityError(ReproError):
    """The source query uses a feature the target dialect cannot express."""


@dataclass(frozen=True)
class PortabilityNote:
    """A semantic difference the ported query carries."""

    topic: str
    detail: str


@dataclass(frozen=True)
class PortedQuery:
    """The result of porting: target text + the fine print."""

    cql_text: str
    notes: tuple[PortabilityNote, ...]
    sample_at_closes: bool   # EMIT FINAL: read the relation at boundaries
    window_size: int | None
    window_slide: int | None


def port_sql_to_cql(sql_text: str) -> PortedQuery:
    """Translate a streaming-SQL query into the CQL dialect.

    Raises:
        PortabilityError: for constructs CQL cannot express (sessions,
            the ``window_start``/``window_end`` pseudo-columns).
    """
    statement = parse_sql(sql_text)
    notes: list[PortabilityNote] = []
    window_clause = ""
    size = slide = None

    if statement.window is not None:
        window = statement.window
        if window.kind is GroupWindowKind.SESSION:
            raise PortabilityError(
                "SESSION windows are data-driven; CQL's window operators "
                "are time/tuple-based — no equivalent exists (the "
                "'diverse windowing semantics' gap of paper Section 7)")
        size = window.size
        slide = window.slide if window.kind is GroupWindowKind.HOP \
            else window.size
        window_clause = f" [Range {size} Slide {slide}]"
        notes.append(PortabilityNote(
            "window boundaries",
            f"CQL's stepped window covers (b-{size}, b] where SQL's "
            f"covers [b-{size}, b): results differ for events exactly on "
            f"a boundary (timestamps divisible by {slide})"))

    for item in statement.items:
        for column in item.expr.columns():
            if column.name in ("window_start", "window_end"):
                raise PortabilityError(
                    f"CQL exposes no {column.name!r} pseudo-column; "
                    f"window bounds are implicit in evaluation time")

    select_list = _render_items(statement.items)
    text = f"SELECT {select_list} FROM {statement.source}"
    if statement.alias:
        text += f" {statement.alias}"
    text += window_clause
    if statement.where is not None:
        text += f" WHERE {statement.where}"
    if statement.group_by:
        text += " GROUP BY " + ", ".join(
            c.name for c in statement.group_by)
    if statement.having is not None:
        text += f" HAVING {statement.having}"

    if statement.emit is EmitMode.CHANGES and statement.window is None:
        notes.append(PortabilityNote(
            "emission", "EMIT CHANGES maps to CQL's continuously "
            "maintained relation (read it after each arrival)"))
    elif statement.emit is EmitMode.FINAL:
        notes.append(PortabilityNote(
            "emission", "EMIT FINAL has no CQL keyword; the ported query "
            "is the relation sampled at each window close"))

    return PortedQuery(
        cql_text=text, notes=tuple(notes),
        sample_at_closes=statement.emit is EmitMode.FINAL,
        window_size=size, window_slide=slide)


def _render_items(items: tuple[SelectItem, ...]) -> str:
    if not items:
        return "*"
    rendered = []
    for item in items:
        text = str(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        rendered.append(text)
    return ", ".join(rendered)
