"""Provoking failures: operator crashes, faulty transport, stalled sources.

Three injection primitives, one per failure class the survey's §4.2
recovery protocols must survive:

* **process crash** — :func:`install_crash` arms a :class:`CrashFuse` on
  one physical operator; after the fuse's progress budget is spent the
  operator raises :class:`InjectedCrash` *after* mutating its state but
  *before* its output reaches downstream — the torn in-flight state a
  consistent snapshot must be able to roll back.
* **faulty transport** — :class:`ChaosBroker` wraps a
  :class:`repro.runtime.broker.Broker` and runs every ``fetch`` through a
  seeded lossy channel that drops, duplicates and reorders deliveries
  (the at-most/at-least-once failure modes of a real log consumer).
* **stalled source** — :class:`SourceStall` withholds one source's pushes
  for a window of the drive sequence, long enough to trip the kernel's
  ``idle_timeout`` machinery, then releases the held elements.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Callable

from repro.core.errors import ReproError


class InjectedCrash(ReproError):
    """A deliberately provoked failure (fault-injection harness)."""


class CrashFuse:
    """Counts progress and blows after ``at`` units, ``times`` times.

    The fuse is shared between an injector and the test driving it:
    ``fired`` tells the driver whether the fault actually triggered (a
    crash scheduled beyond the stream's end never does — such runs are
    skipped, not silently passed).
    """

    def __init__(self, at: int, times: int = 1) -> None:
        if at <= 0:
            raise ValueError(f"fuse threshold must be positive, got {at}")
        self.at = at
        self.times = times
        self.count = 0
        self.fired = 0

    def record(self, n: int = 1) -> bool:
        """Add ``n`` progress units; True when the crash should fire now."""
        self.count += n
        if self.fired < self.times and self.count >= self.at:
            self.fired += 1
            return True
        return False


def install_crash(query, position: int, fuse: CrashFuse) -> str:
    """Arm ``fuse`` on the operator at ``position`` of ``query``'s tree.

    ``position`` indexes :meth:`ContinuousQuery.operators` (depth-first).
    The operator's ``process`` is wrapped per instance: each invocation
    counts one progress unit plus one per emitted delta (so operators
    that absorb their input still make progress toward the threshold),
    and when the fuse blows the wrapper raises **after** the operator has
    already applied the batch to its state — the output is lost mid-air
    and the state is torn relative to downstream, which is exactly the
    inconsistency checkpoint rollback must erase.

    Returns the crashed operator's label.  The wrapper stays installed
    after the fuse is spent; replay runs through it untouched.
    """
    ops = query.operators()
    if not 0 <= position < len(ops):
        raise ValueError(
            f"operator position {position} out of range: plan has "
            f"{len(ops)} operators "
            f"({', '.join(label for label, _ in ops)})")
    label, op = ops[position]
    original = op.process

    def crashing(t: Any, child_deltas: Any,
                 _orig: Callable = original, _fuse: CrashFuse = fuse,
                 _label: str = label, _position: int = position) -> Any:
        deltas = _orig(t, child_deltas)
        if _fuse.record(1 + len(deltas)):
            raise InjectedCrash(
                f"injected crash in {_label} (operator {_position}) "
                f"at t={t}")
        return deltas

    op.process = crashing
    return label


class ChaosBroker:
    """A :class:`~repro.runtime.broker.Broker` behind a faulty network.

    Produce goes straight to the real log (the broker itself is durable);
    **fetch** responses pass through a seeded lossy channel: each record
    independently dropped with probability ``drop`` or echoed twice with
    probability ``duplicate``, and the whole response shuffled with
    probability ``reorder``.  Faults are tallied in :attr:`faults` so
    tests can assert the chaos actually happened.  Everything else
    delegates to the wrapped broker.
    """

    def __init__(self, broker, seed: int = 0, drop: float = 0.0,
                 duplicate: float = 0.0, reorder: float = 0.0) -> None:
        self._inner = broker
        self._rng = random.Random(seed)
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.faults: Counter = Counter()

    def fetch(self, topic_name: str, partition: int, offset: int,
              max_records: int | None = None):
        records = self._inner.fetch(topic_name, partition, offset,
                                    max_records)
        out = []
        for record in records:
            if self._rng.random() < self.drop:
                self.faults["dropped"] += 1
                continue
            out.append(record)
            if self._rng.random() < self.duplicate:
                out.append(record)
                self.faults["duplicated"] += 1
        if len(out) > 1 and self._rng.random() < self.reorder:
            self._rng.shuffle(out)
            self.faults["reordered"] += 1
        return out

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class SourceStall:
    """Withholds one source's elements for a window of the drive sequence.

    The driver consults :meth:`admit` for every element it is about to
    push; during the stall window (drive steps ``[after, after+duration)``)
    elements of the stalled source are held instead of delivered, which
    starves the source long enough to trip a plan's ``idle_timeout``.
    :meth:`release` hands the held elements back for late delivery, the
    reactivation path the idle-source machinery must survive.
    """

    def __init__(self, source: str, after: int, duration: int) -> None:
        self.source = source
        self.after = after
        self.duration = duration
        self._step = 0
        self.held: list[Any] = []

    def admit(self, source: str, value: Any) -> bool:
        """True → push now; False → held (stalled)."""
        step = self._step
        self._step += 1
        if (source == self.source
                and self.after <= step < self.after + self.duration):
            self.held.append(value)
            return False
        return True

    @property
    def stalling(self) -> bool:
        return self.after <= self._step < self.after + self.duration

    def release(self) -> list[Any]:
        """The held elements, oldest first; the stall is over."""
        held, self.held = self.held, []
        return held
