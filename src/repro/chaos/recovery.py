"""Checkpoint/restore/replay for any snapshot-capable execution target.

:class:`RecoveryManager` is the kernel-side counterpart of the actor
runtime's :class:`~repro.runtime.checkpoint.CheckpointCoordinator`: where
the coordinator collects distributed per-subtask reports behind aligned
barriers, the manager checkpoints a *local* target — anything exposing
``snapshot()`` / ``restore(payload)``, i.e. a
:class:`~repro.cql.executor.ContinuousQuery`, an :class:`~repro.exec.Plan`
over :class:`~repro.exec.state.StateBackend` operators, or a whole
:class:`~repro.dsms.engine.DSMSEngine` — at input-offset boundaries
(barrier-by-instant), and on failure drives restore-and-replay with
bounded retries and exponential backoff.

Observability (all through :mod:`repro.obs`, gated on ``obs.enable()``):

* ``recovery.attempts`` — restore attempts, labelled by target kind;
* ``checkpoint.bytes`` — estimated serialized size of taken snapshots;
* ``recovery.replayed_records`` — input records reprocessed after
  rollback (the replay-volume cost of the chosen checkpoint interval);
* span ``recovery.restore`` around each state rollback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import repro.obs as obs
from repro.obs import profile as _profile
from repro.core.errors import StateError
from repro.chaos.injection import InjectedCrash


def estimate_bytes(state: Any) -> int:
    """A cheap serialized-size estimate (repr length) for obs accounting."""
    return len(repr(state))


@dataclass
class Checkpoint:
    """One retained snapshot: the state plus the input offset it covers.

    ``offset`` is the number of input units (instants, records — the
    driver's granularity) fully applied before the snapshot was taken;
    replay resumes from exactly there.
    """

    checkpoint_id: int
    offset: int
    state: Any
    size_bytes: int = 0
    taken_at: float = field(default_factory=time.perf_counter)


class RecoveryManager:
    """Periodic checkpoints + bounded-retry restore for one target.

    ``interval`` is measured in the driver's input units: ``committed(n)``
    takes a new checkpoint whenever ``n`` is at least ``interval`` units
    past the last one.  ``keep`` bounds retained checkpoints (oldest are
    pruned; the newest is the recovery point).  ``sleep`` is injectable so
    tests exercise the exponential backoff schedule without waiting it
    out.  ``recoverable`` is the exception family that triggers rollback —
    anything else propagates, because retrying an unknown error replays
    input into a target of unknown integrity.
    """

    def __init__(self, target: Any, interval: int = 1,
                 max_retries: int = 3, backoff_base: float = 0.05,
                 backoff_cap: float = 1.0,
                 sleep: Callable[[float], None] = time.sleep,
                 keep: int = 2,
                 recoverable: tuple[type[BaseException], ...]
                 = (InjectedCrash,),
                 measure_bytes: bool = True,
                 label: str | None = None) -> None:
        if interval <= 0:
            raise StateError(
                f"checkpoint interval must be positive, got {interval}")
        if keep <= 0:
            raise StateError(f"must keep at least one checkpoint, "
                             f"got {keep}")
        self.target = target
        self.interval = interval
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.sleep = sleep
        self.keep = keep
        self.recoverable = recoverable
        self.measure_bytes = measure_bytes
        self.label = label or type(target).__name__
        self.checkpoints: list[Checkpoint] = []
        self._next_id = 1
        #: Restore attempts (including failed ones).
        self.attempts = 0
        #: Input units reprocessed after rollbacks.
        self.replayed_records = 0
        #: Estimated bytes across all checkpoints taken.
        self.checkpoint_bytes = 0
        #: Cumulative wall-clock seconds spent restoring state.
        self.recovery_seconds = 0.0
        #: Backoff delays requested so far (seconds; tests assert these).
        self.backoffs: list[float] = []

    # -- checkpointing -------------------------------------------------------

    def start(self) -> Checkpoint:
        """Take the baseline checkpoint (offset 0) if none exists yet."""
        if self.checkpoints:
            return self.checkpoints[-1]
        return self.checkpoint(0)

    def committed(self, offset: int) -> Checkpoint | None:
        """Note that ``offset`` input units are fully applied; checkpoint
        when the interval has elapsed since the last one."""
        if not self.checkpoints:
            return self.checkpoint(offset)
        if offset - self.checkpoints[-1].offset >= self.interval:
            return self.checkpoint(offset)
        return None

    def checkpoint(self, offset: int) -> Checkpoint:
        """Snapshot the target now, covering inputs up to ``offset``."""
        state = self.target.snapshot()
        size = estimate_bytes(state) if self.measure_bytes else 0
        checkpoint = Checkpoint(self._next_id, offset, state, size)
        self._next_id += 1
        self.checkpoints.append(checkpoint)
        del self.checkpoints[:-self.keep]
        self.checkpoint_bytes += size
        if obs._STATE.enabled:
            obs.get_registry().counter(
                "checkpoint.bytes", target=self.label).inc(size)
            obs.get_registry().counter(
                "checkpoint.taken", target=self.label).inc()
        if _profile._ENABLED:
            _profile._RECORDER.record(
                "checkpoint", target=self.label,
                checkpoint=checkpoint.checkpoint_id, offset=offset,
                bytes=size)
        return checkpoint

    def latest(self) -> Checkpoint | None:
        return self.checkpoints[-1] if self.checkpoints else None

    def rebase(self, offset: int = 0) -> Checkpoint:
        """Discard retained checkpoints and take a fresh baseline.

        Required after a *structural* change to the target — a live
        rescale replaces a query's replica set, so old snapshots encode a
        shape that no longer exists; restoring one would resurrect the
        old width (or just fail on the replica-count mismatch).  The
        recovery point can only move forward past such a change.
        """
        self.checkpoints.clear()
        return self.checkpoint(offset)

    # -- recovery ------------------------------------------------------------

    def recover(self) -> Checkpoint:
        """Roll the target back to the newest checkpoint (timed, traced)."""
        checkpoint = self.latest()
        if checkpoint is None:
            raise StateError("no checkpoint to recover from")
        self.attempts += 1
        tracer = (obs.get_tracer() if obs._STATE.enabled
                  else obs.NoopTracer())
        if obs._STATE.enabled:
            obs.get_registry().counter(
                "recovery.attempts", target=self.label).inc()
        if _profile._ENABLED:
            _profile._RECORDER.record(
                "recovery.attempt", target=self.label,
                checkpoint=checkpoint.checkpoint_id,
                offset=checkpoint.offset)
        started = time.perf_counter()
        with tracer.span("recovery.restore", target=self.label,
                         checkpoint=checkpoint.checkpoint_id,
                         offset=checkpoint.offset):
            self.target.restore(checkpoint.state)
        self.recovery_seconds += time.perf_counter() - started
        return checkpoint

    def backoff(self, failure_count: int) -> float:
        """Sleep the exponential-backoff delay for the Nth failure."""
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (failure_count - 1)))
        self.backoffs.append(delay)
        if delay > 0:
            self.sleep(delay)
        return delay

    def record_replayed(self, n: int) -> None:
        self.replayed_records += n
        if n and obs._STATE.enabled:
            obs.get_registry().counter(
                "recovery.replayed_records", target=self.label).inc(n)


def run_with_recovery(units: Sequence[Any],
                      apply_unit: Callable[[Any, int], None],
                      manager: RecoveryManager,
                      unit_size: Callable[[Any], int] | None = None,
                      ) -> RecoveryManager:
    """Apply ``units`` in order, recovering from injected faults.

    The generic restore-and-replay driver: a baseline checkpoint is taken
    before the first unit, ``manager.committed`` runs after each applied
    unit (checkpointing on the manager's interval), and a recoverable
    failure rolls the target back to the newest checkpoint and resumes
    from that checkpoint's offset — completed units in between are
    **replayed**, counted through ``unit_size`` (default: 1 per unit)
    into ``recovery.replayed_records``.  ``max_retries`` consecutive
    unrecovered failures re-raise.
    """
    manager.start()
    index = 0
    failures = 0
    while index < len(units):
        try:
            apply_unit(units[index], index)
        except manager.recoverable:
            failures += 1
            if failures > manager.max_retries:
                raise
            manager.backoff(failures)
            checkpoint = manager.recover()
            replayed = units[checkpoint.offset:index]
            manager.record_replayed(
                sum(unit_size(u) for u in replayed) if unit_size
                else len(replayed))
            index = checkpoint.offset
            continue
        failures = 0
        index += 1
        manager.committed(index)
    return manager


def run_query_with_recovery(query, streams: Mapping[str, Any],
                            manager: RecoveryManager,
                            finish: bool = True) -> RecoveryManager:
    """Replay recorded streams through a query under fault injection.

    The crash-consistent analogue of
    :meth:`~repro.cql.executor.ContinuousQuery.run_recorded`: input is
    grouped into per-instant batches (the same exact batching), each batch
    is one replay unit, and the manager's checkpoints are taken at instant
    boundaries — barrier-by-instant.  After the final unit the query's
    emissions, log and state are exactly those of a fault-free
    ``run_recorded`` over the same streams, which is the property the
    kernel-crashed difftest leg asserts.
    """
    from collections import defaultdict

    arrivals: dict[Any, dict[str, list]] = defaultdict(
        lambda: defaultdict(list))
    for name, stream in streams.items():
        for element in stream:
            arrivals[element.timestamp][name].append(element.value)
    units: list[tuple] = [("start",)]
    for t in sorted(arrivals):
        units.append(("push", t, {name: list(rows)
                                  for name, rows in arrivals[t].items()}))
    if finish:
        units.append(("finish",))

    def apply(unit: tuple, _index: int) -> None:
        if unit[0] == "start":
            query.start()
        elif unit[0] == "push":
            query.push_batch(unit[1], unit[2])
        else:
            query.finish()

    def size(unit: tuple) -> int:
        if unit[0] != "push":
            return 0
        return sum(len(rows) for rows in unit[2].values())

    return run_with_recovery(units, apply, manager, unit_size=size)
