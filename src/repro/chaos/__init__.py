"""Fault injection and crash recovery for the unified kernel (§4.2).

The survey makes fault tolerance the defining capability of modern
continuous-query systems: aligned barriers, consistent snapshots, and
replay-from-offset turn "the query ran" into "the query ran *exactly
once* despite crashes".  This package supplies both halves of the proof
obligation:

* :mod:`repro.chaos.injection` — provoke the failures: crash an operator
  at the Nth element (:func:`install_crash`), run broker fetches through
  a seeded faulty transport that drops/duplicates/reorders deliveries
  (:class:`ChaosBroker`), or stall a source past its ``idle_timeout``
  (:class:`SourceStall`).
* :mod:`repro.chaos.recovery` — survive them: :class:`RecoveryManager`
  takes periodic snapshots of any target exposing ``snapshot()`` /
  ``restore()`` (a :class:`~repro.cql.executor.ContinuousQuery`, an
  :class:`~repro.exec.Plan`, a :class:`~repro.dsms.engine.DSMSEngine`)
  and drives restore-and-replay with bounded retries and exponential
  backoff, publishing ``recovery.attempts`` / ``checkpoint.bytes`` /
  ``recovery.replayed_records`` through :mod:`repro.obs`.

The eighth difftest oracle leg ("kernel-crashed") composes the two: kill
each operator once mid-stream, recover, and require instant-by-instant
equality with the no-fault legs.
"""

from repro.chaos.injection import (
    ChaosBroker,
    CrashFuse,
    InjectedCrash,
    SourceStall,
    install_crash,
)
from repro.chaos.recovery import (
    Checkpoint,
    RecoveryManager,
    run_query_with_recovery,
    run_with_recovery,
)

__all__ = [
    "ChaosBroker",
    "Checkpoint",
    "CrashFuse",
    "InjectedCrash",
    "RecoveryManager",
    "SourceStall",
    "install_crash",
    "run_query_with_recovery",
    "run_with_recovery",
]
