"""``python -m repro.chaos`` — the standing chaos campaign.

Two sweeps, both seeded and bounded:

* **crash matrix** — random difftest cases are compiled onto the kernel
  and every operator position is killed once mid-stream; each run must
  recover and match the fault-free reference (the kernel-crashed oracle
  leg, run in bulk).
* **broker chaos** — consumer groups poll through a
  :class:`~repro.chaos.ChaosBroker` across seeds and fault mixes; every
  offset must arrive exactly once, in order.

Exit status 0 means every injected fault was survived cleanly.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.chaos.injection import ChaosBroker
from repro.difftest.generators import gen_case
from repro.difftest.oracle import run_case


def crash_matrix(cases: int, seed: int) -> list[str]:
    """Run the full oracle (kernel-crashed leg included) over random
    cases; any divergence anywhere is a campaign failure."""
    rng = random.Random(seed)
    problems: list[str] = []
    for index in range(cases):
        case = gen_case(rng, seed=index)
        divergence = run_case(case)
        if divergence is not None:
            problems.append(f"case {index}: {divergence} "
                            f"(query: {case.query})")
    return problems


def broker_sweep(seeds: int, base_seed: int) -> tuple[int, list[str]]:
    """Drive seeded drop/dup/reorder chaos through consumer groups."""
    from repro.runtime.broker import Broker, ConsumerGroup

    problems: list[str] = []
    faults = 0
    for offset in range(seeds):
        seed = base_seed + offset
        rng = random.Random(seed)
        broker = Broker()
        broker.create_topic("t", partitions=rng.randint(1, 3))
        count = rng.randint(20, 80)
        produced = []
        for i in range(count):
            record = broker.produce("t", i, key=str(i % 7))
            produced.append((record.partition, record.offset, i))
        chaos = ChaosBroker(broker, seed=seed,
                            drop=rng.uniform(0.0, 0.4),
                            duplicate=rng.uniform(0.0, 0.4),
                            reorder=rng.uniform(0.0, 0.8))
        group = ConsumerGroup(chaos, "g", ["t"])
        group.join("m")
        consumed = []
        for _ in range(5000):
            consumed.extend((r.partition, r.offset, r.value)
                            for r in group.poll("m"))
            if len(consumed) >= count:
                break
        if sorted(consumed) != sorted(produced):
            problems.append(f"seed {seed}: lost or invented records")
        for partition in {p for p, _, _ in consumed}:
            offsets = [o for p, o, _ in consumed if p == partition]
            if offsets != sorted(set(offsets)):
                problems.append(f"seed {seed}: partition {partition} "
                                f"out of order or duplicated")
        faults += sum(chaos.faults.values())
    return faults, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="fault-injection campaign: crash matrix + broker chaos")
    parser.add_argument("--cases", type=int, default=200,
                        help="random queries for the crash matrix")
    parser.add_argument("--broker-seeds", type=int, default=100,
                        help="seeds for the broker chaos sweep")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    problems = crash_matrix(args.cases, args.seed)
    print(f"crash matrix: {args.cases} cases, "
          f"{len(problems)} divergence(s)")
    faults, broker_problems = broker_sweep(args.broker_seeds, args.seed)
    problems += broker_problems
    print(f"broker chaos: {args.broker_seeds} seeds, {faults} injected "
          f"fault(s), {len(broker_problems)} problem(s)")
    for problem in problems:
        print(f"  FAIL {problem}")
    print("chaos campaign " + ("clean" if not problems else "FAILED"))
    return 0 if not problems else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
