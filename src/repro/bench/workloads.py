"""Deterministic workload generators for experiments and examples.

Every generator takes a ``seed`` and produces identical output across runs
— the substitution for the paper-era testbeds' proprietary traces (see
DESIGN.md).  Workloads cover the domains the survey's examples live in:
room/sensor observations (Listing 1), retail transactions (Listing 2),
social graph streams, and semantic sensor (RDF) streams.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

from repro.core.records import Schema
from repro.core.stream import Stream
from repro.core.time import Timestamp

#: Schema of the Listing 1 observation stream.
OBSERVATION_SCHEMA = Schema(["id", "room", "temp"])

#: Schema of the Listing 1 Person relation.
PERSON_SCHEMA = Schema(["id", "name"])

#: Schema of the Listing 2 transaction stream.
TRANSACTION_SCHEMA = Schema(["id", "user", "amount"])


def room_observations(n: int, persons: int = 20, rooms: int = 5,
                      mean_gap: int = 10, seed: int = 7,
                      ) -> list[tuple[dict[str, Any], Timestamp]]:
    """The Listing 1 workload: people observed entering rooms.

    Returns ``(row, timestamp)`` pairs with person ids in ``[0, persons)``,
    room labels, a temperature reading, and exponential-ish inter-arrival
    gaps averaging ``mean_gap`` ticks.
    """
    rng = random.Random(seed)
    t = 0
    out = []
    for i in range(n):
        t += rng.randint(1, 2 * mean_gap - 1)
        out.append(({
            "id": rng.randrange(persons),
            "room": f"room{rng.randrange(rooms)}",
            "temp": rng.randint(15, 35),
        }, t))
    return out


def person_rows(persons: int = 20) -> list[dict[str, Any]]:
    """The Listing 1 Person relation contents."""
    return [{"id": i, "name": f"person{i}"} for i in range(persons)]


def observation_stream(n: int, **kwargs: Any) -> Stream:
    """:func:`room_observations` as a recorded :class:`Stream`."""
    return Stream.of_records(OBSERVATION_SCHEMA,
                             room_observations(n, **kwargs))


def transactions(n: int, users: int = 50, seed: int = 11,
                 ) -> list[tuple[dict[str, Any], Timestamp]]:
    """The Listing 2 workload: payment transactions.

    Amounts are mostly small with a heavy tail, so selective predicates
    like ``amount > 100`` (Listing 2) keep ~15% of the stream.
    """
    rng = random.Random(seed)
    out = []
    for i in range(n):
        base = rng.randint(1, 100)
        amount = base if rng.random() > 0.15 else base + rng.randint(
            100, 900)
        out.append(({"id": i, "user": rng.randrange(users),
                     "amount": amount}, i + 1))
    return out


def out_of_order_readings(n: int, disorder: int, seed: int = 3,
                          ) -> list[tuple[tuple[str, int], Timestamp]]:
    """Sensor readings whose *arrival* order lags event time by up to
    ``disorder`` ticks — the C5 lateness workload.

    Returns (value, event-time) pairs in arrival order, where value is a
    ``(sensor, reading)`` tuple.
    """
    rng = random.Random(seed)
    events = []
    for i in range(n):
        event_time = (i + 1) * 2
        sensor = f"s{rng.randrange(4)}"
        arrival_time = event_time + rng.randint(0, max(0, disorder))
        events.append((arrival_time, i,
                       ((sensor, rng.randint(0, 100)), event_time)))
    # Sort by arrival: each element is at most ``disorder`` ticks late
    # relative to the maximum event time already seen.
    events.sort()
    return [payload for _, _, payload in events]


def social_edges(n: int, people: int = 30, seed: int = 5,
                 labels: tuple[str, ...] = ("follows", "likes", "blocks"),
                 ) -> Iterator[tuple[str, str, str, Timestamp]]:
    """A social graph stream: (src, label, dst, timestamp)."""
    rng = random.Random(seed)
    t = 0
    for _ in range(n):
        t += rng.randint(1, 5)
        src = f"u{rng.randrange(people)}"
        dst = f"u{rng.randrange(people)}"
        if src == dst:
            dst = f"u{(int(dst[1:]) + 1) % people}"
        yield (src, rng.choice(labels), dst, t)


def rdf_sensor_triples(n: int, sensors: int = 6, seed: int = 13):
    """Semantic-sensor triples: (Triple, timestamp) observation pairs."""
    from repro.rsp.rdf import Triple, iri, lit
    rng = random.Random(seed)
    temp = iri("sosa:hasSimpleResult")
    t = 0
    out = []
    for _ in range(n):
        t += rng.randint(1, 4)
        sensor = iri(f"ex:sensor{rng.randrange(sensors)}")
        out.append((Triple(sensor, temp, lit(rng.randint(10, 40))), t))
    return out


def zipfian_keys(n: int, keys: int, skew: float = 1.1,
                 seed: int = 17) -> list[int]:
    """Zipf-distributed key sequence (hot-key workloads)."""
    rng = random.Random(seed)
    weights = [1.0 / (k + 1) ** skew for k in range(keys)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    out = []
    for _ in range(n):
        x = rng.random()
        for key, bound in enumerate(cumulative):
            if x <= bound:
                out.append(key)
                break
        else:
            out.append(keys - 1)
    return out
