"""bench — deterministic workload generators and the experiment harness."""

from repro.bench.harness import (
    ExperimentTable,
    assert_dominates,
    assert_monotone,
    bench_result,
    obs_snapshot,
    timed,
    write_bench_json,
)
from repro.bench.workloads import (
    OBSERVATION_SCHEMA,
    PERSON_SCHEMA,
    TRANSACTION_SCHEMA,
    observation_stream,
    out_of_order_readings,
    person_rows,
    rdf_sensor_triples,
    room_observations,
    social_edges,
    transactions,
    zipfian_keys,
)

__all__ = [
    "ExperimentTable", "timed", "assert_monotone", "assert_dominates",
    "bench_result", "obs_snapshot", "write_bench_json",
    "room_observations", "person_rows", "observation_stream",
    "transactions", "out_of_order_readings", "social_edges",
    "rdf_sensor_triples", "zipfian_keys",
    "OBSERVATION_SCHEMA", "PERSON_SCHEMA", "TRANSACTION_SCHEMA",
]
