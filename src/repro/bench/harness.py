"""The experiment harness: tables, timing, and EXPERIMENTS.md rows.

Benchmarks print the same table shapes EXPERIMENTS.md records; the
:class:`ExperimentTable` renders aligned columns and can assert *shape*
properties (who wins, monotone trends) without pinning absolute numbers —
the contract DESIGN.md sets for a simulator-substrate reproduction.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Callable, Mapping, Sequence

import repro.obs as obs


class ExperimentTable:
    """Collects rows and renders an aligned text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[Any]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:,.3f}" if value < 100 else f"{value:,.1f}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [max(len(self.columns[i]),
                      *(len(row[i]) for row in cells)) if cells
                  else len(self.columns[i])
                  for i in range(len(self.columns))]
        header = " | ".join(c.ljust(w)
                            for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [" | ".join(cell.rjust(w)
                           for cell, w in zip(row, widths))
                for row in cells]
        return "\n".join([f"== {self.title} ==", header, rule, *body])

    def show(self) -> None:
        print()
        print(self.render())

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready shape: title, columns, rows."""
        return {"title": self.title, "columns": list(self.columns),
                "rows": [list(row) for row in self.rows]}


def obs_snapshot() -> dict[str, Any]:
    """The observability state a benchmark result carries.

    Captures the global registry (every metric the instrumented layers
    published) and, when tracing is enabled, the completed trace trees.
    """
    snapshot: dict[str, Any] = {
        "enabled": obs.is_enabled(),
        "metrics": obs.get_registry().snapshot(),
    }
    tracer = obs.get_tracer()
    if tracer.traces:
        snapshot["traces"] = [trace.as_dict() for trace in tracer.traces]
    return snapshot


def bench_result(name: str, table: ExperimentTable | None = None,
                 **fields: Any) -> dict[str, Any]:
    """Assemble one benchmark's result payload, ``obs`` section included."""
    result: dict[str, Any] = {"name": name}
    if table is not None:
        result["table"] = table.as_dict()
    result.update(fields)
    result["obs"] = obs_snapshot()
    return result


def write_bench_json(result: Mapping[str, Any],
                     directory: str | pathlib.Path = ".") -> pathlib.Path:
    """Write a :func:`bench_result` payload to ``BENCH_<name>.json``.

    The ``obs`` section is refreshed at write time if absent, so callers
    that build plain dicts still get a metrics snapshot attached.
    """
    payload = dict(result)
    if "name" not in payload:
        raise ValueError("benchmark result needs a 'name'")
    payload.setdefault("obs", obs_snapshot())
    path = pathlib.Path(directory) / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                               default=str) + "\n", encoding="utf-8")
    return path


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def assert_monotone(values: Sequence[float], increasing: bool = True,
                    tolerance: float = 0.0) -> None:
    """Shape assertion: a series trends in one direction."""
    for a, b in zip(values, values[1:]):
        if increasing and b < a - tolerance:
            raise AssertionError(f"series not increasing: {values}")
        if not increasing and b > a + tolerance:
            raise AssertionError(f"series not decreasing: {values}")


def assert_dominates(winner: Sequence[float], loser: Sequence[float],
                     factor: float = 1.0) -> None:
    """Shape assertion: ``winner`` is at most ``loser / factor``
    pointwise (smaller is better)."""
    for w, l in zip(winner, loser):
        if w * factor > l:
            raise AssertionError(
                f"expected dominance by x{factor}: {w} vs {l}")
