"""The experiment harness: tables, timing, and EXPERIMENTS.md rows.

Benchmarks print the same table shapes EXPERIMENTS.md records; the
:class:`ExperimentTable` renders aligned columns and can assert *shape*
properties (who wins, monotone trends) without pinning absolute numbers —
the contract DESIGN.md sets for a simulator-substrate reproduction.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence


class ExperimentTable:
    """Collects rows and renders an aligned text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[Any]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:,.3f}" if value < 100 else f"{value:,.1f}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [max(len(self.columns[i]),
                      *(len(row[i]) for row in cells)) if cells
                  else len(self.columns[i])
                  for i in range(len(self.columns))]
        header = " | ".join(c.ljust(w)
                            for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [" | ".join(cell.rjust(w)
                           for cell, w in zip(row, widths))
                for row in cells]
        return "\n".join([f"== {self.title} ==", header, rule, *body])

    def show(self) -> None:
        print()
        print(self.render())


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def assert_monotone(values: Sequence[float], increasing: bool = True,
                    tolerance: float = 0.0) -> None:
    """Shape assertion: a series trends in one direction."""
    for a, b in zip(values, values[1:]):
        if increasing and b < a - tolerance:
            raise AssertionError(f"series not increasing: {values}")
        if not increasing and b > a + tolerance:
            raise AssertionError(f"series not decreasing: {values}")


def assert_dominates(winner: Sequence[float], loser: Sequence[float],
                     factor: float = 1.0) -> None:
    """Shape assertion: ``winner`` is at most ``loser / factor``
    pointwise (smaller is better)."""
    for w, l in zip(winner, loser):
        if w * factor > l:
            raise AssertionError(
                f"expected dominance by x{factor}: {w} vs {l}")
