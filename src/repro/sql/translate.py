"""Compile streaming SQL down the Figure 4 stack.

A parsed :class:`~repro.sql.ast.SQLStatement` becomes a DSL program
(:mod:`repro.dsl`), which itself compiles to a job graph on the actor
runtime — the same layering (SQL → DSL → dataflow → actors) the survey
attributes to real streaming systems.

Three execution shapes:

* **stateless** (no aggregation): filter + project, ``EMIT CHANGES``;
* **windowed aggregation** (``GROUP BY ..., TUMBLE/HOP/SESSION``):
  key-by group columns → window aggregate → project; ``EMIT FINAL``
  results fire on window close, ``EMIT CHANGES`` would stream refinements;
* **running aggregation** (``GROUP BY`` without a window): per-key
  accumulators emitting an updated result row per input — a changelog.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.errors import PlanError
from repro.core.operators import AggregateKind
from repro.core.records import Record, Schema
from repro.core.time import Timestamp
from repro.core.windows import SlidingWindow, TumblingWindow
from repro.cql.catalog import Catalog
from repro.cql.expressions import compile_expr, compile_predicate
from repro.cql.planner import _AggregateCollector
from repro.dsl.environment import StreamEnvironment
from repro.dsl.operators import AggregateFunction
from repro.sql.ast import EmitMode, GroupWindowKind, SQLStatement
from repro.sql.parser import parse_sql

#: Extra columns a windowed aggregation exposes to SELECT/HAVING.
WINDOW_START = "window_start"
WINDOW_END = "window_end"


class CompositeAggregate(AggregateFunction):
    """Evaluates all of a query's aggregate expressions in one pass.

    The accumulator is one slot per aggregate; windows are append-only so
    no retraction support is needed, and ``merge`` (for sessions) combines
    slot-wise.
    """

    def __init__(self, specs, evaluators) -> None:
        self._specs = specs          # list[AggregateExpr]
        self._evaluators = evaluators  # arg evaluator or None (COUNT(*))

    def create_accumulator(self) -> list:
        out = []
        for spec in self._specs:
            if spec.kind in (AggregateKind.COUNT,):
                out.append(0)
            elif spec.kind is AggregateKind.AVG:
                out.append((0, 0))
            elif spec.kind is AggregateKind.SUM:
                out.append((0, 0))  # (sum, non-null count)
            else:  # MIN / MAX
                out.append(None)
        return out

    def add(self, accumulator: list, record: Record) -> list:
        out = list(accumulator)
        for i, (spec, evaluator) in enumerate(
                zip(self._specs, self._evaluators)):
            value = 1 if evaluator is None else evaluator(record)
            if evaluator is not None and value is None:
                continue
            if spec.kind is AggregateKind.COUNT:
                out[i] += 1
            elif spec.kind in (AggregateKind.SUM, AggregateKind.AVG):
                total, count = out[i]
                out[i] = (total + value, count + 1)
            elif spec.kind is AggregateKind.MIN:
                out[i] = value if out[i] is None else min(out[i], value)
            else:
                out[i] = value if out[i] is None else max(out[i], value)
        return out

    def merge(self, left: list, right: list) -> list:
        out = []
        for spec, a, b in zip(self._specs, left, right):
            if spec.kind is AggregateKind.COUNT:
                out.append(a + b)
            elif spec.kind in (AggregateKind.SUM, AggregateKind.AVG):
                out.append((a[0] + b[0], a[1] + b[1]))
            elif a is None:
                out.append(b)
            elif b is None:
                out.append(a)
            elif spec.kind is AggregateKind.MIN:
                out.append(min(a, b))
            else:
                out.append(max(a, b))
        return out

    def get_result(self, accumulator: list) -> list:
        out = []
        for spec, slot in zip(self._specs, accumulator):
            if spec.kind is AggregateKind.COUNT:
                out.append(slot)
            elif spec.kind is AggregateKind.SUM:
                total, count = slot
                out.append(total if count else None)
            elif spec.kind is AggregateKind.AVG:
                total, count = slot
                out.append(total / count if count else None)
            else:
                out.append(slot)
        return out


class SQLEngine:
    """The streaming-SQL front end: catalog + parser + DSL compiler."""

    def __init__(self, parallelism: int = 1, kernel: bool = True) -> None:
        self.catalog = Catalog()
        self.parallelism = parallelism
        self.kernel = kernel

    def register_stream(self, name: str, schema: Schema) -> None:
        self.catalog.register_stream(name, schema)

    def run(self, text: str,
            rows: Iterable[tuple[Mapping[str, Any], Timestamp]],
            ) -> list[Record]:
        """Parse, compile and execute a query over recorded rows.

        Returns output records in (timestamp, repr) order.  ``EMIT FINAL``
        windowed queries fire per window close; ``EMIT CHANGES`` queries
        emit per refinement.
        """
        statement = parse_sql(text)
        schema = self.catalog.stream(statement.source).schema \
            .qualify(statement.binding)
        env = StreamEnvironment(parallelism=self.parallelism,
                                kernel=self.kernel)
        records = [(Record(schema, tuple(row[f] for f in
                                         schema.unqualified().fields),
                           validate=False), t)
                   for row, t in rows]
        stream = env.from_collection(records)
        if statement.where is not None:
            stream = stream.filter(
                compile_predicate(statement.where, schema))

        if not statement.is_aggregation:
            out_schema, project = self._projection(statement, schema)
            stream.map(project).sink("out")
            result = env.execute()
            return [element.value for element in
                    result.sink_outputs["out"]]

        return self._run_aggregation(statement, schema, env, stream)

    # -- helpers -----------------------------------------------------------------

    def _projection(self, statement: SQLStatement, schema: Schema):
        if statement.is_star:
            return schema, lambda record: record
        evaluators = [compile_expr(item.expr, schema)
                      for item in statement.items]
        names = tuple(item.output_name() for item in statement.items)
        out_schema = Schema(names)

        def project(record: Record) -> Record:
            return Record(out_schema,
                          tuple(e(record) for e in evaluators),
                          validate=False)

        return out_schema, project

    def _run_aggregation(self, statement: SQLStatement, schema: Schema,
                         env: StreamEnvironment, stream) -> list[Record]:
        if statement.is_star:
            raise PlanError("SELECT * cannot be combined with aggregation")
        collector = _AggregateCollector()
        rewritten = [(collector.rewrite(item.expr, alias=item.alias),
                      item.output_name()) for item in statement.items]
        having = (collector.rewrite(statement.having)
                  if statement.having is not None else None)
        specs = list(collector.specs)
        evaluators = [None if s.arg is None else compile_expr(s.arg, schema)
                      for s in specs]
        composite = CompositeAggregate(specs, evaluators)

        group_columns = tuple(c.name for c in statement.group_by)
        group_indexes = [schema.index_of(c) for c in group_columns]
        group_names = tuple(c.rpartition(".")[2] for c in group_columns)

        inter_fields = group_names + tuple(s.name for s in specs)
        window = statement.window
        if window is not None:
            inter_fields = inter_fields + (WINDOW_START, WINDOW_END)
        inter_schema = Schema(inter_fields)

        def key_fn(record: Record) -> tuple:
            return tuple(record[i] for i in group_indexes)

        keyed = stream.key_by(key_fn)

        if window is not None:
            if window.kind is GroupWindowKind.TUMBLE:
                windowed = keyed.window(TumblingWindow(window.size))
            elif window.kind is GroupWindowKind.HOP:
                windowed = keyed.window(
                    SlidingWindow(window.size, window.slide))
            else:
                windowed = keyed.session_window(window.size)
            results = windowed.aggregate(composite)

            def to_row(value) -> Record:
                key, agg_values, win = value
                return Record(inter_schema,
                              tuple(key) + tuple(agg_values)
                              + (win.start, win.end), validate=False)

            out = results.map(to_row)
        else:
            if statement.emit is not EmitMode.CHANGES:
                raise PlanError(
                    "unwindowed aggregation must EMIT CHANGES")

            def fold(accumulator, record: Record):
                if accumulator is None:
                    accumulator = composite.create_accumulator()
                return composite.add(accumulator, record)

            def running(op, element):
                accumulator = fold(op.state.get(element.key), element.value)
                op.state.put(element.key, accumulator)
                row = Record(
                    inter_schema,
                    tuple(element.key)
                    + tuple(composite.get_result(accumulator)),
                    validate=False)
                from repro.runtime.dag import Element
                yield Element(row, element.key, element.timestamp)

            out = keyed.process(running)

        if having is not None:
            out = out.filter(compile_predicate(having, inter_schema))
        __, project = self._projection_over(
            rewritten, inter_schema)
        out.map(project).sink("out")
        result = env.execute()
        return [element.value for element in result.sink_outputs["out"]]

    def _projection_over(self, rewritten, inter_schema: Schema):
        evaluators = [compile_expr(expr, inter_schema)
                      for expr, _ in rewritten]
        names = tuple(name for _, name in rewritten)
        out_schema = Schema(names)

        def project(record: Record) -> Record:
            return Record(out_schema,
                          tuple(e(record) for e in evaluators),
                          validate=False)

        return out_schema, project


def run_sql(text: str, schema: Schema, stream_name: str,
            rows: Iterable[tuple[Mapping[str, Any], Timestamp]],
            parallelism: int = 1, kernel: bool = True) -> list[Record]:
    """One-shot convenience: register, run, return records."""
    engine = SQLEngine(parallelism=parallelism, kernel=kernel)
    engine.register_stream(stream_name, schema)
    return engine.run(text, rows)
