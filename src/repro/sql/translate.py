"""Compile streaming SQL down the Figure 4 stack.

A parsed :class:`~repro.sql.ast.SQLStatement` lowers onto the unified
logical IR (:mod:`repro.sql.lower` → :mod:`repro.plan`), is optimised by
the shared rule rewriter, and the result compiles to a DSL program
(:mod:`repro.dsl`), which itself compiles to a job graph on the actor
runtime — the same layering (SQL → plan → DSL → dataflow → actors) the
survey attributes to real streaming systems.

Three execution shapes:

* **stateless** (no aggregation): filter + project, ``EMIT CHANGES``;
* **windowed aggregation** (``GROUP BY ..., TUMBLE/HOP/SESSION``):
  key-by group columns → window aggregate → project; ``EMIT FINAL``
  results fire on window close, ``EMIT CHANGES`` would stream refinements;
* **running aggregation** (``GROUP BY`` without a window): per-key
  accumulators emitting an updated result row per input — a changelog.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.operators import AggregateKind
from repro.core.records import Record, Schema
from repro.core.time import Timestamp
from repro.cql.catalog import Catalog
from repro.dsl.environment import StreamEnvironment
from repro.dsl.operators import AggregateFunction
from repro.sql.parser import parse_sql

#: Extra columns a windowed aggregation exposes to SELECT/HAVING.
WINDOW_START = "window_start"
WINDOW_END = "window_end"


class CompositeAggregate(AggregateFunction):
    """Evaluates all of a query's aggregate expressions in one pass.

    The accumulator is one slot per aggregate; windows are append-only so
    no retraction support is needed, and ``merge`` (for sessions) combines
    slot-wise.
    """

    def __init__(self, specs, evaluators) -> None:
        self._specs = specs          # list[AggregateExpr]
        self._evaluators = evaluators  # arg evaluator or None (COUNT(*))

    def create_accumulator(self) -> list:
        out = []
        for spec in self._specs:
            if spec.kind in (AggregateKind.COUNT,):
                out.append(0)
            elif spec.kind is AggregateKind.AVG:
                out.append((0, 0))
            elif spec.kind is AggregateKind.SUM:
                out.append((0, 0))  # (sum, non-null count)
            else:  # MIN / MAX
                out.append(None)
        return out

    def add(self, accumulator: list, record: Record) -> list:
        out = list(accumulator)
        for i, (spec, evaluator) in enumerate(
                zip(self._specs, self._evaluators)):
            value = 1 if evaluator is None else evaluator(record)
            if evaluator is not None and value is None:
                continue
            if spec.kind is AggregateKind.COUNT:
                out[i] += 1
            elif spec.kind in (AggregateKind.SUM, AggregateKind.AVG):
                total, count = out[i]
                out[i] = (total + value, count + 1)
            elif spec.kind is AggregateKind.MIN:
                out[i] = value if out[i] is None else min(out[i], value)
            else:
                out[i] = value if out[i] is None else max(out[i], value)
        return out

    def merge(self, left: list, right: list) -> list:
        out = []
        for spec, a, b in zip(self._specs, left, right):
            if spec.kind is AggregateKind.COUNT:
                out.append(a + b)
            elif spec.kind in (AggregateKind.SUM, AggregateKind.AVG):
                out.append((a[0] + b[0], a[1] + b[1]))
            elif a is None:
                out.append(b)
            elif b is None:
                out.append(a)
            elif spec.kind is AggregateKind.MIN:
                out.append(min(a, b))
            else:
                out.append(max(a, b))
        return out

    def get_result(self, accumulator: list) -> list:
        out = []
        for spec, slot in zip(self._specs, accumulator):
            if spec.kind is AggregateKind.COUNT:
                out.append(slot)
            elif spec.kind is AggregateKind.SUM:
                total, count = slot
                out.append(total if count else None)
            elif spec.kind is AggregateKind.AVG:
                total, count = slot
                out.append(total / count if count else None)
            else:
                out.append(slot)
        return out


class SQLEngine:
    """The streaming-SQL front end: catalog + parser + planner + DSL
    compiler.

    Queries lower into the unified logical IR (:mod:`repro.plan`), run
    through the shared rule optimizer, and the optimised tree compiles
    to a DSL pipeline on the dataflow runtime (Figure 4's stack).
    """

    def __init__(self, parallelism: int = 1, kernel: bool = True,
                 optimize: bool = True) -> None:
        self.catalog = Catalog()
        self.parallelism = parallelism
        self.kernel = kernel
        self._optimize = optimize

    def register_stream(self, name: str, schema: Schema) -> None:
        self.catalog.register_stream(name, schema)

    def plan(self, text: str, optimize: bool | None = None):
        """Parse and lower a query to the unified IR (optimised)."""
        from repro.sql.lower import lower_statement
        statement = parse_sql(text)
        plan = lower_statement(statement, self.catalog)
        if optimize if optimize is not None else self._optimize:
            from repro.plan.rules import optimize as run_rules
            plan = run_rules(plan)
        return plan

    def explain(self, text: str) -> str:
        """EXPLAIN: the optimised IR tree with strategy annotations."""
        from repro.plan.explain import explain_logical
        return explain_logical(self.plan(text))

    def run(self, text: str,
            rows: Iterable[tuple[Mapping[str, Any], Timestamp]],
            ) -> list[Record]:
        """Parse, plan, optimise and execute a query over recorded rows.

        Returns output records in (timestamp, repr) order.  ``EMIT FINAL``
        windowed queries fire per window close; ``EMIT CHANGES`` queries
        emit per refinement.
        """
        from repro.sql.lower import compile_to_dsl
        plan = self.plan(text)
        env = StreamEnvironment(parallelism=self.parallelism,
                                kernel=self.kernel)
        compile_to_dsl(plan, env, rows).sink("out")
        result = env.execute()
        return [element.value for element in result.sink_outputs["out"]]


def run_sql(text: str, schema: Schema, stream_name: str,
            rows: Iterable[tuple[Mapping[str, Any], Timestamp]],
            parallelism: int = 1, kernel: bool = True) -> list[Record]:
    """One-shot convenience: register, run, return records."""
    engine = SQLEngine(parallelism=parallelism, kernel=kernel)
    engine.register_stream(stream_name, schema)
    return engine.run(text, rows)
