"""Parser for the streaming SQL dialect.

Grammar (sharing the lexer and expression grammar with CQL)::

    statement := create | query
    create := CREATE DYNAMIC TABLE ident
              [TARGET_LAG ["="] (duration | DOWNSTREAM)]
              AS query
    query  := SELECT select_list FROM ident [ident]
              [WHERE expr]
              [GROUP BY group_item ("," group_item)*]
              [HAVING expr]
              [EMIT (CHANGES | FINAL)]
    group_item := column
                | TUMBLE "(" duration ")"
                | HOP "(" duration "," duration ")"
                | SESSION "(" duration ")"

Defaults: a windowed aggregation emits FINAL (results on window close), a
non-windowed query emits CHANGES (a changelog) — matching the conventions
of the systems the survey compares.
"""

from __future__ import annotations

from repro.core.errors import ParseError
from repro.cql.ast import Column
from repro.cql.lexer import TokenCursor, TokenType, tokenize
from repro.cql.parser import (
    _parse_column,
    _parse_duration,
    _parse_expr,
    _parse_select_list,
)
from repro.sql.ast import (
    CreateDynamicTable,
    EmitMode,
    GroupWindow,
    GroupWindowKind,
    SQLStatement,
)


def parse_sql(text: str) -> SQLStatement:
    """Parse a streaming SQL query string."""
    cursor = TokenCursor(tokenize(text))
    statement = _parse_select(cursor)
    if not cursor.at_end():
        token = cursor.peek()
        raise ParseError(
            f"unexpected trailing input {token.text!r}", token.position)
    return statement


def parse_statement(text: str) -> SQLStatement | CreateDynamicTable:
    """Parse a statement: a query, or ``CREATE DYNAMIC TABLE``."""
    cursor = TokenCursor(tokenize(text))
    if not cursor.match_keyword("CREATE"):
        statement = _parse_select(cursor)
        if not cursor.at_end():
            token = cursor.peek()
            raise ParseError(
                f"unexpected trailing input {token.text!r}", token.position)
        return statement
    cursor.expect_keyword("DYNAMIC")
    cursor.expect_keyword("TABLE")
    name = cursor.expect_ident().text
    target_lag: int | str | None = None
    if cursor.match_keyword("TARGET_LAG"):
        cursor.match_symbol("=")
        if cursor.match_keyword("DOWNSTREAM"):
            target_lag = "downstream"
        elif cursor.peek().text == "0":
            # TARGET_LAG = 0 ("refresh every tick") is legal even though
            # a zero window duration is not.
            cursor.advance()
            target_lag = 0
        else:
            target_lag = _parse_duration(cursor)
    cursor.expect_keyword("AS")
    select = _parse_select(cursor)
    if not cursor.at_end():
        token = cursor.peek()
        raise ParseError(
            f"unexpected trailing input {token.text!r}", token.position)
    return CreateDynamicTable(name=name, target_lag=target_lag,
                              select=select)


def _parse_select(cursor: TokenCursor) -> SQLStatement:
    cursor.expect_keyword("SELECT")
    items = _parse_select_list(cursor)
    cursor.expect_keyword("FROM")
    source = cursor.expect_ident().text
    alias = None
    if cursor.peek().type is TokenType.IDENT:
        alias = cursor.advance().text
    elif cursor.match_keyword("AS"):
        alias = cursor.expect_ident().text

    where = None
    if cursor.match_keyword("WHERE"):
        where = _parse_expr(cursor)

    group_by: list[Column] = []
    window: GroupWindow | None = None
    if cursor.match_keyword("GROUP"):
        cursor.expect_keyword("BY")
        while True:
            item_window = _try_parse_group_window(cursor)
            if item_window is not None:
                if window is not None:
                    raise ParseError(
                        "at most one window function per GROUP BY")
                window = item_window
            else:
                group_by.append(_parse_column(cursor))
            if not cursor.match_symbol(","):
                break

    having = None
    if cursor.match_keyword("HAVING"):
        having = _parse_expr(cursor)

    emit = None
    if cursor.match_keyword("EMIT"):
        if cursor.match_keyword("CHANGES"):
            emit = EmitMode.CHANGES
        else:
            token = cursor.expect_ident()
            if token.text.upper() != "FINAL":
                raise ParseError(
                    f"expected CHANGES or FINAL after EMIT, got "
                    f"{token.text!r}", token.position)
            emit = EmitMode.FINAL
    if emit is None:
        emit = EmitMode.FINAL if window is not None else EmitMode.CHANGES

    if emit is EmitMode.FINAL and window is None:
        raise ParseError(
            "EMIT FINAL requires a window in GROUP BY (unwindowed results "
            "never become final)")

    return SQLStatement(
        items=tuple(items), source=source, alias=alias, where=where,
        group_by=tuple(group_by), window=window, having=having, emit=emit)


def _try_parse_group_window(cursor: TokenCursor) -> GroupWindow | None:
    token = cursor.peek()
    if not token.is_keyword("TUMBLE", "HOP", "SESSION"):
        return None
    cursor.advance()
    cursor.expect_symbol("(")
    size = _parse_duration(cursor)
    slide = None
    if token.text == "HOP":
        cursor.expect_symbol(",")
        slide = _parse_duration(cursor)
    cursor.expect_symbol(")")
    kind = GroupWindowKind[token.text]
    return GroupWindow(kind, size, slide)
