"""Lowering streaming SQL onto the unified logical IR (:mod:`repro.plan`).

A parsed :class:`~repro.sql.ast.SQLStatement` becomes the same IR every
other frontend produces::

    Project? ── Filter(HAVING)? ── WindowAggregate? ── Filter(WHERE)? ── StreamScan

The unified rewriter (:func:`repro.plan.rules.optimize`) then runs over
it — the SQL frontend no longer carries private rule logic — and
:func:`compile_to_dsl` walks the *optimised* tree to build the DSL
pipeline that executes on the dataflow runtime (the Figure 4 stack:
SQL → plan → DSL → dataflow → actors).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.errors import PlanError
from repro.core.records import Record, Schema
from repro.core.time import Timestamp
from repro.core.windows import SlidingWindow, TumblingWindow
from repro.cql.catalog import Catalog
from repro.cql.expressions import compile_expr, compile_predicate
from repro.cql.planner import _AggregateCollector
from repro.plan.exprs import EmitMode, GroupWindowKind
from repro.plan.ir import (
    Filter,
    LogicalOp,
    Project,
    RelationScan,
    StreamScan,
    WindowAggregate,
)
from repro.sql.ast import SQLStatement


def lower_statement(statement: SQLStatement,
                    catalog: Catalog) -> LogicalOp:
    """Translate a parsed SQL statement into the unified logical IR.

    A FROM source registered as a relation (a base table or an installed
    dynamic table) lowers to a :class:`RelationScan`, so views scan
    tables and other views through the same IR every frontend shares.
    """
    if catalog.is_relation(statement.source):
        schema = catalog.schema_of(statement.source) \
            .qualify(statement.binding)
        plan: LogicalOp = RelationScan(statement.source, statement.binding,
                                       schema)
    else:
        schema = catalog.stream(statement.source).schema \
            .qualify(statement.binding)
        plan = StreamScan(statement.source, statement.binding, schema)
    if statement.where is not None:
        plan = Filter(plan, statement.where)

    if not statement.is_aggregation:
        if statement.is_star:
            return plan
        exprs = tuple(item.expr for item in statement.items)
        names = tuple(item.output_name() for item in statement.items)
        return Project(plan, exprs, names)

    if statement.is_star:
        raise PlanError("SELECT * cannot be combined with aggregation")
    if statement.window is None and statement.emit is not EmitMode.CHANGES:
        raise PlanError("unwindowed aggregation must EMIT CHANGES")

    collector = _AggregateCollector()
    rewritten = tuple(collector.rewrite(item.expr, alias=item.alias)
                      for item in statement.items)
    names = tuple(item.output_name() for item in statement.items)
    having = (collector.rewrite(statement.having)
              if statement.having is not None else None)

    group_columns = tuple(c.name for c in statement.group_by)
    group_names = tuple(c.rpartition(".")[2] for c in group_columns)
    plan = WindowAggregate(plan, group_columns, group_names,
                           tuple(collector.specs),
                           window=statement.window, emit=statement.emit)
    if having is not None:
        plan = Filter(plan, having)
    return Project(plan, rewritten, names)


def compile_to_dsl(plan: LogicalOp, env,
                   rows: Iterable[tuple[Mapping[str, Any], Timestamp]]):
    """Compile an (optimised) IR tree into a DSL stream in ``env``.

    ``rows`` feed the single :class:`StreamScan` leaf.  Returns the DSL
    stream for the root; the caller attaches the sink and executes.
    """
    if isinstance(plan, StreamScan):
        schema = plan.schema
        fields = schema.unqualified().fields
        records = [(Record(schema, tuple(row[f] for f in fields),
                           validate=False), t)
                   for row, t in rows]
        return env.from_collection(records)

    if isinstance(plan, Filter):
        child = compile_to_dsl(plan.child, env, rows)
        return child.filter(
            compile_predicate(plan.predicate, plan.child.schema))

    if isinstance(plan, Project):
        child = compile_to_dsl(plan.child, env, rows)
        evaluators = [compile_expr(e, plan.child.schema)
                      for e in plan.exprs]
        out_schema = plan.schema

        def project(record: Record) -> Record:
            return Record(out_schema,
                          tuple(e(record) for e in evaluators),
                          validate=False)

        return child.map(project)

    if isinstance(plan, WindowAggregate):
        child = compile_to_dsl(plan.child, env, rows)
        return _compile_aggregate(plan, child)

    raise PlanError(f"SQL execution cannot compile plan node {plan!r}")


def _compile_aggregate(plan: WindowAggregate, stream):
    # Imported here: CompositeAggregate lives in translate, which imports
    # this module.
    from repro.sql.translate import CompositeAggregate

    in_schema = plan.child.schema
    specs = list(plan.aggregates)
    evaluators = [None if s.arg is None else compile_expr(s.arg, in_schema)
                  for s in specs]
    composite = CompositeAggregate(specs, evaluators)
    group_indexes = [in_schema.index_of(c) for c in plan.group_by]
    inter_schema = plan.schema

    def key_fn(record: Record) -> tuple:
        return tuple(record[i] for i in group_indexes)

    keyed = stream.key_by(key_fn)
    window = plan.window

    if window is not None:
        if window.kind is GroupWindowKind.TUMBLE:
            windowed = keyed.window(TumblingWindow(window.size))
        elif window.kind is GroupWindowKind.HOP:
            windowed = keyed.window(SlidingWindow(window.size, window.slide))
        else:
            windowed = keyed.session_window(window.size)
        results = windowed.aggregate(composite)

        def to_row(value) -> Record:
            key, agg_values, win = value
            return Record(inter_schema,
                          tuple(key) + tuple(agg_values)
                          + (win.start, win.end), validate=False)

        return results.map(to_row)

    def fold(accumulator, record: Record):
        if accumulator is None:
            accumulator = composite.create_accumulator()
        return composite.add(accumulator, record)

    def running(op, element):
        accumulator = fold(op.state.get(element.key), element.value)
        op.state.put(element.key, accumulator)
        row = Record(
            inter_schema,
            tuple(element.key)
            + tuple(composite.get_result(accumulator)),
            validate=False)
        from repro.runtime.dag import Element
        yield Element(row, element.key, element.timestamp)

    return keyed.process(running)


__all__ = ["lower_statement", "compile_to_dsl"]
