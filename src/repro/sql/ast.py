"""AST for the streaming SQL dialect (paper Section 4.1.3).

The dialect follows the "one SQL to rule them all" direction (Begoli et
al.): windows are *grouping constructs* (``GROUP BY room, TUMBLE(10)``)
rather than FROM-clause decorations as in CQL, and an ``EMIT`` clause picks
the materialisation policy: ``EMIT CHANGES`` streams every refinement
(a changelog), ``EMIT FINAL`` emits once per window close (watermark
semantics).

The group-window and emit-mode types now live in :mod:`repro.plan.exprs`
(they are part of the unified IR's :class:`~repro.plan.ir.WindowAggregate`
node) and are re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cql.ast import Column, Expr, SelectItem
from repro.plan.exprs import (  # noqa: F401  (compatibility re-exports)
    EmitMode,
    GroupWindow,
    GroupWindowKind,
)


@dataclass(frozen=True)
class SQLStatement:
    """A parsed streaming-SQL query over a single stream."""

    items: tuple[SelectItem, ...]       # empty = SELECT *
    source: str
    alias: str | None
    where: Expr | None
    group_by: tuple[Column, ...]
    window: GroupWindow | None
    having: Expr | None
    emit: EmitMode

    @property
    def is_star(self) -> bool:
        return not self.items

    @property
    def is_aggregation(self) -> bool:
        from repro.cql.ast import contains_aggregate
        return bool(self.group_by) or self.window is not None or any(
            contains_aggregate(i.expr) for i in self.items)

    @property
    def binding(self) -> str:
        return self.alias or self.source


@dataclass(frozen=True)
class CreateDynamicTable:
    """``CREATE DYNAMIC TABLE name [TARGET_LAG ...] AS select``.

    ``target_lag`` is an integer tick count, the string ``"downstream"``
    (derive the lag from consumers), or ``None`` when the clause is
    omitted (refresh every tick, lag 0).
    """

    name: str
    target_lag: int | str | None
    select: SQLStatement
