"""AST for the streaming SQL dialect (paper Section 4.1.3).

The dialect follows the "one SQL to rule them all" direction (Begoli et
al.): windows are *grouping constructs* (``GROUP BY room, TUMBLE(10)``)
rather than FROM-clause decorations as in CQL, and an ``EMIT`` clause picks
the materialisation policy: ``EMIT CHANGES`` streams every refinement
(a changelog), ``EMIT FINAL`` emits once per window close (watermark
semantics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.time import Timestamp
from repro.cql.ast import Column, Expr, SelectItem


class EmitMode(enum.Enum):
    """When results become visible."""

    CHANGES = "changes"   # every refinement, as soon as it happens
    FINAL = "final"       # once per window, when the watermark closes it


class GroupWindowKind(enum.Enum):
    """Window functions usable in GROUP BY."""

    TUMBLE = "tumble"
    HOP = "hop"
    SESSION = "session"


@dataclass(frozen=True)
class GroupWindow:
    """A parsed windowing group item: ``TUMBLE(10)`` / ``HOP(10, 5)`` /
    ``SESSION(30)``."""

    kind: GroupWindowKind
    size: Timestamp            # tumble size, hop size, or session gap
    slide: Timestamp | None = None  # hop only

    def __str__(self) -> str:
        if self.kind is GroupWindowKind.HOP:
            return f"HOP({self.size}, {self.slide})"
        return f"{self.kind.name}({self.size})"


@dataclass(frozen=True)
class SQLStatement:
    """A parsed streaming-SQL query over a single stream."""

    items: tuple[SelectItem, ...]       # empty = SELECT *
    source: str
    alias: str | None
    where: Expr | None
    group_by: tuple[Column, ...]
    window: GroupWindow | None
    having: Expr | None
    emit: EmitMode

    @property
    def is_star(self) -> bool:
        return not self.items

    @property
    def is_aggregation(self) -> bool:
        from repro.cql.ast import contains_aggregate
        return bool(self.group_by) or self.window is not None or any(
            contains_aggregate(i.expr) for i in self.items)

    @property
    def binding(self) -> str:
        return self.alias or self.source
