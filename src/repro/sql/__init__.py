"""sql — the streaming SQL dialect and optimizers (Sections 4.1.3, 4.2).

The dialect uses windows as GROUP BY constructs (``TUMBLE``/``HOP``/
``SESSION``) with an ``EMIT`` clause, in the "one SQL to rule them all"
direction; queries compile down the Figure 4 stack onto the DSL and actor
runtime.  The package also hosts the optimizers shared with the CQL front
end: the rule-based rewriter (:mod:`repro.plan.rules`) and the
cost-based volcano join enumerator (:mod:`repro.sql.volcano`).
"""

from repro.sql.ast import (
    CreateDynamicTable,
    EmitMode,
    GroupWindow,
    GroupWindowKind,
    SQLStatement,
)
from repro.plan.rules import (
    DEFAULT_RULES,
    extract_equijoin_keys,
    fuse_filters,
    optimize,
    push_filter_through_join,
    remove_trivial_filter,
)
from repro.plan.signature import plan_signature
from repro.sql.parser import parse_sql, parse_statement
from repro.sql.translate import (
    WINDOW_END,
    WINDOW_START,
    CompositeAggregate,
    SQLEngine,
    run_sql,
)
from repro.sql.volcano import (
    PlanCost,
    SourceStats,
    Statistics,
    estimate,
    volcano_optimize,
)

__all__ = [
    # dialect
    "parse_sql", "parse_statement", "CreateDynamicTable",
    "SQLStatement", "EmitMode", "GroupWindow",
    "GroupWindowKind", "SQLEngine", "run_sql", "CompositeAggregate",
    "WINDOW_START", "WINDOW_END",
    # rule-based optimizer
    "optimize", "DEFAULT_RULES", "fuse_filters", "remove_trivial_filter",
    "push_filter_through_join", "extract_equijoin_keys", "plan_signature",
    # volcano
    "Statistics", "SourceStats", "PlanCost", "estimate",
    "volcano_optimize",
]
