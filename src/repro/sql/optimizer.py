"""Compatibility shim: the rule-based optimizer moved to ``repro.plan``.

The rewrite rules, the fixpoint driver and the plan signature that used
to live here are now the *unified* planning layer shared by every
frontend: :mod:`repro.plan.rules` (rules + :func:`optimize`) and
:mod:`repro.plan.signature` (canonical, commutativity-aware
:func:`plan_signature`).  This module re-exports them so existing
imports keep working; new code should import from :mod:`repro.plan`;
importing this shim emits a :class:`DeprecationWarning`.
"""

import warnings

warnings.warn(
    "repro.sql.optimizer is deprecated; import the rewrite rules from "
    "repro.plan (repro.plan.rules / repro.plan.signature) instead",
    DeprecationWarning, stacklevel=2)

from repro.plan.rules import (  # noqa: E402, F401  (compatibility re-exports)
    DEFAULT_RULES,
    Rule,
    collapse_distinct,
    compose_projects,
    extract_equijoin_keys,
    fuse_filters,
    optimize,
    push_filter_through_join,
    push_filter_through_window,
    remove_identity_project,
    remove_trivial_filter,
)
from repro.plan.signature import plan_signature  # noqa: E402, F401

__all__ = [
    "DEFAULT_RULES", "Rule", "collapse_distinct", "compose_projects",
    "extract_equijoin_keys", "fuse_filters", "optimize", "plan_signature",
    "push_filter_through_join", "push_filter_through_window",
    "remove_identity_project", "remove_trivial_filter",
]
