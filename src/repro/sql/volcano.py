"""Volcano-style cost-based join ordering (paper Section 4.2).

The survey notes that Spark Structured Streaming and Flink (via Apache
Calcite) are the exceptions that apply volcano-based planning to
window-based continuous queries.  This module reproduces that layer for
our algebra: a dynamic-programming enumerator over join orders with a
*streaming* cost model — operators run forever, so cost is work **per unit
time**, driven by each input's update rate and windowed state size:

    cost(L ⋈ R)  =  r_L · |R| · σ  +  r_R · |L| · σ      (probe work)
    |L ⋈ R|      =  σ · |L| · |R|                        (state)
    r_{L⋈R}      =  σ · (r_L·|R| + r_R·|L|)              (output rate)

Statistics (per-source rates, window sizes, per-column distinct counts)
come from :class:`Statistics`; equality selectivity uses the standard
``1/max(ndv)`` estimate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import PlanError
from repro.plan.ir import (
    Filter,
    Join,
    LogicalOp,
    RelationScan,
    StreamScan,
    walk,
)
from repro.cql.ast import Binary, BinOp, Column, Expr, conjoin
from repro.cql.expressions import columns_resolvable
from repro.plan.rules import extract_equijoin_keys


@dataclass
class SourceStats:
    """Statistics for one catalog source.

    ``rate`` — arrivals per tick (0 for static relations);
    ``size``  — windowed state size in tuples (relations: row count);
    ``distinct`` — per-column number of distinct values (unqualified
    column names).
    """

    rate: float
    size: float
    distinct: dict[str, float] = field(default_factory=dict)

    def ndv(self, column: str) -> float:
        name = column.rpartition(".")[2]
        return self.distinct.get(name, max(self.size, 1.0))


class Statistics:
    """Source name → :class:`SourceStats`, with selectivity estimation."""

    DEFAULT_RESIDUAL_SELECTIVITY = 0.5

    def __init__(self, sources: dict[str, SourceStats]) -> None:
        self._sources = dict(sources)

    def for_source(self, name: str) -> SourceStats:
        try:
            return self._sources[name]
        except KeyError:
            raise PlanError(f"no statistics for source {name!r}") from None

    def equality_selectivity(self, left_source: str, left_column: str,
                             right_source: str,
                             right_column: str) -> float:
        left_ndv = self.for_source(left_source).ndv(left_column)
        right_ndv = self.for_source(right_source).ndv(right_column)
        return 1.0 / max(left_ndv, right_ndv, 1.0)


@dataclass(frozen=True)
class PlanCost:
    """Estimated streaming characteristics of a (sub)plan."""

    state: float   # tuples of maintained state
    rate: float    # output tuples per tick
    work: float    # probe work per tick, cumulative over the subtree


@dataclass
class _Leaf:
    """One join input: an unbreakable subtree with its stats."""

    index: int
    plan: LogicalOp
    source: str          # catalog name of the underlying scan
    stats: SourceStats


@dataclass
class _Candidate:
    plan: LogicalOp
    cost: PlanCost
    leaves: frozenset


def _leaf_source(plan: LogicalOp) -> str:
    for node in walk(plan):
        if isinstance(node, (StreamScan, RelationScan)):
            return node.name
    raise PlanError(f"no scan under join input {plan!r}")


def _collect_join_region(plan: LogicalOp,
                         ) -> tuple[list[LogicalOp], list[Expr]]:
    """Flatten a Join subtree into its inputs and predicate pool."""
    inputs: list[LogicalOp] = []
    predicates: list[Expr] = []

    def visit(node: LogicalOp) -> None:
        if isinstance(node, Join):
            for left_key, right_key in zip(node.left_keys,
                                           node.right_keys):
                predicates.append(
                    Binary(BinOp.EQ, Column(left_key), Column(right_key)))
            if node.residual is not None:
                from repro.cql.ast import split_conjuncts
                predicates.extend(split_conjuncts(node.residual))
            visit(node.left)
            visit(node.right)
        else:
            inputs.append(node)

    visit(plan)
    return inputs, predicates


def estimate(plan: LogicalOp, stats: Statistics) -> PlanCost:
    """Estimate the streaming cost of an arbitrary plan (used by C4)."""
    if isinstance(plan, Join):
        left = estimate(plan.left, stats)
        right = estimate(plan.right, stats)
        selectivity = _join_selectivity(plan, stats)
        probe = left.rate * right.state + right.rate * left.state
        return PlanCost(
            state=selectivity * left.state * right.state,
            rate=selectivity * probe,
            work=left.work + right.work + probe)
    if isinstance(plan, (StreamScan, RelationScan)):
        source = stats.for_source(plan.name)
        return PlanCost(state=source.size, rate=source.rate, work=0.0)
    if isinstance(plan, Filter):
        child = estimate(plan.child, stats)
        s = Statistics.DEFAULT_RESIDUAL_SELECTIVITY
        return PlanCost(child.state * s, child.rate * s, child.work)
    if plan.children:
        # Windows and other unary nodes: pass through the child estimate.
        child = estimate(plan.children[0], stats)
        return PlanCost(child.state, child.rate, child.work)
    raise PlanError(f"cannot estimate {plan!r}")


def _owning_source(plan: LogicalOp, column: str) -> str:
    """The catalog source whose scan schema resolves ``column``."""
    for node in walk(plan):
        if isinstance(node, (StreamScan, RelationScan)) \
                and column in node.schema:
            return node.name
    raise PlanError(f"column {column!r} not found under {plan!r}")


def _join_selectivity(join: Join, stats: Statistics) -> float:
    selectivity = 1.0
    for left_key, right_key in zip(join.left_keys, join.right_keys):
        selectivity *= stats.equality_selectivity(
            _owning_source(join.left, left_key), left_key,
            _owning_source(join.right, right_key), right_key)
    if join.residual is not None:
        selectivity *= Statistics.DEFAULT_RESIDUAL_SELECTIVITY
    return selectivity


def volcano_optimize(plan: LogicalOp, stats: Statistics) -> LogicalOp:
    """Reorder every join region of ``plan`` by DP enumeration.

    Non-join operators above/below the join region are preserved; the
    join region itself is rebuilt in the cheapest order found (bushy plans
    allowed).  Run the rule-based optimizer first so predicates sit at
    their join (this function re-extracts equi-keys after reordering).
    """
    if isinstance(plan, Join):
        return _optimize_region(plan, stats)
    if not plan.children:
        return plan
    return plan.with_children(
        [volcano_optimize(child, stats) for child in plan.children])


def _optimize_region(join: Join, stats: Statistics) -> LogicalOp:
    inputs, predicates = _collect_join_region(join)
    leaves = []
    for index, sub in enumerate(inputs):
        optimized = volcano_optimize(sub, stats)
        leaves.append(_Leaf(index, optimized, _leaf_source(optimized),
                            stats.for_source(_leaf_source(optimized))))
    if len(leaves) > 12:
        raise PlanError("join region too large for DP enumeration")

    best: dict[frozenset, _Candidate] = {}
    for leaf in leaves:
        cost = estimate(leaf.plan, stats)
        best[frozenset([leaf.index])] = _Candidate(
            leaf.plan, cost, frozenset([leaf.index]))

    indices = frozenset(l.index for l in leaves)
    for size in range(2, len(leaves) + 1):
        for subset in map(frozenset,
                          itertools.combinations(indices, size)):
            for left_set in _proper_subsets(subset):
                right_set = subset - left_set
                if left_set not in best or right_set not in best:
                    continue
                left = best[left_set]
                right = best[right_set]
                candidate_plan = _build_join(
                    left.plan, right.plan, predicates)
                cost = estimate(candidate_plan, stats)
                current = best.get(subset)
                if current is None or cost.work < current.cost.work:
                    best[subset] = _Candidate(candidate_plan, cost, subset)
    return best[indices].plan


def _proper_subsets(subset: frozenset) -> Iterable[frozenset]:
    items = sorted(subset)
    n = len(items)
    for mask in range(1, 2 ** n - 1):
        yield frozenset(items[i] for i in range(n) if mask & (1 << i))


def _build_join(left: LogicalOp, right: LogicalOp,
                predicates: list[Expr]) -> Join:
    combined = left.schema.concat(right.schema)
    applicable = []
    for predicate in predicates:
        if columns_resolvable(predicate, combined) and not (
                columns_resolvable(predicate, left.schema)
                or columns_resolvable(predicate, right.schema)):
            applicable.append(predicate)
    join = Join(left, right, residual=conjoin(applicable))
    extracted = extract_equijoin_keys(join)
    return extracted if extracted is not None else join
