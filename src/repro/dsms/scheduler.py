"""Operator/query scheduling for the DSMS engine.

A DSMS multiplexes many standing queries over shared input queues; the
scheduler decides which query's pending work to run next.  We provide the
two classic policies: round-robin (fairness) and longest-queue-first
(drains backlogs, bounding memory — the Aurora-style heuristic).
"""

from __future__ import annotations

from typing import Protocol, Sequence


class Schedulable(Protocol):
    """What the scheduler sees of a query: its backlog size."""

    @property
    def pending(self) -> int: ...


class Scheduler:
    """Base class: pick the index of the next query to service."""

    def next_index(self, queries: Sequence[Schedulable]) -> int | None:
        """Index of the next query with pending work, or None if idle."""
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """Service queries in rotation, skipping idle ones."""

    def __init__(self) -> None:
        self._cursor = 0

    def next_index(self, queries: Sequence[Schedulable]) -> int | None:
        if not queries:
            return None
        n = len(queries)
        for offset in range(n):
            index = (self._cursor + offset) % n
            if queries[index].pending > 0:
                self._cursor = (index + 1) % n
                return index
        return None


class LongestQueueScheduler(Scheduler):
    """Always service the query with the largest backlog."""

    def next_index(self, queries: Sequence[Schedulable]) -> int | None:
        best_index = None
        best_pending = 0
        for index, query in enumerate(queries):
            if query.pending > best_pending:
                best_pending = query.pending
                best_index = index
        return best_index


class FIFOScheduler(Scheduler):
    """Service queries in registration order (first non-idle wins)."""

    def next_index(self, queries: Sequence[Schedulable]) -> int | None:
        for index, query in enumerate(queries):
            if query.pending > 0:
                return index
        return None
