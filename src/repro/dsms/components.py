"""The four architectural components of Figure 3: Stream, Store, Scratch,
Throw.

The paper describes the canonical DSMS layout: *streams* are both input and
main output; the *Store* aligns with CQL's time-varying relation
abstraction and persists query results; the *Scratch* is working memory for
intermediate operator state; the *Throw* is the logical recycle bin where
expired tuples go.  This module gives each a concrete, inspectable
realisation wired into the DSMS engine.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol

from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.time import Timestamp


class Store:
    """Persistent result storage: one time-varying relation per query.

    The Store is what a client reads when it asks a DSMS for "the current
    answer" of a registered relation-producing query.
    """

    def __init__(self) -> None:
        self._relations: dict[str, TimeVaryingRelation] = {}
        self._current: dict[str, Bag] = {}
        self.writes = 0

    def register(self, name: str) -> None:
        self._relations[name] = TimeVaryingRelation()
        self._current[name] = Bag()

    def write(self, name: str, state: Bag, t: Timestamp) -> None:
        """Persist a query's new current state at instant ``t``."""
        relation = self._relations[name]
        if relation.change_points() and relation.change_points()[-1] == t:
            # Same-instant refinement: keep the latest state for t.
            relation._times.pop()
            relation._states.pop()
        relation.set_at(t, state.copy(), coalesce=False)
        self._current[name] = state.copy()
        self.writes += 1

    def current(self, name: str) -> Bag:
        """The stored answer right now."""
        return self._current[name].copy()

    def snapshot(self) -> dict[str, Any]:
        """Copy every stored relation's change-log (for checkpointing)."""
        relations: dict[str, Any] = {}
        for name, relation in self._relations.items():
            relations[name] = {
                "times": list(relation._times),
                "states": [bag.copy() for bag in relation._states],
                "current": self._current[name].copy(),
            }
        return {"relations": relations, "writes": self.writes}

    def restore(self, payload: dict[str, Any]) -> None:
        """Roll the Store back to a snapshot, in place."""
        for name, entry in payload["relations"].items():
            if name not in self._relations:
                self.register(name)
            relation = self._relations[name]
            relation._times = list(entry["times"])
            relation._states = [bag.copy() for bag in entry["states"]]
            self._current[name] = entry["current"].copy()
        self.writes = payload["writes"]

    def history(self, name: str) -> TimeVaryingRelation:
        """The full change-log of the stored answer."""
        return self._relations[name]

    def names(self) -> list[str]:
        return sorted(self._relations)


class StateHolder(Protocol):
    """Anything whose memory footprint the Scratch can account for."""

    @property
    def state_size(self) -> int: ...


class Scratch:
    """Working-memory accounting for intermediate operator state.

    Operators (window buffers, join hash tables, aggregate groups) register
    here; the Scratch reports total and peak occupancy, which the Figure 3
    benchmark sweeps against window size.
    """

    def __init__(self) -> None:
        self._holders: list[tuple[str, StateHolder]] = []
        self.peak = 0

    def register(self, label: str, holder: StateHolder) -> None:
        self._holders.append((label, holder))

    def unregister(self, prefix: str) -> int:
        """Drop registrations whose label is ``prefix`` or starts with
        ``prefix`` + a separator; returns how many were dropped.

        Used when a query's physical operators are replaced wholesale
        (live rescale): the old replicas' holders would otherwise keep
        their dead state in the occupancy number forever.
        """
        def matches(label: str) -> bool:
            return label == prefix or label.startswith(prefix + "/") \
                or label.startswith(prefix + "!")

        before = len(self._holders)
        self._holders = [(label, holder) for label, holder in self._holders
                         if not matches(label)]
        return before - len(self._holders)

    def occupancy(self) -> int:
        """Total tuples currently held in registered operator state."""
        total = sum(holder.state_size for _, holder in self._holders)
        if total > self.peak:
            self.peak = total
        return total

    def breakdown(self) -> dict[str, int]:
        """Occupancy per registered holder label."""
        out: dict[str, int] = {}
        for label, holder in self._holders:
            out[label] = out.get(label, 0) + holder.state_size
        return out

    def __len__(self) -> int:
        return len(self._holders)


class Throw:
    """The logical recycle bin: every expired/discarded tuple passes here.

    Keeps counts (and optionally the tuples themselves, for inspection)
    so tests can assert that windows really release state.
    """

    def __init__(self, keep_tuples: bool = False) -> None:
        self._keep = keep_tuples
        self._tuples: list[tuple[Any, Timestamp]] = []
        self.discarded = 0

    def discard(self, value: Any, t: Timestamp) -> None:
        self.discarded += 1
        if self._keep:
            self._tuples.append((value, t))

    def tuples(self) -> Iterator[tuple[Any, Timestamp]]:
        if not self._keep:
            raise ValueError("Throw was created with keep_tuples=False")
        return iter(self._tuples)

    def __repr__(self) -> str:
        return f"Throw(discarded={self.discarded})"
