"""DSMS — the Data Stream Management System of paper Figure 3.

The architectural components (Store / Scratch / Throw), bounded input
queues, schedulers and load-shedding policies, assembled around the CQL
incremental executor by :class:`~repro.dsms.engine.DSMSEngine`.
"""

from repro.dsms.components import Scratch, Store, Throw
from repro.dsms.engine import DSMSEngine, QueryHandle
from repro.dsms.metrics import Gauge, QueryMetrics
from repro.dsms.queues import InputQueue, QueuedTuple
from repro.dsms.scheduler import (
    FIFOScheduler,
    LongestQueueScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.dsms.shedding import (
    NoShedding,
    RandomShedder,
    SemanticShedder,
    Shedder,
)

__all__ = [
    "DSMSEngine", "QueryHandle",
    "Store", "Scratch", "Throw",
    "InputQueue", "QueuedTuple",
    "Scheduler", "RoundRobinScheduler", "LongestQueueScheduler",
    "FIFOScheduler",
    "Shedder", "NoShedding", "RandomShedder", "SemanticShedder",
    "Gauge", "QueryMetrics",
]
