"""The DSMS engine: Figure 3 made executable.

Wires the four architectural components (Stream in/out, Store, Scratch,
Throw) around the incremental CQL executor, adds bounded input queues, a
pluggable scheduler and load shedding — the full anatomy of a
STREAM/TelegraphCQ-era Data Stream Management System at laptop scale.

Usage::

    dsms = DSMSEngine()
    dsms.register_stream("Obs", schema)
    handle = dsms.register_query("hot", "SELECT ISTREAM id FROM Obs [Now] "
                                         "WHERE temp > 30")
    dsms.ingest("Obs", {"id": 1, "temp": 35}, t=0)
    dsms.run_until_idle()
    handle.store_state()          # the Store's current answer
    dsms.throw.discarded          # tuples that passed through the Throw
"""

from __future__ import annotations

from time import perf_counter as _perf
from typing import Any, Iterable, Mapping

import repro.obs as obs
from repro.obs import profile as _profile
from repro.core.errors import PlanError, StateError
from repro.core.errors import TimeError as CoreTimeError
from repro.core.records import Record, Schema
from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.time import MIN_TIMESTAMP, Timestamp
from repro.cql.catalog import Catalog
from repro.cql.engine import CQLEngine
from repro.cql.executor import (
    ContinuousQuery,
    Emission,
    PhysicalOp,
    StreamSourceOp,
)
from repro.dsms.components import Scratch, Store, Throw
from repro.dsms.metrics import QueryMetrics
from repro.dsms.queues import InputQueue
from repro.dsms.scheduler import RoundRobinScheduler, Scheduler
from repro.dsms.shedding import NoShedding, Shedder
from repro.views.service import DynamicTableService


def _stateful_ops(root: PhysicalOp) -> list[tuple[str, Any]]:
    """Walk a physical tree collecting operators with state to account."""
    out: list[tuple[str, Any]] = []

    def visit(op: PhysicalOp) -> None:
        if hasattr(op, "state_size"):
            out.append((type(op).__name__, op))
        for child in op.children:
            visit(child)

    visit(root)
    return out


class QueryHandle:
    """One registered standing query inside the DSMS.

    ``track_state=False`` is used for members of a shared plan group:
    their operator state overlaps with other members', so Scratch
    registration and Throw (eviction) accounting happen once at the
    group level instead of per member.
    """

    def __init__(self, name: str, query: ContinuousQuery,
                 queue: InputQueue, shedder: Shedder,
                 store: Store, scratch: Scratch, throw: Throw,
                 wm_clock: obs.WatermarkClock | None = None,
                 track_state: bool = True, batch_size: int = 1,
                 max_batch_wait: int = 0) -> None:
        self.name = name
        self.query = query
        self.queue = queue
        self.shedder = shedder
        #: Micro-batch size: a service quantum drains up to this many
        #: same-timestamp tuples into one ``push_batch`` (1 = per-tuple).
        self.batch_size = max(1, batch_size)
        #: How many service rounds a sub-full batch may be deferred
        #: waiting for the queue to fill (0 = never wait).
        self.max_batch_wait = max(0, max_batch_wait)
        self._deferrals = 0
        self._store = store
        self._scratch = scratch
        self._throw = throw
        self._wm_clock = wm_clock
        self.metrics = QueryMetrics()
        #: Wall time spent servicing this query's tuples (accumulated
        #: only while obs is enabled; the per-operator split lives in the
        #: query's executor accounting).
        self.busy_seconds = 0.0
        #: Live-rescale history: one RescaleReport per completed
        #: migration (``DSMSEngine.rescale_query`` appends here).
        self.rescales: list = []
        #: The adaptivity controller driving this query when the engine
        #: runs with ``autoscale=`` (None otherwise / when ineligible).
        self.autoscaler = None
        self._emissions: list[Emission] = []
        self._ingest_seq = 0
        self._process_seq = 0
        store.register(name)
        self._sources: list[StreamSourceOp] = []
        if track_state:
            # A PartitionedQuery has one physical root per replica; a
            # serial query exactly one.  Scratch accounting covers all of
            # them — fissioned state is still this query's state.
            roots = query.physical_roots()
            for index, root in enumerate(roots):
                suffix = f"!{index}" if len(roots) > 1 else ""
                for label, op in _stateful_ops(root):
                    scratch.register(f"{name}/{label}{suffix}", op)
            self._sources = [
                op for root in roots for _, op in _stateful_ops(root)
                if isinstance(op, StreamSourceOp)]
        self._last_source_sizes = {id(op): 0 for op in self._sources}

    @property
    def pending(self) -> int:
        """Backlog size — what the scheduler looks at."""
        return len(self.queue)

    def reads_stream(self, name: str) -> bool:
        return name in self.query._stream_sources

    def offer(self, stream_name: str, record: Mapping[str, Any] | Record,
              t: Timestamp) -> bool:
        """Admission control + enqueue.  Returns False when shed/dropped."""
        self.metrics.ingested += 1
        if not self.shedder.admit(record, self.queue):
            self.metrics.shed += 1
            return False
        if not self.queue.offer((stream_name, record, self._ingest_seq), t):
            self.metrics.queue_dropped += 1
            # The policy said yes but the queue bounced the tuple: tell the
            # shedder so shed_fraction keeps reporting the true drop rate.
            self.shedder.record_queue_drop()
            return False
        self._ingest_seq += 1
        if obs._STATE.enabled:
            obs.get_registry().gauge(
                "dsms.queue.depth", query=self.name).observe(len(self.queue))
        return True

    def service_one(self) -> bool:
        """Service one scheduling quantum.  Returns False when idle.

        With ``batch_size=1`` (the default) a quantum is one tuple.  A
        batched handle drains up to ``batch_size`` same-timestamp tuples
        into ONE atomic ``push_batch`` — one instant evaluation, one
        Store write — and may defer a sub-full batch for up to
        ``max_batch_wait`` quanta, betting that the queue fills before
        latency matters.
        """
        if self.batch_size > 1:
            if not self.queue:
                self._deferrals = 0
                return False
            if len(self.queue) < self.batch_size \
                    and self._deferrals < self.max_batch_wait:
                # A waiting quantum: cheap, but it trades latency for
                # batch occupancy — the knob the docs warn about.
                self._deferrals += 1
                return True
            self._deferrals = 0
            batch = self.queue.poll_batch(self.batch_size)
        else:
            queued = self.queue.poll()
            if queued is None:
                return False
            batch = [queued]
        if obs._STATE.enabled:
            started = _perf()
            with obs.get_tracer().span("dsms.service",
                                       query=self.name) as span:
                self._service(batch, span)
            self.busy_seconds += _perf() - started
        else:
            self._service(batch, None)
        return True

    def _service(self, batch, span) -> None:
        t = batch[0].timestamp
        arrivals: dict[str, list] = {}
        seqs: list[int] = []
        streams_seen: set[str] = set()
        for queued in batch:
            stream_name, record, seq = queued.value
            arrivals.setdefault(stream_name, []).append(record)
            streams_seen.add(stream_name)
            seqs.append(seq)
        before = self._evictions()
        emitted = self.query.push_batch(t, arrivals)
        self._account_throw(before, t)
        self._emissions.extend(emitted)
        self.metrics.processed += len(batch)
        self.metrics.emitted += len(emitted)
        for seq in seqs:
            self.metrics.queue_wait.observe(self._process_seq - seq)
            self._process_seq += 1
        self.metrics.scratch.observe(self._scratch.occupancy())
        if span is not None:
            span.add(records=len(batch), emitted=len(emitted))
            wait_hist = obs.get_registry().histogram(
                "dsms.queue.wait", query=self.name)
            for offset, seq in enumerate(seqs, start=1):
                wait_hist.observe(self._process_seq - len(seqs)
                                  + offset - 1 - seq)
            if self._wm_clock is not None:
                for stream_name in streams_seen:
                    self._wm_clock.observe_processed(stream_name, t)
        self._store.write(self.name, self.query.current(), t)

    def advance_to(self, t: Timestamp) -> list[Emission]:
        """Advance event time (window expirations) with no new data."""
        before = self._evictions()
        emitted = self.query.advance_to(t)
        self._account_throw(before, t)
        self._emissions.extend(emitted)
        if self.query._log:
            self._store.write(self.name, self.query.current(), t)
        return emitted

    def _evictions(self) -> int:
        return sum(op.evicted for op in self._sources)

    def _account_throw(self, before: int, t: Timestamp) -> None:
        # Every tuple evicted from a window buffer passes through the Throw.
        for _ in range(self._evictions() - before):
            self._throw.discard(None, t)

    def emissions(self) -> list[Emission]:
        return list(self._emissions)

    def store_state(self) -> Bag:
        """The Store's current answer for this query."""
        return self._store.current(self.name)

    def store_history(self) -> TimeVaryingRelation:
        return self._store.history(self.name)


class SharedGroupHandle:
    """The scheduling unit for a shared plan group (multi-query sharing).

    Where isolated queries each own a queue and are serviced separately,
    a shared group IS one execution unit: one bounded input queue, one
    service path, one kernel instant that advances every member.  The
    scheduler sees this handle like any other; servicing one tuple runs
    the group instant and then fans results out to the member
    :class:`QueryHandle` objects (emissions, metrics, Store writes).

    Scratch and Throw accounting happen here over the group's *distinct*
    operators, so shared state is counted once — the honest number the
    sharing benchmark reports.
    """

    def __init__(self, group, queue: InputQueue, scratch: Scratch,
                 throw: Throw,
                 wm_clock: obs.WatermarkClock | None = None) -> None:
        self.name = "<shared-group>"
        self.group = group
        self.queue = queue
        self._scratch = scratch
        self._throw = throw
        self._wm_clock = wm_clock
        self.busy_seconds = 0.0
        self.members: list[QueryHandle] = []
        self._registered_ops: set[int] = set()

    def add_member(self, handle: QueryHandle) -> None:
        self.members.append(handle)
        for label, op in _stateful_ops(handle.query._root):
            if id(op) not in self._registered_ops:
                self._registered_ops.add(id(op))
                self._scratch.register(f"shared/{label}", op)

    @property
    def pending(self) -> int:
        return len(self.queue)

    def reads_stream(self, name: str) -> bool:
        return self.group.reads_stream(name)

    def offer(self, stream_name: str, record: Mapping[str, Any] | Record,
              t: Timestamp) -> bool:
        """Enqueue once for the whole group (members never shed)."""
        readers = [h for h in self.members if h.reads_stream(stream_name)]
        for handle in readers:
            handle.metrics.ingested += 1
        if not self.queue.offer((stream_name, record), t):
            for handle in readers:
                handle.metrics.queue_dropped += 1
            return False
        if obs._STATE.enabled:
            obs.get_registry().gauge(
                "dsms.queue.depth", query=self.name).observe(len(self.queue))
        return True

    def service_one(self) -> bool:
        queued = self.queue.poll()
        if queued is None:
            return False
        started = _perf() if obs._STATE.enabled else None
        stream_name, record = queued.value
        t = queued.timestamp
        before = self._evictions()
        self.group.push_batch(t, {stream_name: [record]})
        self._account_throw(before, t)
        if started is not None:
            if self._wm_clock is not None:
                self._wm_clock.observe_processed(stream_name, t)
            self.busy_seconds += _perf() - started
        self._deliver(t, stream_name)
        return True

    def advance_to(self, t: Timestamp) -> list[Emission]:
        before = self._evictions()
        self.group.advance_to(t)
        self._account_throw(before, t)
        self._deliver(t)
        return []

    def _deliver(self, t: Timestamp, stream_name: str | None = None) -> None:
        """Fan one group instant's results out to the member handles.

        Store-write policy mirrors the isolated :class:`QueryHandle`:
        servicing a tuple writes every member that reads the stream (in
        isolation each would have serviced its own copy), and a pure
        time advance writes every member with history.  Additionally a
        member whose state changed at ``t`` via *another* member's tuple
        is written — in isolation that change would have arrived through
        its own queue.
        """
        for handle in self.members:
            emitted = handle.query._drain_undelivered()
            handle._emissions.extend(emitted)
            handle.metrics.emitted += len(emitted)
            if stream_name is None:
                if handle.query._log:
                    handle._store.write(handle.name, handle.query.current(),
                                        t)
                continue
            if handle.reads_stream(stream_name):
                handle.metrics.processed += 1
                handle.metrics.scratch.observe(self._scratch.occupancy())
                handle._store.write(handle.name, handle.query.current(), t)
            elif handle.query._log and handle.query._log[-1][0] == t:
                handle._store.write(handle.name, handle.query.current(), t)

    def _sources(self) -> list[StreamSourceOp]:
        return [op for op in self.group.distinct_operators()
                if isinstance(op, StreamSourceOp)]

    def _evictions(self) -> int:
        return sum(op.evicted for op in self._sources())

    def _account_throw(self, before: int, t: Timestamp) -> None:
        for _ in range(self._evictions() - before):
            self._throw.discard(None, t)


class DSMSEngine:
    """The Figure 3 Data Stream Management System."""

    def __init__(self, scheduler: Scheduler | None = None,
                 queue_capacity: int = 1024,
                 keep_thrown_tuples: bool = False,
                 kernel: bool = True,
                 sharing: bool = False,
                 recovery_interval: int | None = None,
                 max_restarts: int = 3,
                 batch_size: int = 1,
                 max_batch_wait: int = 0,
                 autoscale: Any = None) -> None:
        self._cql = CQLEngine()
        self._kernel = kernel
        #: Engine-default micro-batch size: a service quantum drains up
        #: to this many same-timestamp tuples into one atomic instant
        #: evaluation.  Per query the planner's batching pass clamps the
        #: default back to 1 when the query's *emissions* would change
        #: (see :func:`repro.plan.batching.decide_batch_size`); an
        #: explicit ``register_query(batch_size=...)`` overrides the
        #: clamp (state-exact opt-in).
        self.batch_size = max(1, batch_size)
        #: Service quanta a sub-full batch may wait for the queue to
        #: fill before being flushed anyway (latency/occupancy knob).
        self.max_batch_wait = max(0, max_batch_wait)
        #: Multi-query plan sharing: queries registered with the default
        #: shedder and queue capacity are compiled into one communal
        #: :class:`repro.cql.shared.SharedGroup` (common subplans share
        #: physical operators and window state) and serviced as one
        #: scheduling unit.  Requires the kernel substrate.
        self._sharing = sharing and kernel
        self.scheduler = scheduler or RoundRobinScheduler()
        self.queue_capacity = queue_capacity
        self.store = Store()
        self.scratch = Scratch()
        self.throw = Throw(keep_tuples=keep_thrown_tuples)
        #: Schedulable units: isolated QueryHandles + at most one
        #: SharedGroupHandle.  ``_handles`` stays the per-query list the
        #: public API (queries, metrics_table) exposes.
        self._units: list[QueryHandle | SharedGroupHandle] = []
        self._handles: list[QueryHandle] = []
        self._by_name: dict[str, QueryHandle] = {}
        self._group_handle: SharedGroupHandle | None = None
        # Event-time lag accounting, published under dsms.watermark.*.
        self.watermark_clock = obs.WatermarkClock(
            obs.get_registry(), prefix="dsms.watermark")
        #: Per-source stall detection (fed on arrival while obs is on):
        #: a registered stream whose arrivals fall far behind the global
        #: arrival tick is flagged — the crash-recovered-source signal.
        self.stall_detector = _profile.StallDetector()
        #: Crash recovery (``recovery_interval`` arrivals per checkpoint):
        #: the engine keeps an arrival log and engine-wide snapshots; a
        #: recoverable failure raised while servicing rolls every query
        #: and the Store back to the newest checkpoint, clears the queues,
        #: and re-offers the logged suffix — restore-and-replay at DSMS
        #: scope.  Incompatible with plan sharing: a shared group's
        #: interleaved operator state has no per-query snapshot.
        self.recovery: "RecoveryManager | None" = None
        self._arrival_log: list[tuple] = []
        #: Dynamic tables hosted alongside standing queries (§5.1's
        #: streaming-database pillar): the refresh scheduler runs inside
        #: the engine's time hooks — ``advance_time`` ticks the view
        #: clock and ``run_until_idle`` settles overdue views.
        self.views = DynamicTableService()
        #: Streams materialised into views base tables: every ingested
        #: tuple of these streams also commits as a CDC insert.
        self._view_fed: set[str] = set()
        #: Adaptivity: ``autoscale=True`` enables the default
        #: :class:`repro.plan.adaptive.AdaptivePolicy`; passing a policy
        #: uses it as given.  Each eligible (key-partitionable,
        #: non-shared) query gets its own hysteresis controller, polled
        #: once per ``run_until_idle`` against the pre-drain backlog.
        self._autoscale_policy = None
        if autoscale:
            from repro.plan.adaptive import AdaptivePolicy
            self._autoscale_policy = (AdaptivePolicy()
                                      if autoscale is True else autoscale)
        self._autoscale_ineligible: set[str] = set()
        if recovery_interval is not None:
            if self._sharing:
                raise PlanError(
                    "crash recovery does not support plan sharing: shared "
                    "operator state cannot be snapshotted per query")
            from repro.chaos.recovery import RecoveryManager
            self.recovery = RecoveryManager(
                self, interval=recovery_interval,
                max_retries=max_restarts, backoff_base=0.0,
                label="dsms")

    @property
    def catalog(self) -> Catalog:
        return self._cql.catalog

    # -- registration ---------------------------------------------------------

    def register_stream(self, name: str, schema: Schema) -> None:
        self._cql.register_stream(name, schema)
        self.stall_detector.register(name)

    def register_relation(self, name: str, schema: Schema,
                          rows: Iterable[Mapping[str, Any]] = ()) -> None:
        self._cql.register_relation(name, schema, rows)

    def register_query(self, name: str, text: str,
                       shedder: Shedder | None = None,
                       queue_capacity: int | None = None,
                       parallelism: int | None = None,
                       batch_size: int | None = None) -> QueryHandle:
        """Register a standing query under ``name`` (Figure 1: issued once,
        active until cancelled).

        ``parallelism=N`` asks for key-partitioned execution; the planner
        clamps unpartitionable plans back to a serial query (see
        :meth:`repro.cql.engine.CQLEngine.register_query`).

        ``batch_size=None`` (default) inherits the engine's batch size,
        clamped back to 1 by the planner's emission-safety pass when
        batching would change this query's output stream.  An explicit
        integer is taken as-is: the caller opts into state-exact (but not
        emission-exact) batching — the maintained Store answer is
        identical, intermediate per-arrival emissions may net away."""
        if name in self._by_name:
            raise PlanError(f"query name {name!r} already registered")
        if batch_size is None:
            from repro.plan.batching import decide_batch_size
            batch_size = decide_batch_size(self._cql.plan(text),
                                           self.batch_size)
        wants_fission = parallelism is not None and parallelism > 1
        if self._sharing and shedder is None and queue_capacity is None \
                and not wants_fission:
            # Default-policy queries join the communal shared plan group;
            # a custom shedder or queue would need per-query admission,
            # which a shared queue cannot express, so those stay isolated.
            # Fissioned queries also stay isolated: sharing interleaves
            # operator state that partitioning must keep disjoint.
            return self._register_shared(name, text)
        query = self._cql.register_query(text, kernel=self._kernel,
                                         parallelism=parallelism)
        query.start()
        handle = QueryHandle(
            name, query,
            InputQueue(queue_capacity or self.queue_capacity),
            shedder or NoShedding(),
            self.store, self.scratch, self.throw,
            wm_clock=self.watermark_clock,
            batch_size=batch_size, max_batch_wait=self.max_batch_wait)
        self._units.append(handle)
        self._handles.append(handle)
        self._by_name[name] = handle
        self.store.write(name, query.current(), 0)
        if self.recovery is not None:
            # Re-baseline so the new query is covered by the recovery
            # point.  Registration is expected at quiescence (queues
            # drained); queued arrivals are in the log and re-offered on
            # rollback anyway.
            self.recovery.checkpoint(len(self._arrival_log))
        return handle

    def _register_shared(self, name: str, text: str) -> QueryHandle:
        if self._group_handle is None:
            from repro.cql.shared import SharedGroup
            group = SharedGroup(self.catalog)
            self._group_handle = SharedGroupHandle(
                group, InputQueue(self.queue_capacity), self.scratch,
                self.throw, wm_clock=self.watermark_clock)
            self._units.append(self._group_handle)
        group = self._group_handle.group
        query = self._cql.register_query(text, shared=group)
        query.start()
        handle = QueryHandle(
            name, query, self._group_handle.queue, NoShedding(),
            self.store, self.scratch, self.throw,
            wm_clock=self.watermark_clock, track_state=False)
        self._group_handle.add_member(handle)
        self._handles.append(handle)
        self._by_name[name] = handle
        self.store.write(name, query.current(), 0)
        return handle

    def create_dynamic_table(self, text: str):
        """Install a ``CREATE DYNAMIC TABLE`` next to the standing queries.

        The view's FROM source may name a registered *stream*: the engine
        then materialises the stream into a views base table (every
        ingested tuple commits as a CDC insert at its event time) and the
        view refreshes through the engine's time hooks.  Sources already
        known to the view service (base tables created via
        ``engine.views.create_table`` or other dynamic tables) are used
        as-is.  Returns the installed
        :class:`~repro.views.service.DynamicTable`.
        """
        from repro.sql.ast import CreateDynamicTable
        from repro.sql.parser import parse_statement

        statement = parse_statement(text)
        if not isinstance(statement, CreateDynamicTable):
            raise PlanError("create_dynamic_table() takes CREATE DYNAMIC "
                            "TABLE statements")
        source = statement.select.source
        if not self.views.catalog.is_relation(source) \
                and self.catalog.is_stream(source):
            self.views.create_table(source,
                                    self.catalog.stream(source).schema)
            self._view_fed.add(source)
        return self.views.execute(text)

    def query(self, name: str) -> QueryHandle:
        return self._by_name[name]

    def cancel_query(self, name: str) -> QueryHandle:
        """Explicitly terminate a standing query (the other half of the
        Figure 1 contract: active *until terminated*).  Pending queue
        contents are discarded; the Store keeps the final answer."""
        handle = self._by_name.get(name)
        if handle is None:
            raise PlanError(f"unknown query {name!r}")
        if handle.query._shared is not None:
            raise PlanError(
                f"query {name!r} is a member of a shared plan group; its "
                f"operator state is interleaved with other members' and "
                f"cannot be torn down independently")
        del self._by_name[name]
        self._handles.remove(handle)
        self._units.remove(handle)
        return handle

    @property
    def queries(self) -> list[QueryHandle]:
        return list(self._handles)

    # -- live rescale ----------------------------------------------------------

    def rescale_query(self, name: str, parallelism: int):
        """Live-migrate a running query to a new parallelism.

        Uses :func:`repro.runtime.rescale.rescale`: barrier checkpoint
        via the existing snapshot protocol, per-operator re-keying by
        ``default_hash`` placement, resume at the new width — the query
        keeps its state, emissions and event-time frontier, and its
        output stays byte-identical to a never-rescaled run.  A serial
        query is first promoted to a width-1 fission
        (:meth:`~repro.cql.parallel.PartitionedQuery.adopt`).

        Engine bookkeeping moves with it: Scratch registrations are
        replaced (the old replicas' operators are dead), eviction
        accounting re-bases on the new sources, and crash recovery takes
        a fresh baseline — old checkpoints encode the old width and must
        not be restored into the new one.

        Returns the :class:`~repro.runtime.rescale.RescaleReport`.
        """
        from repro.cql.parallel import PartitionedQuery

        handle = self._by_name.get(name)
        if handle is None:
            raise PlanError(f"unknown query {name!r}")
        query = handle.query
        if query._shared is not None:
            raise PlanError(
                f"query {name!r} is a member of a shared plan group; its "
                f"operator state is interleaved with other members' and "
                f"cannot be repartitioned independently")
        if handle.pending:
            raise StateError(
                f"query {name!r} has {handle.pending} queued tuples; "
                f"drain before rescaling (run_until_idle)")
        if not isinstance(query, PartitionedQuery):
            query = PartitionedQuery.adopt(query)
            handle.query = query
        report = query.rescale(parallelism)
        # Replace the Scratch registrations and eviction sources: the old
        # replicas' operators no longer exist, the new ones do.
        self.scratch.unregister(name)
        roots = query.physical_roots()
        for index, root in enumerate(roots):
            suffix = f"!{index}" if len(roots) > 1 else ""
            for label, op in _stateful_ops(root):
                self.scratch.register(f"{name}/{label}{suffix}", op)
        handle._sources = [
            op for root in roots for _, op in _stateful_ops(root)
            if isinstance(op, StreamSourceOp)]
        handle._last_source_sizes = {id(op): 0 for op in handle._sources}
        handle.rescales.append(report)
        if self.recovery is not None:
            # Old checkpoints hold the old replica shape; restoring one
            # into the rescaled query would fail (or worse, resurrect the
            # old width).  Move the recovery point past the migration.
            self.recovery.rebase(len(self._arrival_log))
        if obs._STATE.enabled:
            obs.get_registry().counter(
                "dsms.rescale.count", query=name).inc()
            obs.get_registry().gauge(
                "dsms.query.parallelism", query=name).set(parallelism)
        return report

    # -- adaptivity loop -------------------------------------------------------

    def _autoscale_observe(self) -> dict[str, Any]:
        """Capture per-query signals *before* draining: the backlog at
        poll time is the pressure evidence; post-drain queues are always
        empty and would blind the controller."""
        if self._autoscale_policy is None:
            return {}
        from repro.plan.adaptive import Signals

        observed: dict[str, Any] = {}
        for handle in self._handles:
            if handle.name in self._autoscale_ineligible:
                continue
            if handle.query._shared is not None:
                self._autoscale_ineligible.add(handle.name)
                continue
            if handle.autoscaler is None:
                from repro.plan.adaptive import AdaptiveController
                from repro.plan.parallel import partition_scheme
                if partition_scheme(handle.query.plan) is None:
                    self._autoscale_ineligible.add(handle.name)
                    continue
                handle.autoscaler = AdaptiveController(
                    self._autoscale_policy)
            query = handle.query
            replicas = (query.replicas() if hasattr(query, "replicas")
                        else [query])
            lags = [self.watermark_clock.lag(stream)
                    for stream in query._stream_sources]
            lags = [lag for lag in lags if lag is not None]
            processed = handle.metrics.processed
            observed[handle.name] = Signals(
                parallelism=getattr(query, "parallelism", 1),
                queue_occupancy=handle.queue.occupancy,
                pressure_events=handle.queue.pressure_events,
                watermark_lag=max(lags) if lags else None,
                partition_loads=tuple(float(r.deltas_processed)
                                      for r in replicas),
                selectivity=(handle.metrics.emitted / processed
                             if processed else None),
            )
        return observed

    def _autoscale_act(self, observed: dict[str, Any]) -> None:
        """Poll each controller with its pre-drain signals and apply any
        rescale decision — at quiescence, where migration is safe."""
        for name, signals in observed.items():
            handle = self._by_name.get(name)
            if handle is None or handle.autoscaler is None:
                continue  # cancelled mid-drain
            decision = handle.autoscaler.poll(signals)
            if decision.wants_rescale:
                self.rescale_query(name, decision.parallelism)

    # -- data flow -------------------------------------------------------------

    def ingest(self, stream_name: str, record: Mapping[str, Any] | Record,
               t: Timestamp) -> int:
        """Route one arrival to every query reading ``stream_name``.

        Returns the number of queries that admitted the tuple.
        """
        self.catalog.stream(stream_name)  # validates the name
        if t < MIN_TIMESTAMP:
            # Reject here rather than letting the executor blow up
            # asynchronously at service time, after the tuple was queued.
            raise CoreTimeError(
                f"timestamp {t} before the epoch {MIN_TIMESTAMP}")
        if self.recovery is not None:
            self.recovery.start()  # baseline before the first arrival
            self._arrival_log.append(("ingest", stream_name, record, t))
        return self._route(stream_name, record, t)

    def _route(self, stream_name: str, record: Mapping[str, Any] | Record,
               t: Timestamp) -> int:
        """Offer one (validated) arrival to every reading unit."""
        if stream_name in self._view_fed:
            # Views run on the engine's clock, which only moves forward:
            # a late arrival commits at the current version.
            self.views.apply(stream_name, inserts=[record],
                             at=max(t, self.views.clock))
        if obs._STATE.enabled:
            self.watermark_clock.observe_arrival(stream_name, t)
            self.stall_detector.note_arrival(stream_name)
        admitted = 0
        for unit in self._units:
            if unit.reads_stream(stream_name):
                if unit.offer(stream_name, record, t):
                    admitted += 1
        return admitted

    def step(self) -> bool:
        """Run one scheduling quantum: service one tuple of one unit (an
        isolated query, or a whole shared group — its members advance
        together)."""
        index = self.scheduler.next_index(self._units)
        if index is None:
            return False
        return self._units[index].service_one()

    def run_until_idle(self, max_steps: int = 1_000_000) -> int:
        """Drain all queues; returns the number of quanta executed.

        With recovery enabled, a recoverable failure raised while
        servicing triggers restore-and-replay (with the manager's backoff
        and retry bound), and reaching quiescence commits the arrival-log
        position — checkpoints are taken at these quiescent points, when
        logged arrivals equal processed arrivals.
        """
        if not obs._STATE.enabled:
            return self._drain_settled(max_steps)
        with obs.get_tracer().span("dsms.run_until_idle") as span:
            steps = self._drain_settled(max_steps)
            span.add(steps=steps)
            self.publish_observability()
        return steps

    def _drain(self, max_steps: int) -> int:
        steps = 0
        if self.recovery is None:
            while steps < max_steps and self.step():
                steps += 1
            return steps
        failures = 0
        while steps < max_steps:
            try:
                if not self.step():
                    break
            except self.recovery.recoverable:
                failures += 1
                if failures > self.recovery.max_retries:
                    raise
                self.recovery.backoff(failures)
                self._recover_and_replay()
                continue
            steps += 1
        self.recovery.committed(len(self._arrival_log))
        return steps

    def _drain_settled(self, max_steps: int) -> int:
        """Drain the queues, then settle overdue dynamic tables and run
        the adaptivity loop (signals are captured pre-drain — the
        backlog is the evidence — decisions applied at quiescence)."""
        observed = self._autoscale_observe()
        steps = self._drain(max_steps)
        self._tick_views()
        self._autoscale_act(observed)
        return steps

    def advance_time(self, t: Timestamp) -> None:
        """Advance event time for every query (fires window expirations)."""
        if self.recovery is not None:
            self.recovery.start()
            self._arrival_log.append(("advance", t))
        for unit in self._units:
            unit.advance_to(t)
        self._tick_views(t)

    def _tick_views(self, t: Timestamp | None = None) -> None:
        """Run the view refresh scheduler (no-op without dynamic tables)."""
        if self.views.view_names():
            target = self.views.clock if t is None \
                else max(t, self.views.clock)
            self.views.tick(target)

    # -- crash recovery --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """An engine-wide checkpoint: every query's state plus the Store.

        Queue contents are deliberately excluded — checkpoints are taken
        at quiescent points (empty queues), and anything queued at crash
        time is re-offered from the arrival log during replay.  Metrics
        are telemetry, not state: they keep counting across rollbacks, so
        recovery overhead (replayed work) stays visible.
        """
        handles: dict[str, Any] = {}
        for handle in self._handles:
            handles[handle.name] = {
                "query": handle.query.snapshot(),
                "emissions": list(handle._emissions),
                "ingest_seq": handle._ingest_seq,
                "process_seq": handle._process_seq,
            }
        return {"handles": handles, "store": self.store.snapshot(),
                "views": self.views.snapshot()}

    def restore(self, payload: Mapping[str, Any]) -> None:
        """Roll every query and the Store back to a checkpoint."""
        for handle in self._handles:
            entry = payload["handles"].get(handle.name)
            if entry is None:
                raise StateError(
                    f"query {handle.name!r} was registered after the "
                    f"checkpoint being restored")
            handle.query.restore(entry["query"])
            handle._emissions = list(entry["emissions"])
            handle._ingest_seq = entry["ingest_seq"]
            handle._process_seq = entry["process_seq"]
        self.store.restore(payload["store"])
        if "views" in payload:
            self.views.restore(payload["views"])

    def _recover_and_replay(self) -> None:
        """Restore the newest checkpoint and re-offer the logged suffix.

        The crashed quantum's tuple was already polled off its queue and
        lost with the failure; clearing the queues and replaying the
        arrival log from the checkpoint offset regenerates it along with
        everything else in flight.  ``advance`` entries drain first, so
        the replayed timeline keeps the original drain-then-advance
        order.
        """
        checkpoint = self.recovery.recover()
        for unit in self._units:
            unit.queue.clear()
        replayed = 0
        for entry in self._arrival_log[checkpoint.offset:]:
            if entry[0] == "advance":
                while self.step():
                    pass
                for unit in self._units:
                    unit.advance_to(entry[1])
                self._tick_views(entry[1])
            else:
                _, stream_name, record, t = entry
                self._route(stream_name, record, t)
                replayed += 1
        self.recovery.record_replayed(replayed)

    def metrics_table(self) -> dict[str, dict[str, float]]:
        """Per-query metrics snapshot (used by the Figure 3 bench)."""
        return {h.name: h.metrics.as_dict() for h in self._handles}

    def total_state_size(self) -> int:
        """Tuples held by every *distinct* stateful operator across all
        registered queries — shared operators counted once, which is the
        fair comparison the plan-sharing benchmark makes against summing
        per-query private state."""
        seen: set[int] = set()
        total = 0
        for handle in self._handles:
            for root in handle.query.physical_roots():
                for _, op in _stateful_ops(root):
                    if id(op) not in seen:
                        seen.add(id(op))
                        total += op.state_size
        return total

    @property
    def shared_subplan_hits(self) -> int:
        """Subplan compilations the sharing memo avoided (0 when off)."""
        if self._group_handle is None:
            return 0
        return self._group_handle.group.memo.hits

    def publish_observability(self, registry=None) -> None:
        """Push the engine's state into the (global) metrics registry.

        Pull-based: per-query tuple-flow counters, per-operator executor
        counters, and component gauges are snapshotted on demand, so the
        hot path pays nothing for them.  Idempotent across calls.
        """
        registry = registry if registry is not None else obs.get_registry()
        for handle in self._handles:
            labels = {"query": handle.name}
            for field, counter in handle.metrics.counters().items():
                published = registry.counter(f"dsms.query.{field}", **labels)
                published.inc(counter.value - published.value)
            registry.gauge("dsms.query.queue_length", **labels).set(
                len(handle.queue))
            registry.gauge("dsms.query.busy_seconds", **labels).set(
                handle.busy_seconds)
            registry.gauge("dsms.query.parallelism", **labels).set(
                getattr(handle.query, "parallelism", 1))
            handle.query.publish_metrics(registry, **labels)
        # Backpressure: queue peak/occupancy/pressure per scheduling unit
        # (isolated queries and the shared group alike).
        for unit in self._units:
            labels = {"query": unit.name}
            queue = unit.queue
            registry.gauge("dsms.queue.peak_depth", **labels).set(queue.peak)
            registry.gauge("dsms.queue.occupancy", **labels).set(
                queue.occupancy)
            pressure = registry.counter("dsms.queue.pressure_events",
                                        **labels)
            pressure.inc(queue.pressure_events - pressure.value)
        if self._group_handle is not None:
            registry.gauge(
                "dsms.query.busy_seconds", query=self._group_handle.name,
            ).set(self._group_handle.busy_seconds)
        # Per-source stall detection: gap to the global arrival tick.
        stalled = self.stall_detector.stalled()
        for stream, gap in self.stall_detector.gaps().items():
            registry.gauge("dsms.source.stall_gap", stream=stream).set(gap)
            registry.gauge("dsms.source.stalled", stream=stream).set(
                1.0 if stream in stalled else 0.0)
        registry.gauge("dsms.scratch.occupancy").set(
            self.scratch.occupancy())
        registry.gauge("dsms.scratch.peak").set(self.scratch.peak)
        thrown = registry.counter("dsms.throw.discarded")
        thrown.inc(self.throw.discarded - thrown.value)
        writes = registry.counter("dsms.store.writes")
        writes.inc(self.store.writes - writes.value)
