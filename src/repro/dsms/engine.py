"""The DSMS engine: Figure 3 made executable.

Wires the four architectural components (Stream in/out, Store, Scratch,
Throw) around the incremental CQL executor, adds bounded input queues, a
pluggable scheduler and load shedding — the full anatomy of a
STREAM/TelegraphCQ-era Data Stream Management System at laptop scale.

Usage::

    dsms = DSMSEngine()
    dsms.register_stream("Obs", schema)
    handle = dsms.register_query("hot", "SELECT ISTREAM id FROM Obs [Now] "
                                         "WHERE temp > 30")
    dsms.ingest("Obs", {"id": 1, "temp": 35}, t=0)
    dsms.run_until_idle()
    handle.store_state()          # the Store's current answer
    dsms.throw.discarded          # tuples that passed through the Throw
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import repro.obs as obs
from repro.core.errors import PlanError
from repro.core.errors import TimeError as CoreTimeError
from repro.core.records import Record, Schema
from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.time import MIN_TIMESTAMP, Timestamp
from repro.cql.catalog import Catalog
from repro.cql.engine import CQLEngine
from repro.cql.executor import (
    ContinuousQuery,
    Emission,
    PhysicalOp,
    StreamSourceOp,
)
from repro.dsms.components import Scratch, Store, Throw
from repro.dsms.metrics import QueryMetrics
from repro.dsms.queues import InputQueue
from repro.dsms.scheduler import RoundRobinScheduler, Scheduler
from repro.dsms.shedding import NoShedding, Shedder


def _stateful_ops(root: PhysicalOp) -> list[tuple[str, Any]]:
    """Walk a physical tree collecting operators with state to account."""
    out: list[tuple[str, Any]] = []

    def visit(op: PhysicalOp) -> None:
        if hasattr(op, "state_size"):
            out.append((type(op).__name__, op))
        for child in op.children:
            visit(child)

    visit(root)
    return out


class QueryHandle:
    """One registered standing query inside the DSMS."""

    def __init__(self, name: str, query: ContinuousQuery,
                 queue: InputQueue, shedder: Shedder,
                 store: Store, scratch: Scratch, throw: Throw,
                 wm_clock: obs.WatermarkClock | None = None) -> None:
        self.name = name
        self.query = query
        self.queue = queue
        self.shedder = shedder
        self._store = store
        self._scratch = scratch
        self._throw = throw
        self._wm_clock = wm_clock
        self.metrics = QueryMetrics()
        self._emissions: list[Emission] = []
        self._ingest_seq = 0
        self._process_seq = 0
        store.register(name)
        for label, op in _stateful_ops(query._root):
            scratch.register(f"{name}/{label}", op)
        self._sources: list[StreamSourceOp] = [
            op for _, op in _stateful_ops(query._root)
            if isinstance(op, StreamSourceOp)]
        self._last_source_sizes = {id(op): 0 for op in self._sources}

    @property
    def pending(self) -> int:
        """Backlog size — what the scheduler looks at."""
        return len(self.queue)

    def reads_stream(self, name: str) -> bool:
        return name in self.query._stream_sources

    def offer(self, stream_name: str, record: Mapping[str, Any] | Record,
              t: Timestamp) -> bool:
        """Admission control + enqueue.  Returns False when shed/dropped."""
        self.metrics.ingested += 1
        if not self.shedder.admit(record, self.queue):
            self.metrics.shed += 1
            return False
        if not self.queue.offer((stream_name, record, self._ingest_seq), t):
            self.metrics.queue_dropped += 1
            # The policy said yes but the queue bounced the tuple: tell the
            # shedder so shed_fraction keeps reporting the true drop rate.
            self.shedder.record_queue_drop()
            return False
        self._ingest_seq += 1
        if obs._STATE.enabled:
            obs.get_registry().gauge(
                "dsms.queue.depth", query=self.name).observe(len(self.queue))
        return True

    def service_one(self) -> bool:
        """Dequeue and fully process one tuple.  Returns False when idle."""
        queued = self.queue.poll()
        if queued is None:
            return False
        if obs._STATE.enabled:
            with obs.get_tracer().span("dsms.service",
                                       query=self.name) as span:
                self._service(queued, span)
        else:
            self._service(queued, None)
        return True

    def _service(self, queued, span) -> None:
        stream_name, record, seq = queued.value
        before = self._evictions()
        emitted = self.query.push(stream_name, record, queued.timestamp)
        self._account_throw(before, queued.timestamp)
        self._emissions.extend(emitted)
        self.metrics.processed += 1
        self.metrics.emitted += len(emitted)
        self.metrics.queue_wait.observe(self._process_seq - seq)
        self._process_seq += 1
        self.metrics.scratch.observe(self._scratch.occupancy())
        if span is not None:
            span.add(records=1, emitted=len(emitted))
            obs.get_registry().histogram(
                "dsms.queue.wait", query=self.name).observe(
                    self._process_seq - 1 - seq)
            if self._wm_clock is not None:
                self._wm_clock.observe_processed(
                    stream_name, queued.timestamp)
        self._store.write(self.name, self.query.current(),
                          queued.timestamp)

    def advance_to(self, t: Timestamp) -> list[Emission]:
        """Advance event time (window expirations) with no new data."""
        before = self._evictions()
        emitted = self.query.advance_to(t)
        self._account_throw(before, t)
        self._emissions.extend(emitted)
        if self.query._log:
            self._store.write(self.name, self.query.current(), t)
        return emitted

    def _evictions(self) -> int:
        return sum(op.evicted for op in self._sources)

    def _account_throw(self, before: int, t: Timestamp) -> None:
        # Every tuple evicted from a window buffer passes through the Throw.
        for _ in range(self._evictions() - before):
            self._throw.discard(None, t)

    def emissions(self) -> list[Emission]:
        return list(self._emissions)

    def store_state(self) -> Bag:
        """The Store's current answer for this query."""
        return self._store.current(self.name)

    def store_history(self) -> TimeVaryingRelation:
        return self._store.history(self.name)


class DSMSEngine:
    """The Figure 3 Data Stream Management System."""

    def __init__(self, scheduler: Scheduler | None = None,
                 queue_capacity: int = 1024,
                 keep_thrown_tuples: bool = False,
                 kernel: bool = True) -> None:
        self._cql = CQLEngine()
        self._kernel = kernel
        self.scheduler = scheduler or RoundRobinScheduler()
        self.queue_capacity = queue_capacity
        self.store = Store()
        self.scratch = Scratch()
        self.throw = Throw(keep_tuples=keep_thrown_tuples)
        self._handles: list[QueryHandle] = []
        self._by_name: dict[str, QueryHandle] = {}
        # Event-time lag accounting, published under dsms.watermark.*.
        self.watermark_clock = obs.WatermarkClock(
            obs.get_registry(), prefix="dsms.watermark")

    @property
    def catalog(self) -> Catalog:
        return self._cql.catalog

    # -- registration ---------------------------------------------------------

    def register_stream(self, name: str, schema: Schema) -> None:
        self._cql.register_stream(name, schema)

    def register_relation(self, name: str, schema: Schema,
                          rows: Iterable[Mapping[str, Any]] = ()) -> None:
        self._cql.register_relation(name, schema, rows)

    def register_query(self, name: str, text: str,
                       shedder: Shedder | None = None,
                       queue_capacity: int | None = None) -> QueryHandle:
        """Register a standing query under ``name`` (Figure 1: issued once,
        active until cancelled)."""
        if name in self._by_name:
            raise PlanError(f"query name {name!r} already registered")
        query = self._cql.register_query(text, kernel=self._kernel)
        query.start()
        handle = QueryHandle(
            name, query,
            InputQueue(queue_capacity or self.queue_capacity),
            shedder or NoShedding(),
            self.store, self.scratch, self.throw,
            wm_clock=self.watermark_clock)
        self._handles.append(handle)
        self._by_name[name] = handle
        self.store.write(name, query.current(), 0)
        return handle

    def query(self, name: str) -> QueryHandle:
        return self._by_name[name]

    def cancel_query(self, name: str) -> QueryHandle:
        """Explicitly terminate a standing query (the other half of the
        Figure 1 contract: active *until terminated*).  Pending queue
        contents are discarded; the Store keeps the final answer."""
        handle = self._by_name.pop(name, None)
        if handle is None:
            raise PlanError(f"unknown query {name!r}")
        self._handles.remove(handle)
        return handle

    @property
    def queries(self) -> list[QueryHandle]:
        return list(self._handles)

    # -- data flow -------------------------------------------------------------

    def ingest(self, stream_name: str, record: Mapping[str, Any] | Record,
               t: Timestamp) -> int:
        """Route one arrival to every query reading ``stream_name``.

        Returns the number of queries that admitted the tuple.
        """
        self.catalog.stream(stream_name)  # validates the name
        if t < MIN_TIMESTAMP:
            # Reject here rather than letting the executor blow up
            # asynchronously at service time, after the tuple was queued.
            raise CoreTimeError(
                f"timestamp {t} before the epoch {MIN_TIMESTAMP}")
        if obs._STATE.enabled:
            self.watermark_clock.observe_arrival(stream_name, t)
        admitted = 0
        for handle in self._handles:
            if handle.reads_stream(stream_name):
                if handle.offer(stream_name, record, t):
                    admitted += 1
        return admitted

    def step(self) -> bool:
        """Run one scheduling quantum: service one tuple of one query."""
        index = self.scheduler.next_index(self._handles)
        if index is None:
            return False
        return self._handles[index].service_one()

    def run_until_idle(self, max_steps: int = 1_000_000) -> int:
        """Drain all queues; returns the number of quanta executed."""
        steps = 0
        if not obs._STATE.enabled:
            while steps < max_steps and self.step():
                steps += 1
            return steps
        with obs.get_tracer().span("dsms.run_until_idle") as span:
            while steps < max_steps and self.step():
                steps += 1
            span.add(steps=steps)
            self.publish_observability()
        return steps

    def advance_time(self, t: Timestamp) -> None:
        """Advance event time for every query (fires window expirations)."""
        for handle in self._handles:
            handle.advance_to(t)

    def metrics_table(self) -> dict[str, dict[str, float]]:
        """Per-query metrics snapshot (used by the Figure 3 bench)."""
        return {h.name: h.metrics.as_dict() for h in self._handles}

    def publish_observability(self, registry=None) -> None:
        """Push the engine's state into the (global) metrics registry.

        Pull-based: per-query tuple-flow counters, per-operator executor
        counters, and component gauges are snapshotted on demand, so the
        hot path pays nothing for them.  Idempotent across calls.
        """
        registry = registry if registry is not None else obs.get_registry()
        for handle in self._handles:
            labels = {"query": handle.name}
            for field, counter in handle.metrics.counters().items():
                published = registry.counter(f"dsms.query.{field}", **labels)
                published.inc(counter.value - published.value)
            registry.gauge("dsms.query.queue_length", **labels).set(
                len(handle.queue))
            handle.query.publish_metrics(registry, **labels)
        registry.gauge("dsms.scratch.occupancy").set(
            self.scratch.occupancy())
        registry.gauge("dsms.scratch.peak").set(self.scratch.peak)
        thrown = registry.counter("dsms.throw.discarded")
        thrown.inc(self.throw.discarded - thrown.value)
        writes = registry.counter("dsms.store.writes")
        writes.inc(self.store.writes - writes.value)
