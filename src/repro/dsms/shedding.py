"""Load shedding policies (paper Section 3.2's DSMS-era challenges).

When arrival rate exceeds service capacity a DSMS must drop tuples.  The
classic policies are *random* shedding (drop a fraction, unbiased) and
*semantic* shedding (drop the least useful tuples first, by a user-supplied
utility).  Both trigger on queue pressure.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.core.errors import StateError
from repro.dsms.queues import InputQueue


class Shedder:
    """Base policy: decide whether to admit an arrival."""

    def __init__(self) -> None:
        self.shed = 0
        self.admitted = 0
        self.queue_dropped = 0

    def admit(self, value: Any, queue: InputQueue) -> bool:
        decision = self._decide(value, queue)
        if decision:
            self.admitted += 1
        else:
            self.shed += 1
        return decision

    def record_queue_drop(self) -> None:
        """Account a tuple the policy admitted but a full queue then dropped.

        Without this, tuples lost at the queue boundary bypass ``admit`` 's
        books entirely and ``shed_fraction`` under-reports the true drop
        rate.
        """
        self.queue_dropped += 1

    def _decide(self, value: Any, queue: InputQueue) -> bool:
        raise NotImplementedError

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered tuples dropped before processing — whether by
        the policy (``shed``) or by a full queue after admission."""
        total = self.shed + self.admitted
        return (self.shed + self.queue_dropped) / total if total else 0.0


class NoShedding(Shedder):
    """Admit everything (queues still drop when full)."""

    def _decide(self, value: Any, queue: InputQueue) -> bool:
        return True


class RandomShedder(Shedder):
    """Drop arrivals with probability proportional to queue pressure.

    Below ``threshold`` occupancy everything is admitted; above it, the
    drop probability ramps linearly to 1.0 at a full queue.  Deterministic
    under a seeded RNG (all our experiments seed it).
    """

    def __init__(self, threshold: float = 0.8, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= threshold <= 1.0:
            raise StateError(f"threshold must be in [0,1], got {threshold}")
        self.threshold = threshold
        self._rng = random.Random(seed)

    def _decide(self, value: Any, queue: InputQueue) -> bool:
        occupancy = queue.occupancy
        if occupancy >= 1.0:
            # A full queue means drop probability exactly 1.0 — admitting
            # here would only bounce off the queue anyway.  Checked first so
            # the outcome is deterministic rather than relying on
            # ``random() >= 1.0`` never being true by float convention.
            return False
        if occupancy <= self.threshold:
            return True
        if self.threshold >= 1.0:
            return True
        pressure = (occupancy - self.threshold) / (1.0 - self.threshold)
        return self._rng.random() >= pressure


class SemanticShedder(Shedder):
    """Drop the least useful tuples first.

    ``utility`` maps a tuple to a score; under pressure, tuples scoring
    below ``min_utility`` are shed.  This is the "semantic drop" of the
    DSMS literature: correctness degrades gracefully on unimportant data.
    """

    def __init__(self, utility: Callable[[Any], float],
                 min_utility: float, threshold: float = 0.8) -> None:
        super().__init__()
        self._utility = utility
        self.min_utility = min_utility
        self.threshold = threshold

    def _decide(self, value: Any, queue: InputQueue) -> bool:
        if queue.occupancy <= self.threshold:
            return True
        return self._utility(value) >= self.min_utility
