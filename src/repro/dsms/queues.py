"""Bounded inter-operator queues (paper Figure 3, the arrows).

DSMS architectures place bounded queues between stream sources and query
operators; when arrival rate exceeds service rate the queue fills and the
system must shed load (Section 3.2).  :class:`InputQueue` is that bounded
buffer, with drop accounting that the load-shedding policies and the
Figure 3 benchmark read.
"""

from __future__ import annotations

from collections import deque
from typing import Any, NamedTuple

from repro.core.errors import StateError
from repro.core.time import Timestamp
from repro.obs import profile as _profile


class QueuedTuple(NamedTuple):
    """One enqueued arrival: payload + its event timestamp."""

    value: Any
    timestamp: Timestamp


class InputQueue:
    """A bounded FIFO between a stream and a query's operators.

    Beyond drop accounting the queue keeps always-on backpressure
    telemetry (a handful of integer compares per offer): ``peak`` is the
    depth high-water mark, and ``pressure_events`` counts upward crossings
    of the pressure threshold (80% occupancy by default) — the signal the
    adaptivity loop watches for sustained overload.  The crossing is
    edge-triggered: one sustained episode above the mark counts once,
    however many tuples arrive during it.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise StateError(f"queue capacity must be positive, "
                             f"got {capacity}")
        self.capacity = capacity
        self._queue: deque[QueuedTuple] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.peak = 0
        self.pressure_events = 0
        self._pressure_mark = max(1, int(capacity * _profile.PRESSURE_THRESHOLD))
        self._pressured = False

    def offer(self, value: Any, timestamp: Timestamp) -> bool:
        """Try to enqueue; returns False (and counts a drop) when full."""
        depth = len(self._queue)
        if depth >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(QueuedTuple(value, timestamp))
        self.enqueued += 1
        depth += 1
        if depth > self.peak:
            self.peak = depth
        if depth >= self._pressure_mark and not self._pressured:
            self._pressured = True
            self.pressure_events += 1
            if _profile._ENABLED:
                _profile._RECORDER.record(
                    "queue.pressure", depth=depth, capacity=self.capacity)
        return True

    def poll(self) -> QueuedTuple | None:
        """Dequeue the oldest tuple, or None when empty."""
        if not self._queue:
            return None
        if self._pressured and len(self._queue) <= self._pressure_mark:
            self._pressured = False
        return self._queue.popleft()

    def poll_batch(self, limit: int) -> list[QueuedTuple]:
        """Dequeue up to ``limit`` tuples sharing the head timestamp.

        The micro-batch drain: a batch never mixes instants (the executor
        evaluates one instant per batch), so the run stops at the first
        tuple carrying a different timestamp — or at ``limit``, whichever
        comes first.  Returns ``[]`` when empty.
        """
        queue = self._queue
        if not queue or limit <= 0:
            return []
        head_t = queue[0].timestamp
        out = [queue.popleft()]
        while queue and len(out) < limit and queue[0].timestamp == head_t:
            out.append(queue.popleft())
        if self._pressured and len(queue) <= self._pressure_mark:
            self._pressured = False
        return out

    def peek(self) -> QueuedTuple | None:
        return self._queue[0] if self._queue else None

    def clear(self) -> int:
        """Discard everything queued (recovery rollback: the arrival log
        re-offers these); returns how many tuples were dropped."""
        n = len(self._queue)
        self._queue.clear()
        return n

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1]."""
        return len(self._queue) / self.capacity

    @property
    def pressured(self) -> bool:
        """Whether the queue currently sits above the pressure mark."""
        return self._pressured

    def __repr__(self) -> str:
        return (f"InputQueue(len={len(self._queue)}/{self.capacity}, "
                f"dropped={self.dropped})")
