"""Per-query DSMS metrics, backed by the :mod:`repro.obs` primitives.

Historically this module carried its own ad-hoc counters; it is now a thin
compatibility layer over :class:`repro.obs.metrics.Counter` and
:class:`repro.obs.metrics.Gauge` so the DSMS reports through the same
machinery as every other engine layer.  The public surface is unchanged:
``Gauge.observe/count/total/mean/max`` and ``QueryMetrics.as_dict()`` keep
their exact shapes (the Figure 3 benchmark output is byte-identical), with
two upgrades inherited from the shared primitives: ``max`` is correct for
all-negative observations (it used to be pinned at ``0.0``) and ``min`` is
now reported too.

The tuple-flow tallies stay plain integer attributes — the obs design rule
is that the hot path pays one attribute add — and are materialised into
obs :class:`Counter` objects on demand by :meth:`QueryMetrics.counters`,
the same pull-based publication the engines use.
"""

from __future__ import annotations

from repro.obs.metrics import Counter as _Counter
from repro.obs.metrics import Gauge as _ObsGauge


class Gauge(_ObsGauge):
    """A running statistic: count / mean / min / max of observed values."""

    def __init__(self, name: str = "", **labels: str) -> None:
        super().__init__(name, labels)


class QueryMetrics:
    """Per-query accounting maintained by the DSMS engine.

    The tuple-flow tallies (``ingested``, ``shed``, ...) are plain ints on
    the hot path; :meth:`counters` snapshots them into obs counters for
    registry publication.
    """

    _COUNTERS = ("ingested", "shed", "queue_dropped", "processed", "emitted")

    def __init__(self) -> None:
        self.ingested = 0
        self.shed = 0
        self.queue_dropped = 0
        self.processed = 0
        self.emitted = 0
        self._counters = {field: _Counter(field) for field in self._COUNTERS}
        self.queue_wait = Gauge("queue_wait")
        self.scratch = Gauge("scratch")

    def counters(self) -> dict[str, _Counter]:
        """The tallies as obs counters, synced at call time."""
        for field, counter in self._counters.items():
            counter.value = getattr(self, field)
        return dict(self._counters)

    def as_dict(self) -> dict[str, float]:
        return {
            "ingested": self.ingested,
            "shed": self.shed,
            "queue_dropped": self.queue_dropped,
            "processed": self.processed,
            "emitted": self.emitted,
            "mean_queue_wait": self.queue_wait.mean,
            "mean_scratch": self.scratch.mean,
            "peak_scratch": self.scratch.max,
        }
