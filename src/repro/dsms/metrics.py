"""Lightweight metrics for the DSMS engine.

Counters plus a streaming mean/max — enough to report the throughput,
queueing and memory numbers the Figure 3 benchmark prints, without pulling
in a metrics library.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Gauge:
    """A running statistic: count / mean / max of observed values."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class QueryMetrics:
    """Per-query accounting maintained by the DSMS engine."""

    ingested: int = 0
    shed: int = 0
    queue_dropped: int = 0
    processed: int = 0
    emitted: int = 0
    queue_wait: Gauge = field(default_factory=Gauge)
    scratch: Gauge = field(default_factory=Gauge)

    def as_dict(self) -> dict[str, float]:
        return {
            "ingested": self.ingested,
            "shed": self.shed,
            "queue_dropped": self.queue_dropped,
            "processed": self.processed,
            "emitted": self.emitted,
            "mean_queue_wait": self.queue_wait.mean,
            "mean_scratch": self.scratch.mean,
            "peak_scratch": self.scratch.max,
        }
