"""dsl — the functional stream-processing DSL of paper Section 4.1.2.

A Flink-style DataStream API (Listing 2) compiling to the actor runtime,
pluggable keyed-state backends (heap or LSM), and the stream/table duality
model (tables, changelog streams, and the conversions between them).
"""

from repro.dsl.duality import (
    changelog_of,
    compact,
    record_stream_of,
    table_from_changelog,
    table_from_record_stream,
)
from repro.dsl.environment import (
    DataStream,
    KeyedStream,
    SessionWindowedStream,
    StreamEnvironment,
    WindowedStream,
)
from repro.dsl.operators import (
    AggregateFunction,
    AvgAggregate,
    CountAggregate,
    DictBackend,
    LSMBackend,
    ProcessOperator,
    ReduceAggregate,
    RunningReduceOperator,
    SessionAggregateOperator,
    StateBackend,
    SumAggregate,
    WindowAggregateOperator,
    WindowJoinOperator,
)
from repro.dsl.table import ChangeRecord, Table

__all__ = [
    # environment / streams
    "StreamEnvironment", "DataStream", "KeyedStream", "WindowedStream",
    "SessionWindowedStream",
    # operators & state
    "StateBackend", "DictBackend", "LSMBackend",
    "AggregateFunction", "ReduceAggregate", "CountAggregate",
    "SumAggregate", "AvgAggregate",
    "WindowAggregateOperator", "RunningReduceOperator", "ProcessOperator",
    "SessionAggregateOperator", "WindowJoinOperator",
    # duality
    "Table", "ChangeRecord", "table_from_changelog", "changelog_of",
    "table_from_record_stream", "record_stream_of", "compact",
]
