"""Stateful runtime operators backing the DSL (paper Section 4.1.2).

The DSL's windowed aggregations and running reduces compile to these
:class:`~repro.runtime.dag.StreamOperator` implementations.  Keyed state
lives in a pluggable backend — a plain dict or the LSM store of
:mod:`repro.runtime.kvstore` (the RocksDB stand-in of Figure 5); the
Figure 5 benchmark compares the two.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.errors import StateError
from repro.core.time import Timestamp
from repro.core.windows import Window, WindowAssigner
from repro.exec import OperatorContext
from repro.exec.state import DictStateBackend, LSMStateBackend, StateBackend
from repro.runtime.dag import Element, StreamOperator

# Keyed state moved into the kernel (repro.exec.state); the DSL names stay
# as aliases so programs and benchmarks keep reading naturally.
DictBackend = DictStateBackend
LSMBackend = LSMStateBackend


class AggregateFunction:
    """Flink's AggregateFunction: incremental per-window aggregation."""

    def create_accumulator(self) -> Any:
        raise NotImplementedError

    def add(self, accumulator: Any, value: Any) -> Any:
        raise NotImplementedError

    def get_result(self, accumulator: Any) -> Any:
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        """Combine two accumulators (required by merging windows)."""
        raise StateError(
            f"{type(self).__name__} does not support merging windows")


class ReduceAggregate(AggregateFunction):
    """An AggregateFunction from a binary reduce function."""

    _EMPTY = object()

    def __init__(self, fn: Callable[[Any, Any], Any]) -> None:
        self._fn = fn

    def create_accumulator(self) -> Any:
        return self._EMPTY

    def add(self, accumulator: Any, value: Any) -> Any:
        if accumulator is self._EMPTY:
            return value
        return self._fn(accumulator, value)

    def get_result(self, accumulator: Any) -> Any:
        if accumulator is self._EMPTY:
            raise StateError("reducing an empty window")
        return accumulator


class CountAggregate(AggregateFunction):
    def create_accumulator(self) -> int:
        return 0

    def add(self, accumulator: int, value: Any) -> int:
        return accumulator + 1

    def get_result(self, accumulator: int) -> int:
        return accumulator


class SumAggregate(AggregateFunction):
    def __init__(self, extract: Callable[[Any], Any] = lambda v: v) -> None:
        self._extract = extract

    def create_accumulator(self) -> Any:
        return 0

    def add(self, accumulator: Any, value: Any) -> Any:
        return accumulator + self._extract(value)

    def get_result(self, accumulator: Any) -> Any:
        return accumulator


class AvgAggregate(AggregateFunction):
    def __init__(self, extract: Callable[[Any], Any] = lambda v: v) -> None:
        self._extract = extract

    def create_accumulator(self) -> tuple[Any, int]:
        return (0, 0)

    def add(self, accumulator: tuple, value: Any) -> tuple:
        total, count = accumulator
        return (total + self._extract(value), count + 1)

    def get_result(self, accumulator: tuple) -> Any:
        total, count = accumulator
        if count == 0:
            raise StateError("averaging an empty window")
        return total / count


class WindowAggregateOperator(StreamOperator):
    """Keyed event-time window aggregation firing on the watermark.

    Per (key, window) an accumulator lives in the state backend; a timer at
    ``window.end - 1`` fires the result when the watermark passes.  Late
    elements (arriving after the window fired) open a fresh accumulator and
    fire as a *late refinement* on the next watermark advance — the
    infinite-allowed-lateness policy.
    """

    def __init__(self, assigner: WindowAssigner,
                 aggregate: AggregateFunction,
                 backend_factory: Callable[[], StateBackend] | None = None,
                 ) -> None:
        self._assigner = assigner
        self._aggregate = aggregate
        self._backend_factory = backend_factory

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self.state = (self._backend_factory or ctx.state_factory)()

    def process(self, element: Element) -> Iterable[Element]:
        for window in self._assigner.assign(element.timestamp):
            state_key = (element.key, window.start, window.end)
            accumulator = self.state.get(state_key)
            if accumulator is None:
                accumulator = self._aggregate.create_accumulator()
            self.state.put(state_key,
                           self._aggregate.add(accumulator, element.value))
            self.timers.register(window.end - 1, state_key)
        return ()

    def on_timer(self, fire_at: Timestamp, key: Any) -> Iterable[Element]:
        element_key, start, end = key
        accumulator = self.state.get(key)
        if accumulator is None:
            return
        self.state.delete(key)
        result = self._aggregate.get_result(accumulator)
        yield Element((element_key, result, Window(start, end)),
                      element_key, end - 1)

    def snapshot(self) -> Any:
        return list(self.state.items())

    def restore(self, state: Any) -> None:
        for key, value in state:
            self.state.put(key, value)

    @property
    def state_size(self) -> int:
        return sum(1 for _ in self.state.items())


class SessionAggregateOperator(StreamOperator):
    """Keyed session windows with merging (data-driven gaps).

    Per key a list of open sessions ``(start, end, accumulator)`` is kept;
    a new element opens a proto-session ``[t, t+gap)`` and merges every
    session it touches (accumulators combined via ``aggregate.merge``).
    A timer at the session's current end fires it — if the session was
    extended meanwhile, the stale timer finds nothing and the new end's
    timer takes over.
    """

    def __init__(self, gap: Timestamp, aggregate: AggregateFunction,
                 backend_factory: Callable[[], StateBackend] | None = None,
                 ) -> None:
        if gap <= 0:
            raise StateError(f"session gap must be positive, got {gap}")
        self._gap = gap
        self._aggregate = aggregate
        self._backend_factory = backend_factory

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self.state = (self._backend_factory or ctx.state_factory)()

    def process(self, element: Element) -> Iterable[Element]:
        sessions: list[tuple[Timestamp, Timestamp, Any]] = \
            self.state.get(element.key) or []
        start = element.timestamp
        end = element.timestamp + self._gap
        accumulator = self._aggregate.add(
            self._aggregate.create_accumulator(), element.value)
        merged: list[tuple[Timestamp, Timestamp, Any]] = []
        for s_start, s_end, s_acc in sessions:
            if s_start <= end and start <= s_end:  # touches the new one
                start = min(start, s_start)
                end = max(end, s_end)
                accumulator = self._aggregate.merge(s_acc, accumulator)
            else:
                merged.append((s_start, s_end, s_acc))
        merged.append((start, end, accumulator))
        self.state.put(element.key, merged)
        self.timers.register(end - 1, element.key)
        return ()

    def on_timer(self, fire_at: Timestamp, key: Any) -> Iterable[Element]:
        sessions = self.state.get(key) or []
        remaining = []
        for start, end, accumulator in sessions:
            if end - 1 <= fire_at:
                yield Element(
                    (key, self._aggregate.get_result(accumulator),
                     Window(start, end)), key, end - 1)
            else:
                remaining.append((start, end, accumulator))
        if remaining:
            self.state.put(key, remaining)
        else:
            self.state.delete(key)

    def snapshot(self) -> Any:
        return list(self.state.items())

    def restore(self, state: Any) -> None:
        for key, value in state:
            self.state.put(key, value)


class WindowJoinOperator(StreamOperator):
    """Keyed window join: pairs elements of two streams sharing key and
    window (Flink's ``a.join(b).where(...).window(...)``).

    Inputs arrive tagged ``("L", value)`` / ``("R", value)`` (the
    environment inserts the tags); per (key, window) both sides buffer
    until the watermark closes the window, then the cross product of the
    pane's sides is emitted as ``(key, combine(l, r), window)``.
    """

    def __init__(self, assigner: WindowAssigner,
                 combine: Callable[[Any, Any], Any] = lambda l, r: (l, r),
                 backend_factory: Callable[[], StateBackend] | None = None,
                 ) -> None:
        self._assigner = assigner
        self._combine = combine
        self._backend_factory = backend_factory

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self.state = (self._backend_factory or ctx.state_factory)()

    def process(self, element: Element) -> Iterable[Element]:
        side, value = element.value
        if side not in ("L", "R"):
            raise StateError(f"window join input lacks a side tag: "
                             f"{element.value!r}")
        for window in self._assigner.assign(element.timestamp):
            state_key = (element.key, window.start, window.end)
            lefts, rights = self.state.get(state_key) or ([], [])
            if side == "L":
                lefts = lefts + [value]
            else:
                rights = rights + [value]
            self.state.put(state_key, (lefts, rights))
            self.timers.register(window.end - 1, state_key)
        return ()

    def on_timer(self, fire_at: Timestamp, key: Any) -> Iterable[Element]:
        element_key, start, end = key
        pane = self.state.get(key)
        if pane is None:
            return
        self.state.delete(key)
        lefts, rights = pane
        for left in lefts:
            for right in rights:
                yield Element(
                    (element_key, self._combine(left, right),
                     Window(start, end)), element_key, end - 1)

    def snapshot(self) -> Any:
        return list(self.state.items())

    def restore(self, state: Any) -> None:
        for key, value in state:
            self.state.put(key, value)


class RunningReduceOperator(StreamOperator):
    """Kafka-Streams-style running reduce: emits the new per-key value on
    every input element (an update stream — a changelog)."""

    def __init__(self, fn: Callable[[Any, Any], Any],
                 backend_factory: Callable[[], StateBackend] | None = None,
                 ) -> None:
        self._fn = fn
        self._backend_factory = backend_factory

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self.state = (self._backend_factory or ctx.state_factory)()

    def process(self, element: Element) -> Iterable[Element]:
        _missing = object()
        current = self.state.get(element.key, _missing)
        updated = (element.value if current is _missing
                   else self._fn(current, element.value))
        self.state.put(element.key, updated)
        yield Element((element.key, updated), element.key,
                      element.timestamp)

    def snapshot(self) -> Any:
        return list(self.state.items())

    def restore(self, state: Any) -> None:
        for key, value in state:
            self.state.put(key, value)


class ProcessOperator(StreamOperator):
    """Escape hatch: a user function with access to per-key state and
    timers (the low-level API the survey says 'more complex computations'
    still need)."""

    def __init__(self, fn: Callable[["ProcessOperator", Element],
                                    Iterable[Element]],
                 backend_factory: Callable[[], StateBackend] | None = None,
                 on_timer_fn: Callable[["ProcessOperator", Timestamp, Any],
                                       Iterable[Element]] | None = None,
                 ) -> None:
        self._fn = fn
        self._on_timer_fn = on_timer_fn
        self._backend_factory = backend_factory

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self.state = (self._backend_factory or ctx.state_factory)()

    def process(self, element: Element) -> Iterable[Element]:
        return self._fn(self, element)

    def on_timer(self, fire_at: Timestamp, key: Any) -> Iterable[Element]:
        if self._on_timer_fn is None:
            return ()
        return self._on_timer_fn(self, fire_at, key)

    def snapshot(self) -> Any:
        return list(self.state.items())

    def restore(self, state: Any) -> None:
        for key, value in state:
            self.state.put(key, value)
