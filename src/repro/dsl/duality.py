"""Stream ⇄ table conversions — "two sides of the same coin".

The executable form of Sax et al.'s duality model: a changelog stream
folds into a table, a table unfolds into its changelog, a record stream
aggregates into a table, and a table's changelog re-keys into a record
stream.  The C9 benchmark and property tests pin the round-trip laws:

* ``table_from_changelog(changelog_of(T)) == T``  (table → stream → table)
* folding any prefix of a changelog gives the table as of that point.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from repro.core.stream import Stream
from repro.dsl.table import ChangeRecord, Table


def table_from_changelog(changes: Iterable[ChangeRecord]) -> Table:
    """Fold a changelog stream into a table (stream → table)."""
    table = Table()
    for change in changes:
        if change.new is None:
            table.delete(change.key, change.timestamp)
        else:
            table.upsert(change.key, change.new, change.timestamp)
    return table


def changelog_of(table: Table) -> list[ChangeRecord]:
    """Unfold a table into its changelog stream (table → stream)."""
    return table.changelog()


def table_from_record_stream(
        stream: Stream[Any],
        key_fn: Callable[[Any], Hashable],
        fold: Callable[[Any, Any], Any] | None = None,
        initial: Any = None) -> Table:
    """Aggregate a *record* stream into a table.

    Without ``fold`` the table keeps the latest record per key (an upsert
    stream); with ``fold`` each record is folded into the key's running
    state (``fold(current, record)`` starting from ``initial``) — the
    record-stream → table side of the duality.
    """
    table = Table()
    for element in stream:
        key = key_fn(element.value)
        if fold is None:
            table.upsert(key, element.value, element.timestamp)
        else:
            current = table.get(key, initial)
            table.upsert(key, fold(current, element.value),
                         element.timestamp)
    return table


def record_stream_of(table: Table) -> Stream[tuple[Hashable, Any]]:
    """The table's updates as a record stream of (key, new value) pairs
    (tombstones carry ``None``)."""
    out: Stream[tuple[Hashable, Any]] = Stream()
    for change in table.changelog():
        out.append((change.key, change.new), change.timestamp)
    return out


def compact(changes: Iterable[ChangeRecord]) -> list[ChangeRecord]:
    """Log compaction: keep only each key's final change (as Kafka does
    for changelog topics).  Folding the compacted log yields the same
    table snapshot."""
    final: dict[Hashable, ChangeRecord] = {}
    for change in changes:
        final[change.key] = change
    kept = sorted(final.values(), key=lambda c: c.timestamp)
    # Re-base each kept change so it applies cleanly to an empty table.
    out: list[ChangeRecord] = []
    for change in kept:
        if change.new is None:
            continue  # a compacted tombstone disappears entirely
        out.append(ChangeRecord(change.key, None, change.new,
                                change.timestamp))
    return out
