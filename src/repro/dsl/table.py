"""Tables and changelog streams — the stream/table duality (Section 4.1.2).

Sax et al.'s model: a **table** is the latest-value-per-key view of an
update stream; a **changelog stream** is the sequence of updates that
builds a table.  The two are dual: ``table_from_changelog`` folds a
changelog into a table, and every table remembers the changelog that built
it, so the round-trip is the identity (property-tested, and measured by
the C9 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.core.errors import StateError
from repro.core.time import Timestamp


@dataclass(frozen=True)
class ChangeRecord:
    """One changelog entry: key went from ``old`` to ``new`` at ``ts``.

    ``old is None`` ⇒ insert; ``new is None`` ⇒ delete (tombstone);
    both set ⇒ update.
    """

    key: Hashable
    old: Any
    new: Any
    timestamp: Timestamp

    @property
    def is_insert(self) -> bool:
        return self.old is None and self.new is not None

    @property
    def is_delete(self) -> bool:
        return self.new is None

    @property
    def is_update(self) -> bool:
        return self.old is not None and self.new is not None


class Table:
    """A keyed, continuously updated view (the KTable).

    Mutations go through :meth:`upsert`/:meth:`delete`, which append to the
    internal changelog; reads see the latest value per key.
    """

    def __init__(self) -> None:
        self._data: dict[Hashable, Any] = {}
        self._changelog: list[ChangeRecord] = []
        self._last_ts: Timestamp = -1

    # -- mutation -----------------------------------------------------------------

    def upsert(self, key: Hashable, value: Any,
               timestamp: Timestamp) -> ChangeRecord:
        """Insert or update; returns the change record appended."""
        if value is None:
            raise StateError("None is the tombstone; use delete()")
        self._check_time(timestamp)
        change = ChangeRecord(key, self._data.get(key), value, timestamp)
        self._data[key] = value
        self._changelog.append(change)
        return change

    def delete(self, key: Hashable, timestamp: Timestamp) -> ChangeRecord:
        """Remove a key; returns the tombstone change record."""
        if key not in self._data:
            raise StateError(f"cannot delete absent key {key!r}")
        self._check_time(timestamp)
        change = ChangeRecord(key, self._data.pop(key), None, timestamp)
        self._changelog.append(change)
        return change

    def _check_time(self, timestamp: Timestamp) -> None:
        if timestamp < self._last_ts:
            raise StateError(
                f"changelog time regressed: {timestamp} < {self._last_ts}")
        self._last_ts = timestamp

    # -- reads --------------------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> dict[Hashable, Any]:
        """The current key → value view (copies)."""
        return dict(self._data)

    def changelog(self) -> list[ChangeRecord]:
        """The full update history that built this table."""
        return list(self._changelog)

    # -- relational-ish derivations -------------------------------------------------

    def map_values(self, fn: Callable[[Any], Any]) -> "Table":
        """A new table with ``fn`` applied to every value — derived by
        replaying this table's changelog (stays a changelog-backed table)."""
        out = Table()
        for change in self._changelog:
            if change.new is None:
                out.delete(change.key, change.timestamp)
            else:
                out.upsert(change.key, fn(change.new), change.timestamp)
        return out

    def filter(self, predicate: Callable[[Any], bool]) -> "Table":
        """Keep rows whose value satisfies the predicate.  Updates that
        stop satisfying it become deletes — the subtlety that makes table
        filters stateful in Kafka Streams."""
        out = Table()
        for change in self._changelog:
            present = change.key in out
            if change.new is not None and predicate(change.new):
                out.upsert(change.key, change.new, change.timestamp)
            elif present:
                out.delete(change.key, change.timestamp)
        return out

    def group_aggregate(self, key_fn: Callable[[Hashable, Any], Hashable],
                        add: Callable[[Any, Any], Any],
                        subtract: Callable[[Any, Any], Any],
                        initial: Any) -> "Table":
        """Re-group and aggregate with retractions.

        When a row changes groups (or value), its old contribution is
        subtracted from the old group and the new one added — exactly the
        changelog-driven aggregation of streaming databases.
        """
        out = Table()
        for change in self._changelog:
            if change.old is not None:
                group = key_fn(change.key, change.old)
                current = out.get(group, initial)
                out.upsert(group, subtract(current, change.old),
                           change.timestamp)
            if change.new is not None:
                group = key_fn(change.key, change.new)
                current = out.get(group, initial)
                out.upsert(group, add(current, change.new),
                           change.timestamp)
        return out

    def join(self, other: "Table",
             combine: Callable[[Any, Any], Any] = lambda a, b: (a, b),
             ) -> dict[Hashable, Any]:
        """Primary-key table-table join of the *current* snapshots."""
        return {key: combine(value, other.get(key))
                for key, value in self._data.items() if key in other}
