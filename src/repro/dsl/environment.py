"""The functional DSL: Flink-style DataStream API (paper Listing 2).

The highest declarative layer of Figure 4 that still exposes functions:
``env.from_collection(...).filter(...).map(...).key_by(...).window(...)``.
Programs compile to a :class:`~repro.runtime.dag.JobGraph` and execute on
the actor runtime — the same layering as real streaming systems, where the
DSL is sugar over the dataflow level.

The paper's Listing 2 translates directly::

    transactions.filter(lambda t: t.amount > 100) \
                .map(lambda t: f"TID:{t.id}, Amount:{t.amount}")
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable

from repro.core.errors import PlanError
from repro.core.time import Timestamp
from repro.core.windows import WindowAssigner
from repro.dsl.operators import (
    AggregateFunction,
    CountAggregate,
    ProcessOperator,
    ReduceAggregate,
    RunningReduceOperator,
    StateBackend,
    DictBackend,
    WindowAggregateOperator,
)
from repro.runtime.dag import (
    CollectSinkOperator,
    Element,
    FilterOperator,
    FlatMapOperator,
    JobGraph,
    KeyByOperator,
    MapOperator,
    StreamOperator,
)
from repro.runtime.job import JobResult, JobRunner
from repro.runtime.partitioning import (
    ForwardPartitioner,
    HashPartitioner,
    RebalancePartitioner,
)


class StreamEnvironment:
    """Builds and executes DSL programs.

    ``parallelism`` is the default subtask count; ``state_backend`` picks
    the keyed-state store (:class:`DictBackend` or
    :class:`~repro.dsl.operators.LSMBackend`); ``chaining`` toggles the
    fusion optimisation.
    """

    def __init__(self, parallelism: int = 1,
                 state_backend: Callable[[], StateBackend] = DictBackend,
                 chaining: bool = True,
                 checkpoint_interval: int | None = None,
                 kernel: bool = True) -> None:
        if parallelism <= 0:
            raise PlanError("parallelism must be positive")
        self.parallelism = parallelism
        self.state_backend = state_backend
        self.chaining = chaining
        self.checkpoint_interval = checkpoint_interval
        self.kernel = kernel
        self.graph = JobGraph("dsl-job")
        self._counter = itertools.count()
        self._sink_labels: list[str] = []
        self._last_runner: JobRunner | None = None

    def _fresh(self, prefix: str) -> str:
        return f"{prefix}-{next(self._counter)}"

    def from_collection(self, elements: Iterable[tuple[Any, Timestamp]],
                        watermark_lag: Timestamp = 0) -> "DataStream":
        """A bounded source of (value, event-timestamp) pairs, split
        round-robin over ``parallelism`` source subtasks."""
        chunks: list[list[tuple[Any, Any, Timestamp]]] = [
            [] for _ in range(self.parallelism)]
        for i, (value, timestamp) in enumerate(elements):
            chunks[i % self.parallelism].append((value, None, timestamp))
        name = self._fresh("source")
        self.graph.add_source(name, chunks, watermark_lag=watermark_lag)
        return DataStream(self, name, keyed=False)

    def execute(self) -> JobResult:
        """Run the program; sink results are on the returned JobResult."""
        runner = JobRunner(self.graph, chaining=self.chaining,
                           checkpoint_interval=self.checkpoint_interval,
                           kernel=self.kernel)
        self._last_runner = runner
        return runner.run()

    # -- planning ----------------------------------------------------------------

    def logical_plan(self):
        """The DSL job graph lowered onto the unified logical IR.

        DSL operators wrap arbitrary user functions, so vertices lower to
        :class:`~repro.plan.ir.OpaqueOp`/``OpaqueSource`` nodes keyed by
        the monotonicity-relevant operator kind — enough for
        :mod:`repro.plan.monotone`, plan signatures and EXPLAIN without
        interpreting the payloads.
        """
        from repro.plan.ir import OpaqueOp, OpaqueSource

        graph = self.graph
        memo: dict[str, Any] = {}

        def build(name: str):
            if name in memo:
                return memo[name]
            if name in graph.sources:
                plan = OpaqueSource("stream_scan", name)
            else:
                inputs = tuple(build(edge.upstream)
                               for edge in graph.upstream_edges(name))
                plan = OpaqueOp(_vertex_kind(name), name, inputs)
            memo[name] = plan
            return plan

        upstreams = {edge.upstream for edge in graph.edges}
        roots = sorted(graph.sinks) or sorted(
            name for name in graph.vertices if name not in upstreams)
        if not roots:
            raise PlanError("empty DSL program has no logical plan")
        out = build(roots[0])
        for other in roots[1:]:
            out = OpaqueOp("union", "outputs", (out, build(other)))
        return out

    def explain(self) -> str:
        """EXPLAIN: the lowered IR tree with strategy annotations."""
        from repro.plan.explain import explain_logical
        return explain_logical(self.logical_plan())


#: DSL vertex-name prefix → unified-IR operator kind (the names
#: :mod:`repro.core.monotonicity` classifies).
_VERTEX_KINDS = {
    "source": "stream_scan",
    "map": "map",
    "filter": "filter",
    "flatmap": "flat_map",
    "rebalance": "rebalance",
    "union": "union",
    "keyby": "key_by",
    "reduce": "group_aggregate",
    "process": "process",
    "window": "group_aggregate",
    "session": "group_aggregate",
    "windowjoin": "join",
    "jointag": "map",
    "sink": "sink",
}


def _vertex_kind(name: str) -> str:
    """Map a generated vertex name (``map-3``, ``sink:out-7``) to its
    IR kind; unknown prefixes pass through (conservatively classified
    UNKNOWN by the monotonicity analysis)."""
    prefix = name.rsplit("-", 1)[0].split(":")[0].split("-")[0]
    return _VERTEX_KINDS.get(prefix, prefix)


class DataStream:
    """An unkeyed stream of values."""

    def __init__(self, env: StreamEnvironment, vertex: str,
                 keyed: bool) -> None:
        self.env = env
        self.vertex = vertex
        self.keyed = keyed

    # -- plumbing ---------------------------------------------------------------

    def _attach(self, prefix: str, factory: Callable[[], StreamOperator],
                partitioner=ForwardPartitioner,
                parallelism: int | None = None) -> str:
        name = self.env._fresh(prefix)
        self.env.graph.add_operator(
            name, factory, parallelism or self.env.parallelism)
        self.env.graph.connect(self.vertex, name, partitioner)
        return name

    # -- stateless transforms (Listing 2 surface) --------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "DataStream":
        return DataStream(self.env,
                          self._attach("map", lambda: MapOperator(fn)),
                          self.keyed)

    def filter(self, predicate: Callable[[Any], bool]) -> "DataStream":
        return DataStream(
            self.env,
            self._attach("filter", lambda: FilterOperator(predicate)),
            self.keyed)

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "DataStream":
        return DataStream(
            self.env,
            self._attach("flatmap", lambda: FlatMapOperator(fn)),
            self.keyed)

    def rebalance(self) -> "DataStream":
        """Round-robin redistribution (breaks keyedness)."""
        name = self._attach("rebalance",
                            lambda: MapOperator(lambda v: v),
                            RebalancePartitioner)
        return DataStream(self.env, name, keyed=False)

    def union(self, *others: "DataStream") -> "DataStream":
        """Merge this stream with others (same element type expected).

        The merged stream interleaves elements; watermarks combine as the
        minimum across inputs (the runtime's multi-channel rule).
        """
        name = self.env._fresh("union")
        self.env.graph.add_operator(
            name, lambda: MapOperator(lambda v: v), self.env.parallelism)
        self.env.graph.connect(self.vertex, name, RebalancePartitioner)
        for other in others:
            if other.env is not self.env:
                raise PlanError(
                    "cannot union streams from different environments")
            self.env.graph.connect(other.vertex, name,
                                   RebalancePartitioner)
        return DataStream(self.env, name, keyed=False)

    # -- keying -------------------------------------------------------------------

    def key_by(self, key_fn: Callable[[Any], Any]) -> "KeyedStream":
        name = self._attach("keyby", lambda: KeyByOperator(key_fn))
        return KeyedStream(self.env, name)

    # -- output ---------------------------------------------------------------------

    def sink(self, label: str) -> str:
        """Terminate with a collecting sink; results under ``label``."""
        name = self.env._fresh(f"sink:{label}")
        self.env.graph.add_operator(name, CollectSinkOperator,
                                    self.env.parallelism)
        self.env.graph.connect(self.vertex, name, ForwardPartitioner)
        self.env.graph.mark_sink(name)
        self.env.graph.sink_origin[name] = label
        self.env._sink_labels.append(label)
        return label


class KeyedStream:
    """A stream partitioned by key; stateful operations live here."""

    def __init__(self, env: StreamEnvironment, vertex: str) -> None:
        self.env = env
        self.vertex = vertex

    def _attach_hashed(self, prefix: str,
                       factory: Callable[[], StreamOperator]) -> str:
        name = self.env._fresh(prefix)
        self.env.graph.add_operator(name, factory, self.env.parallelism)
        self.env.graph.connect(self.vertex, name, HashPartitioner)
        return name

    def window(self, assigner: WindowAssigner) -> "WindowedStream":
        """Group this keyed stream into event-time windows."""
        return WindowedStream(self, assigner)

    def session_window(self, gap) -> "SessionWindowedStream":
        """Group into merging session windows with the given gap."""
        return SessionWindowedStream(self, gap)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> DataStream:
        """Running per-key reduce: emits (key, new_value) on every input —
        an update (changelog) stream."""
        backend = self.env.state_backend
        name = self._attach_hashed(
            "reduce", lambda: RunningReduceOperator(fn, backend))
        return DataStream(self.env, name, keyed=True)

    def process(self, fn, on_timer=None) -> DataStream:
        """Low-level keyed process function with state and timers."""
        backend = self.env.state_backend
        name = self._attach_hashed(
            "process",
            lambda: ProcessOperator(fn, backend, on_timer))
        return DataStream(self.env, name, keyed=True)

    def window_join(self, other: "KeyedStream",
                    assigner: WindowAssigner,
                    combine: Callable[[Any, Any], Any] =
                    lambda l, r: (l, r)) -> DataStream:
        """Join with another keyed stream per (key, window): elements of
        the two streams pair when they share the key and land in the same
        window (Flink's window join).  Emits (key, combine(l, r), window)
        at window close."""
        from repro.dsl.operators import WindowJoinOperator
        env = self.env
        if other.env is not env:
            raise PlanError(
                "cannot join streams from different environments")
        left_tagged = env._fresh("jointag-left")
        env.graph.add_operator(
            left_tagged, lambda: MapOperator(lambda v: ("L", v)),
            env.parallelism)
        env.graph.connect(self.vertex, left_tagged, ForwardPartitioner)
        right_tagged = env._fresh("jointag-right")
        env.graph.add_operator(
            right_tagged, lambda: MapOperator(lambda v: ("R", v)),
            env.parallelism)
        env.graph.connect(other.vertex, right_tagged, ForwardPartitioner)
        backend = env.state_backend
        name = env._fresh("windowjoin")
        env.graph.add_operator(
            name, lambda: WindowJoinOperator(assigner, combine, backend),
            env.parallelism)
        env.graph.connect(left_tagged, name, HashPartitioner)
        env.graph.connect(right_tagged, name, HashPartitioner)
        return DataStream(env, name, keyed=True)


class WindowedStream:
    """A keyed stream with a window assigner; terminates in an aggregate."""

    def __init__(self, keyed: KeyedStream, assigner: WindowAssigner) -> None:
        self.keyed = keyed
        self.assigner = assigner

    def aggregate(self, aggregate: AggregateFunction) -> DataStream:
        """Incremental aggregation; emits (key, result, window) at window
        close (watermark-driven)."""
        env = self.keyed.env
        backend = env.state_backend
        assigner = self.assigner
        name = self.keyed._attach_hashed(
            "window", lambda: WindowAggregateOperator(
                assigner, aggregate, backend))
        return DataStream(env, name, keyed=True)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> DataStream:
        return self.aggregate(ReduceAggregate(fn))

    def count(self) -> DataStream:
        return self.aggregate(CountAggregate())


class SessionWindowedStream:
    """A keyed stream grouped into merging session windows."""

    def __init__(self, keyed: KeyedStream, gap) -> None:
        self.keyed = keyed
        self.gap = gap

    def aggregate(self, aggregate: AggregateFunction) -> DataStream:
        """Requires ``aggregate.merge`` (sessions combine accumulators)."""
        from repro.dsl.operators import SessionAggregateOperator
        env = self.keyed.env
        backend = env.state_backend
        gap = self.gap
        name = self.keyed._attach_hashed(
            "session", lambda: SessionAggregateOperator(
                gap, aggregate, backend))
        return DataStream(env, name, keyed=True)
