"""Regular expressions over edge labels → finite automata.

Regular path queries (Pacaci et al.; paper Section 5.2) are evaluated by
running the query automaton in product with the graph.  This module parses
a small regex dialect over edge labels and compiles it via Thompson NFA and
subset construction into a DFA.

Dialect::

    expr   := term ("|" term)*
    term   := factor+                 -- concatenation by juxtaposition
    factor := atom ("*" | "+" | "?")*
    atom   := label | "(" expr ")"
    label  := identifier (edge label; may contain letters, digits, _)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.errors import GraphError, ParseError

EPSILON = None  # the ε transition marker


# ---------------------------------------------------------------------------
# Regex parsing
# ---------------------------------------------------------------------------


class RegexNode:
    pass


@dataclass(frozen=True)
class Label(RegexNode):
    name: str


@dataclass(frozen=True)
class Concat(RegexNode):
    parts: tuple[RegexNode, ...]


@dataclass(frozen=True)
class Alternate(RegexNode):
    options: tuple[RegexNode, ...]


@dataclass(frozen=True)
class Star(RegexNode):
    inner: RegexNode


@dataclass(frozen=True)
class Plus(RegexNode):
    inner: RegexNode


@dataclass(frozen=True)
class Optional_(RegexNode):
    inner: RegexNode


def parse_regex(text: str) -> RegexNode:
    """Parse the label-regex dialect into a syntax tree."""
    tokens = _tokenize_regex(text)
    node, position = _parse_alternation(tokens, 0)
    if position != len(tokens):
        raise ParseError(
            f"unexpected token {tokens[position]!r} in regex", position)
    return node


def _tokenize_regex(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "()|*+?":
            tokens.append(ch)
            i += 1
        elif ch.isalnum() or ch == "_":
            start = i
            while i < len(text) and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(text[start:i])
        else:
            raise ParseError(f"bad character {ch!r} in regex", i)
    if not tokens:
        raise ParseError("empty regular expression")
    return tokens


def _parse_alternation(tokens: list[str], pos: int) -> tuple[RegexNode, int]:
    options = []
    node, pos = _parse_concat(tokens, pos)
    options.append(node)
    while pos < len(tokens) and tokens[pos] == "|":
        node, pos = _parse_concat(tokens, pos + 1)
        options.append(node)
    if len(options) == 1:
        return options[0], pos
    return Alternate(tuple(options)), pos


def _parse_concat(tokens: list[str], pos: int) -> tuple[RegexNode, int]:
    parts = []
    while pos < len(tokens) and tokens[pos] not in (")", "|"):
        node, pos = _parse_factor(tokens, pos)
        parts.append(node)
    if not parts:
        raise ParseError("empty alternative in regex", pos)
    if len(parts) == 1:
        return parts[0], pos
    return Concat(tuple(parts)), pos


def _parse_factor(tokens: list[str], pos: int) -> tuple[RegexNode, int]:
    node, pos = _parse_atom(tokens, pos)
    while pos < len(tokens) and tokens[pos] in ("*", "+", "?"):
        if tokens[pos] == "*":
            node = Star(node)
        elif tokens[pos] == "+":
            node = Plus(node)
        else:
            node = Optional_(node)
        pos += 1
    return node, pos


def _parse_atom(tokens: list[str], pos: int) -> tuple[RegexNode, int]:
    if pos >= len(tokens):
        raise ParseError("unexpected end of regex", pos)
    token = tokens[pos]
    if token == "(":
        node, pos = _parse_alternation(tokens, pos + 1)
        if pos >= len(tokens) or tokens[pos] != ")":
            raise ParseError("unbalanced parenthesis in regex", pos)
        return node, pos + 1
    if token in (")", "|", "*", "+", "?"):
        raise ParseError(f"unexpected {token!r} in regex", pos)
    return Label(token), pos + 1


# ---------------------------------------------------------------------------
# Thompson construction (NFA) and subset construction (DFA)
# ---------------------------------------------------------------------------


@dataclass
class NFA:
    start: int
    accept: int
    transitions: dict[int, list[tuple[str | None, int]]] = \
        field(default_factory=dict)

    def add(self, src: int, symbol: str | None, dst: int) -> None:
        self.transitions.setdefault(src, []).append((symbol, dst))


def to_nfa(node: RegexNode) -> NFA:
    """Thompson construction."""
    counter = itertools.count()

    def fresh() -> int:
        return next(counter)

    def build(n: RegexNode) -> NFA:
        if isinstance(n, Label):
            nfa = NFA(fresh(), fresh())
            nfa.add(nfa.start, n.name, nfa.accept)
            return nfa
        if isinstance(n, Concat):
            parts = [build(p) for p in n.parts]
            merged = NFA(parts[0].start, parts[-1].accept)
            for part in parts:
                for src, edges in part.transitions.items():
                    for symbol, dst in edges:
                        merged.add(src, symbol, dst)
            for a, b in zip(parts, parts[1:]):
                merged.add(a.accept, EPSILON, b.start)
            return merged
        if isinstance(n, Alternate):
            parts = [build(p) for p in n.options]
            merged = NFA(fresh(), fresh())
            for part in parts:
                for src, edges in part.transitions.items():
                    for symbol, dst in edges:
                        merged.add(src, symbol, dst)
                merged.add(merged.start, EPSILON, part.start)
                merged.add(part.accept, EPSILON, merged.accept)
            return merged
        if isinstance(n, (Star, Plus, Optional_)):
            inner = build(n.inner)
            merged = NFA(fresh(), fresh())
            for src, edges in inner.transitions.items():
                for symbol, dst in edges:
                    merged.add(src, symbol, dst)
            merged.add(merged.start, EPSILON, inner.start)
            merged.add(inner.accept, EPSILON, merged.accept)
            if isinstance(n, (Star, Optional_)):
                merged.add(merged.start, EPSILON, merged.accept)
            if isinstance(n, (Star, Plus)):
                merged.add(inner.accept, EPSILON, inner.start)
            return merged
        raise GraphError(f"unknown regex node {n!r}")

    return build(node)


class DFA:
    """A deterministic automaton over edge labels.

    States are dense ints; ``step(state, label)`` returns the next state or
    None (dead).  State 0 is the start state.
    """

    def __init__(self, transitions: dict[int, dict[str, int]],
                 accepting: set[int], alphabet: set[str]) -> None:
        self.transitions = transitions
        self.accepting = accepting
        self.alphabet = alphabet

    @property
    def start(self) -> int:
        return 0

    @property
    def state_count(self) -> int:
        return len(self.transitions)

    def step(self, state: int, label: str) -> int | None:
        return self.transitions.get(state, {}).get(label)

    def is_accepting(self, state: int) -> bool:
        return state in self.accepting

    def accepts(self, labels: list[str]) -> bool:
        """Run the automaton over a label sequence."""
        state: int | None = self.start
        for label in labels:
            state = self.step(state, label)
            if state is None:
                return False
        return state in self.accepting


def to_dfa(nfa: NFA) -> DFA:
    """Subset construction."""

    def closure(states: frozenset[int]) -> frozenset[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for symbol, dst in nfa.transitions.get(state, ()):
                if symbol is EPSILON and dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    alphabet = {symbol for edges in nfa.transitions.values()
                for symbol, _ in edges if symbol is not EPSILON}
    start = closure(frozenset([nfa.start]))
    index = {start: 0}
    order = [start]
    transitions: dict[int, dict[str, int]] = {0: {}}
    position = 0
    while position < len(order):
        current = order[position]
        current_id = index[current]
        for symbol in alphabet:
            targets = frozenset(
                dst for state in current
                for sym, dst in nfa.transitions.get(state, ())
                if sym == symbol)
            if not targets:
                continue
            target = closure(targets)
            if target not in index:
                index[target] = len(order)
                order.append(target)
                transitions[index[target]] = {}
            transitions[current_id][symbol] = index[target]
        position += 1
    accepting = {i for states, i in index.items() if nfa.accept in states}
    return DFA(transitions, accepting, alphabet)


def compile_regex(text: str) -> DFA:
    """Parse + Thompson + subset construction in one call."""
    return to_dfa(to_nfa(parse_regex(text)))
