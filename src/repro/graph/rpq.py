"""Regular path queries on static and streaming graphs (Section 5.2).

Pacaci, Bonifati & Özsu evaluate RPQs on streaming graphs by maintaining
reachability in the *product graph* (graph × query automaton).  We provide:

* :func:`evaluate_rpq` — the snapshot algorithm: BFS in the product graph
  from every source vertex; arbitrary path semantics.
* :class:`IncrementalRPQ` — the streaming algorithm: on edge insertion,
  only newly reachable product-graph nodes are expanded, so the answer set
  is maintained without recomputation (the C7 benchmark measures the gap).
* :func:`evaluate_rpq_simple` — simple-path semantics (no repeated
  vertices), the stricter semantics the survey contrasts with arbitrary
  paths; exponential in the worst case, which is rather the point.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graph.automaton import DFA, compile_regex
from repro.graph.property_graph import NodeId, PropertyGraph

#: An RPQ answer: (source vertex, target vertex).
Answer = tuple[NodeId, NodeId]


def evaluate_rpq(graph: PropertyGraph, query: DFA | str,
                 sources: Iterable[NodeId] | None = None) -> set[Answer]:
    """Snapshot RPQ under arbitrary path semantics.

    BFS over the product graph (vertex, automaton state), started from
    every source vertex in its start state.  Returns all (x, y) pairs such
    that some path from x to y spells a word the query accepts.
    """
    dfa = compile_regex(query) if isinstance(query, str) else query
    answers: set[Answer] = set()
    source_list = list(sources) if sources is not None \
        else [n.id for n in graph.nodes()]
    for source in source_list:
        if not graph.has_node(source):
            continue
        seen = {(source, dfa.start)}
        queue = deque([(source, dfa.start)])
        while queue:
            vertex, state = queue.popleft()
            if dfa.is_accepting(state):
                answers.add((source, vertex))
            for edge in graph.out_edges(vertex):
                next_state = dfa.step(state, edge.label)
                if next_state is None:
                    continue
                node = (edge.dst, next_state)
                if node not in seen:
                    seen.add(node)
                    queue.append(node)
    return answers


def evaluate_rpq_simple(graph: PropertyGraph, query: DFA | str,
                        sources: Iterable[NodeId] | None = None,
                        ) -> set[Answer]:
    """Snapshot RPQ under **simple path** semantics: the witnessing path
    may not repeat a vertex.  DFS with a path-local visited set."""
    dfa = compile_regex(query) if isinstance(query, str) else query
    answers: set[Answer] = set()
    source_list = list(sources) if sources is not None \
        else [n.id for n in graph.nodes()]

    def explore(source: NodeId, vertex: NodeId, state: int,
                on_path: set[NodeId]) -> None:
        if dfa.is_accepting(state):
            answers.add((source, vertex))
        for edge in graph.out_edges(vertex):
            next_state = dfa.step(state, edge.label)
            if next_state is None or edge.dst in on_path:
                continue
            on_path.add(edge.dst)
            explore(source, edge.dst, next_state, on_path)
            on_path.discard(edge.dst)

    for source in source_list:
        if graph.has_node(source):
            explore(source, source, dfa.start, {source})
    return answers


class IncrementalRPQ:
    """Streaming RPQ: answers maintained under edge insertions.

    State: ``reached[x]`` is the set of product-graph nodes (v, q)
    reachable from source x; implicitly every vertex is a source in the
    start state.  On ``insert(u, label, w)``, for every source that had
    reached (u, q) with a transition on ``label``, the product BFS resumes
    from (w, δ(q, label)) — touching only the *newly* reachable region.

    ``work`` counts product-graph expansions, comparable with the snapshot
    algorithm's full BFS cost (the C7 benchmark's yardstick).
    """

    def __init__(self, query: DFA | str) -> None:
        self.dfa = compile_regex(query) if isinstance(query, str) else query
        self.graph = PropertyGraph()
        # source -> set of (vertex, state) reached.
        self._reached: dict[NodeId, set[tuple[NodeId, int]]] = {}
        self._answers: set[Answer] = set()
        self._edge_counter = 0
        self.work = 0

    def answers(self) -> set[Answer]:
        """The current answer set (never recomputed, only grown)."""
        return set(self._answers)

    def add_node(self, node_id: NodeId) -> None:
        self.graph.add_node(node_id)
        self._ensure_source(node_id)

    def _ensure_source(self, node_id: NodeId) -> None:
        if node_id not in self._reached:
            start = {(node_id, self.dfa.start)}
            self._reached[node_id] = start
            if self.dfa.is_accepting(self.dfa.start):
                self._answers.add((node_id, node_id))

    def insert(self, src: NodeId, label: str, dst: NodeId) -> set[Answer]:
        """Insert an edge; returns the answers it *newly* produced."""
        self._edge_counter += 1
        self.graph.add_edge(f"e{self._edge_counter}", src, dst, label)
        self._ensure_source(src)
        self._ensure_source(dst)
        new_answers: set[Answer] = set()
        for source, reached in self._reached.items():
            frontier = deque()
            for vertex, state in list(reached):
                if vertex != src:
                    continue
                next_state = self.dfa.step(state, label)
                if next_state is None:
                    continue
                node = (dst, next_state)
                if node not in reached:
                    reached.add(node)
                    frontier.append(node)
            # Resume the product BFS from the newly reachable nodes only.
            while frontier:
                vertex, state = frontier.popleft()
                self.work += 1
                if self.dfa.is_accepting(state):
                    answer = (source, vertex)
                    if answer not in self._answers:
                        self._answers.add(answer)
                        new_answers.add(answer)
                for edge in self.graph.out_edges(vertex):
                    next_state = self.dfa.step(state, edge.label)
                    if next_state is None:
                        continue
                    node = (edge.dst, next_state)
                    if node not in reached:
                        reached.add(node)
                        frontier.append(node)
        return new_answers

    @property
    def state_size(self) -> int:
        """Total product-graph nodes materialised."""
        return sum(len(r) for r in self._reached.values())


class WindowedRPQ:
    """RPQ over a sliding window of edges (Pacaci's streaming setting).

    Insertions are handled incrementally; expirations (edges falling out of
    the window) force a rebuild of the reachability state, since arbitrary
    deletions can invalidate answers — the documented asymmetry of
    insert-optimised streaming RPQ.  ``advance(t)`` expires edges older
    than ``t - window``.
    """

    def __init__(self, query: DFA | str, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.query = query
        self.window = window
        self._engine = IncrementalRPQ(query)
        self._log: deque[tuple[int, NodeId, str, NodeId]] = deque()
        self.rebuilds = 0

    def insert(self, src: NodeId, label: str, dst: NodeId,
               timestamp: int) -> set[Answer]:
        self.advance(timestamp)
        self._log.append((timestamp, src, label, dst))
        return self._engine.insert(src, label, dst)

    def advance(self, timestamp: int) -> bool:
        """Expire edges with ``ts <= timestamp - window``; returns True
        when a rebuild happened."""
        horizon = timestamp - self.window
        if not self._log or self._log[0][0] > horizon:
            return False
        while self._log and self._log[0][0] <= horizon:
            self._log.popleft()
        self._engine = IncrementalRPQ(self.query)
        for _, src, label, dst in self._log:
            self._engine.insert(src, label, dst)
        self.rebuilds += 1
        return True

    def answers(self) -> set[Answer]:
        return self._engine.answers()

    @property
    def live_edges(self) -> int:
        return len(self._log)
