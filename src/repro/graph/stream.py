"""Graph streams: timestamped edge events over a property graph.

The survey distinguishes *streaming graphs* (the graph is revealed edge by
edge) from *graph streams* (explicit insert/delete events).  Both are
covered: :class:`GraphStream` is an ordered event log, and
:class:`WindowedGraphView` maintains the property graph induced by a
sliding window over it (insertions enter, expired edges leave).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.core.errors import GraphError, TimeError
from repro.core.time import Timestamp
from repro.graph.property_graph import NodeId, PropertyGraph


class GraphEventKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class GraphEvent:
    """One timestamped edge event."""

    kind: GraphEventKind
    edge_id: Hashable
    src: NodeId
    dst: NodeId
    label: str
    timestamp: Timestamp


class GraphStream:
    """An append-only, timestamp-ordered log of edge events."""

    def __init__(self) -> None:
        self._events: list[GraphEvent] = []

    def insert(self, edge_id: Hashable, src: NodeId, dst: NodeId,
               label: str, timestamp: Timestamp) -> GraphEvent:
        return self._append(GraphEvent(
            GraphEventKind.INSERT, edge_id, src, dst, label, timestamp))

    def delete(self, edge_id: Hashable, src: NodeId, dst: NodeId,
               label: str, timestamp: Timestamp) -> GraphEvent:
        return self._append(GraphEvent(
            GraphEventKind.DELETE, edge_id, src, dst, label, timestamp))

    def _append(self, event: GraphEvent) -> GraphEvent:
        if self._events and event.timestamp < self._events[-1].timestamp:
            raise TimeError("graph stream events must be time-ordered")
        self._events.append(event)
        return event

    def __iter__(self) -> Iterator[GraphEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def up_to(self, t: Timestamp) -> list[GraphEvent]:
        return [e for e in self._events if e.timestamp <= t]

    def snapshot_at(self, t: Timestamp) -> PropertyGraph:
        """The graph induced by applying all events up to ``t``."""
        graph = PropertyGraph()
        for event in self.up_to(t):
            if event.kind is GraphEventKind.INSERT:
                graph.add_edge(event.edge_id, event.src, event.dst,
                               event.label)
            else:
                if graph.has_edge(event.edge_id):
                    graph.remove_edge(event.edge_id)
                else:
                    raise GraphError(
                        f"delete of unknown edge {event.edge_id!r}")
        return graph


class WindowedGraphView:
    """The property graph induced by a sliding window over insertions.

    Feed events with :meth:`observe`; the view keeps edges whose timestamp
    is within ``window`` of the latest observed time.  Expired edge ids are
    returned so downstream query engines can react.
    """

    def __init__(self, window: Timestamp) -> None:
        if window <= 0:
            raise GraphError(f"window must be positive, got {window}")
        self.window = window
        self.graph = PropertyGraph()
        self._live: list[tuple[Timestamp, Hashable]] = []
        self._clock: Timestamp = -1

    def observe(self, edge_id: Hashable, src: NodeId, dst: NodeId,
                label: str, timestamp: Timestamp) -> list[Hashable]:
        """Insert an edge; returns the edge ids expired by time advance."""
        if timestamp < self._clock:
            raise TimeError("windowed view requires time-ordered input")
        self._clock = timestamp
        expired = self._expire()
        self.graph.add_edge(edge_id, src, dst, label)
        self._live.append((timestamp, edge_id))
        return expired

    def advance(self, timestamp: Timestamp) -> list[Hashable]:
        """Advance time without a new edge; returns expired edge ids."""
        if timestamp < self._clock:
            raise TimeError("windowed view requires time-ordered input")
        self._clock = timestamp
        return self._expire()

    def _expire(self) -> list[Hashable]:
        horizon = self._clock - self.window
        expired: list[Hashable] = []
        keep_from = 0
        for timestamp, edge_id in self._live:
            if timestamp <= horizon:
                self.graph.remove_edge(edge_id)
                expired.append(edge_id)
                keep_from += 1
            else:
                break
        self._live = self._live[keep_from:]
        return expired

    @property
    def live_edge_count(self) -> int:
        return len(self._live)
