"""Property graphs (paper Section 5.2).

The property graph data model the survey highlights: nodes and edges carry
*labels* and *property maps*.  The implementation favours the access paths
streaming graph queries need — adjacency by (vertex, edge label) in both
directions — and supports deletion, which windowed graph streams require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from repro.core.errors import GraphError

NodeId = Hashable
EdgeId = Hashable


@dataclass
class Node:
    """A vertex: id, labels, properties."""

    id: NodeId
    labels: frozenset[str] = frozenset()
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass
class Edge:
    """A directed, labelled edge with properties."""

    id: EdgeId
    src: NodeId
    dst: NodeId
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    def endpoints(self) -> tuple[NodeId, NodeId]:
        return (self.src, self.dst)


class PropertyGraph:
    """A mutable directed property graph with label-indexed adjacency."""

    def __init__(self) -> None:
        self._nodes: dict[NodeId, Node] = {}
        self._edges: dict[EdgeId, Edge] = {}
        # (node, label) -> {edge ids}; label None bucket holds all.
        self._out: dict[NodeId, dict[str, set[EdgeId]]] = {}
        self._in: dict[NodeId, dict[str, set[EdgeId]]] = {}

    # -- nodes -------------------------------------------------------------------

    def add_node(self, node_id: NodeId, labels: Iterator[str] | None = None,
                 **properties: Any) -> Node:
        """Add (or return the existing) node."""
        node = self._nodes.get(node_id)
        if node is None:
            node = Node(node_id, frozenset(labels or ()), dict(properties))
            self._nodes[node_id] = node
            self._out[node_id] = {}
            self._in[node_id] = {}
        else:
            if labels:
                node.labels = node.labels | frozenset(labels)
            node.properties.update(properties)
        return node

    def node(self, node_id: NodeId) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node and all incident edges."""
        self.node(node_id)
        incident = [e for buckets in (self._out[node_id], self._in[node_id])
                    for ids in buckets.values() for e in ids]
        for edge_id in set(incident):
            self.remove_edge(edge_id)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]

    # -- edges -------------------------------------------------------------------

    def add_edge(self, edge_id: EdgeId, src: NodeId, dst: NodeId,
                 label: str, **properties: Any) -> Edge:
        if edge_id in self._edges:
            raise GraphError(f"edge {edge_id!r} already exists")
        self.add_node(src)
        self.add_node(dst)
        edge = Edge(edge_id, src, dst, label, dict(properties))
        self._edges[edge_id] = edge
        self._out[src].setdefault(label, set()).add(edge_id)
        self._in[dst].setdefault(label, set()).add(edge_id)
        return edge

    def edge(self, edge_id: EdgeId) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"unknown edge {edge_id!r}") from None

    def has_edge(self, edge_id: EdgeId) -> bool:
        return edge_id in self._edges

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def remove_edge(self, edge_id: EdgeId) -> Edge:
        edge = self.edge(edge_id)
        self._out[edge.src][edge.label].discard(edge_id)
        if not self._out[edge.src][edge.label]:
            del self._out[edge.src][edge.label]
        self._in[edge.dst][edge.label].discard(edge_id)
        if not self._in[edge.dst][edge.label]:
            del self._in[edge.dst][edge.label]
        del self._edges[edge_id]
        return edge

    # -- traversal -----------------------------------------------------------------

    def out_edges(self, node_id: NodeId,
                  label: str | None = None) -> list[Edge]:
        buckets = self._out.get(node_id, {})
        if label is not None:
            return [self._edges[e] for e in buckets.get(label, ())]
        return [self._edges[e] for ids in buckets.values() for e in ids]

    def in_edges(self, node_id: NodeId,
                 label: str | None = None) -> list[Edge]:
        buckets = self._in.get(node_id, {})
        if label is not None:
            return [self._edges[e] for e in buckets.get(label, ())]
        return [self._edges[e] for ids in buckets.values() for e in ids]

    def successors(self, node_id: NodeId,
                   label: str | None = None) -> list[NodeId]:
        return [e.dst for e in self.out_edges(node_id, label)]

    def predecessors(self, node_id: NodeId,
                     label: str | None = None) -> list[NodeId]:
        return [e.src for e in self.in_edges(node_id, label)]

    def labels(self) -> set[str]:
        """All edge labels present."""
        return {e.label for e in self._edges.values()}

    def nodes_with_label(self, label: str) -> list[Node]:
        return [n for n in self._nodes.values() if label in n.labels]
