"""Continuous subgraph pattern matching (paper Section 5.2).

The complement to path queries: conjunctive patterns ("find every new
triangle / fan / chain") evaluated *continuously* — each inserted edge is
bound to every pattern edge it can match and the remaining pattern is
completed against the current graph, so only *new* matches are reported.
This is the incremental strategy systems like Quine and MemGraph apply to
standing graph queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import GraphError
from repro.graph.property_graph import NodeId, PropertyGraph

#: A pattern variable (node placeholder).
Variable = str


@dataclass(frozen=True)
class PatternEdge:
    """One edge of a pattern: ``(src_var) -[label]-> (dst_var)``."""

    src: Variable
    dst: Variable
    label: str


class Pattern:
    """A conjunctive subgraph pattern over node variables.

    Matches are *injective* on variables (no two variables bind the same
    node — isomorphism semantics, the openCypher default for MATCH over
    distinct relationship variables).
    """

    def __init__(self, edges: list[PatternEdge]) -> None:
        if not edges:
            raise GraphError("pattern needs at least one edge")
        self.edges = list(edges)
        self.variables = sorted(
            {e.src for e in edges} | {e.dst for e in edges})

    @classmethod
    def parse(cls, text: str) -> "Pattern":
        """Parse ``a -knows-> b, b -knows-> c`` style pattern text."""
        edges = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            try:
                left, rest = chunk.split("-", 1)
                label, right = rest.rsplit("->", 1)
            except ValueError:
                raise GraphError(f"bad pattern edge {chunk!r}") from None
            edges.append(PatternEdge(left.strip(), right.strip(),
                                     label.strip()))
        return cls(edges)

    def __len__(self) -> int:
        return len(self.edges)


Match = dict[Variable, NodeId]


def find_matches(graph: PropertyGraph, pattern: Pattern) -> list[Match]:
    """All matches of ``pattern`` in ``graph`` (backtracking search)."""
    out: list[Match] = []
    _extend(graph, pattern, 0, {}, out)
    return out


def _extend(graph: PropertyGraph, pattern: Pattern, index: int,
            binding: Match, out: list[Match]) -> None:
    if index == len(pattern.edges):
        out.append(dict(binding))
        return
    edge = pattern.edges[index]
    src_bound = binding.get(edge.src)
    dst_bound = binding.get(edge.dst)
    candidates: Iterator = iter(())
    if src_bound is not None:
        candidates = iter(graph.out_edges(src_bound, edge.label))
    elif dst_bound is not None:
        candidates = iter(graph.in_edges(dst_bound, edge.label))
    else:
        candidates = (e for e in graph.edges() if e.label == edge.label)
    for graph_edge in candidates:
        if src_bound is not None and graph_edge.src != src_bound:
            continue
        if dst_bound is not None and graph_edge.dst != dst_bound:
            continue
        additions: list[tuple[Variable, NodeId]] = []
        ok = True
        for variable, node in ((edge.src, graph_edge.src),
                               (edge.dst, graph_edge.dst)):
            if variable in binding:
                if binding[variable] != node:
                    ok = False
                    break
            elif node in binding.values() or \
                    any(n == node for _, n in additions):
                ok = False  # injectivity
                break
            else:
                additions.append((variable, node))
        if not ok:
            continue
        for variable, node in additions:
            binding[variable] = node
        _extend(graph, pattern, index + 1, binding, out)
        for variable, _ in additions:
            del binding[variable]


class ContinuousPatternQuery:
    """A standing subgraph query: emits only the matches each new edge
    completes.

    On ``insert``, the new edge is bound to every compatible pattern edge
    and the rest of the pattern is matched against the current graph —
    every result necessarily *uses* the new edge, so results across calls
    are exactly the new matches.  ``work`` counts partial-match extensions,
    the metric the C7 bench reports alongside RPQ.
    """

    def __init__(self, pattern: Pattern | str) -> None:
        self.pattern = (Pattern.parse(pattern)
                        if isinstance(pattern, str) else pattern)
        self.graph = PropertyGraph()
        self._matches: set[tuple] = set()
        self._edge_counter = 0
        self.work = 0

    def matches(self) -> list[Match]:
        return [dict(zip(self.pattern.variables, values))
                for values in sorted(self._matches, key=repr)]

    def insert(self, src: NodeId, dst: NodeId, label: str) -> list[Match]:
        """Insert an edge; returns the matches it completed."""
        self._edge_counter += 1
        self.graph.add_edge(f"p{self._edge_counter}", src, dst, label)
        new: list[Match] = []
        for anchor_index, pattern_edge in enumerate(self.pattern.edges):
            if pattern_edge.label != label:
                continue
            binding: Match = {}
            if pattern_edge.src == pattern_edge.dst:
                if src != dst:
                    continue
                binding[pattern_edge.src] = src
            else:
                if src == dst:
                    continue  # injectivity cannot hold
                binding[pattern_edge.src] = src
                binding[pattern_edge.dst] = dst
            remaining = [e for i, e in enumerate(self.pattern.edges)
                         if i != anchor_index]
            partial = Pattern(remaining) if remaining else None
            completions: list[Match] = []
            if partial is None:
                completions = [dict(binding)]
            else:
                self._complete(partial, 0, binding, completions)
            for completion in completions:
                key = tuple(completion[v] for v in self.pattern.variables)
                if key not in self._matches:
                    self._matches.add(key)
                    new.append(dict(completion))
        return new

    def _complete(self, partial: Pattern, index: int, binding: Match,
                  out: list[Match]) -> None:
        self.work += 1
        if index == len(partial.edges):
            out.append(dict(binding))
            return
        edge = partial.edges[index]
        src_bound = binding.get(edge.src)
        dst_bound = binding.get(edge.dst)
        if src_bound is not None:
            candidates = graph_edges = self.graph.out_edges(
                src_bound, edge.label)
        elif dst_bound is not None:
            candidates = self.graph.in_edges(dst_bound, edge.label)
        else:
            candidates = [e for e in self.graph.edges()
                          if e.label == edge.label]
        for graph_edge in candidates:
            if src_bound is not None and graph_edge.src != src_bound:
                continue
            if dst_bound is not None and graph_edge.dst != dst_bound:
                continue
            additions = []
            ok = True
            for variable, node in ((edge.src, graph_edge.src),
                                   (edge.dst, graph_edge.dst)):
                if variable in binding:
                    if binding[variable] != node:
                        ok = False
                        break
                elif node in binding.values() or \
                        any(n == node for _, n in additions):
                    ok = False
                    break
                else:
                    additions.append((variable, node))
            if not ok:
                continue
            for variable, node in additions:
                binding[variable] = node
            self._complete(partial, index + 1, binding, out)
            for variable, _ in additions:
                del binding[variable]
