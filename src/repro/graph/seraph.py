"""Continuous Cypher queries over property graph streams (Section 5.2).

Rost et al.'s Seraph extends openCypher with continuous semantics: a
standing ``MATCH ... WHERE ... RETURN`` whose results are emitted as the
arriving edges complete them.  This module implements that shape for a
compact openCypher subset::

    MATCH (a)-[:follows]->(b), (b)-[:follows]->(c)
    WHERE a.city = 'lyon' AND c.age > 30
    RETURN a, c

:class:`ContinuousCypher` registers the query once; :meth:`insert` feeds
edges and returns only the matches the new edge completed (Seraph's
*new-results* emission), with WHERE predicates evaluated over node
properties at match time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ParseError
from repro.graph.property_graph import NodeId
from repro.graph.subgraph import ContinuousPatternQuery, Pattern, PatternEdge

_EDGE_RE = re.compile(
    r"\(\s*(?P<src>\w+)\s*\)\s*-\s*\[\s*:\s*(?P<label>\w+)\s*\]\s*->"
    r"\s*\(\s*(?P<dst>\w+)\s*\)")
_CONDITION_RE = re.compile(
    r"(?P<var>\w+)\.(?P<prop>\w+)\s*(?P<op>=|<>|<=|>=|<|>)\s*"
    r"(?P<value>'[^']*'|-?\d+(?:\.\d+)?)")

_OPERATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class PropertyCondition:
    """One WHERE conjunct: ``var.prop op literal``."""

    variable: str
    prop: str
    op: str
    value: Any

    def holds(self, properties: dict[str, Any]) -> bool:
        actual = properties.get(self.prop)
        if actual is None:
            return False
        try:
            return _OPERATORS[self.op](actual, self.value)
        except TypeError:
            return False


@dataclass(frozen=True)
class CypherQuery:
    """A parsed continuous Cypher query."""

    pattern: Pattern
    conditions: tuple[PropertyCondition, ...]
    returns: tuple[str, ...]


def parse_cypher(text: str) -> CypherQuery:
    """Parse the MATCH/WHERE/RETURN subset.

    Raises:
        ParseError: on missing clauses, unknown variables, or syntax the
            subset does not cover.
    """
    source = text.strip()
    match_match = re.search(r"\bMATCH\b(.*?)(?=\bWHERE\b|\bRETURN\b)",
                            source, re.IGNORECASE | re.DOTALL)
    if match_match is None:
        raise ParseError("continuous Cypher needs MATCH ... RETURN")
    where_match = re.search(r"\bWHERE\b(.*?)(?=\bRETURN\b)", source,
                            re.IGNORECASE | re.DOTALL)
    return_match = re.search(r"\bRETURN\b(.*)$", source,
                             re.IGNORECASE | re.DOTALL)
    if return_match is None:
        raise ParseError("continuous Cypher needs a RETURN clause")

    edges = []
    consumed = 0
    for edge in _EDGE_RE.finditer(match_match.group(1)):
        edges.append(PatternEdge(edge.group("src"), edge.group("dst"),
                                 edge.group("label")))
        consumed += 1
    if not edges:
        raise ParseError("MATCH clause contains no relationship patterns")
    pattern = Pattern(edges)

    conditions: list[PropertyCondition] = []
    if where_match is not None:
        where_text = where_match.group(1)
        for chunk in re.split(r"\bAND\b", where_text,
                              flags=re.IGNORECASE):
            chunk = chunk.strip()
            if not chunk:
                continue
            condition = _CONDITION_RE.fullmatch(chunk)
            if condition is None:
                raise ParseError(
                    f"unsupported WHERE conjunct {chunk!r} (subset "
                    f"supports var.prop OP literal)")
            raw = condition.group("value")
            value: Any = raw[1:-1] if raw.startswith("'") else (
                float(raw) if "." in raw else int(raw))
            variable = condition.group("var")
            if variable not in pattern.variables:
                raise ParseError(
                    f"WHERE references unbound variable {variable!r}")
            conditions.append(PropertyCondition(
                variable, condition.group("prop"),
                condition.group("op"), value))

    returns = tuple(v.strip() for v in
                    return_match.group(1).split(",") if v.strip())
    for variable in returns:
        if variable not in pattern.variables:
            raise ParseError(
                f"RETURN references unbound variable {variable!r}")
    if not returns:
        raise ParseError("RETURN clause is empty")
    return CypherQuery(pattern, tuple(conditions), returns)


class ContinuousCypher:
    """A standing continuous Cypher query over a property graph stream.

    Node properties arrive via :meth:`set_node` (they may arrive before or
    after the edges that bind the node); edges via :meth:`insert`, which
    returns the *new* projected results the edge completed.  Matches whose
    WHERE became satisfiable only after a later property update are
    re-checked via :meth:`refresh_pending`.
    """

    def __init__(self, query: CypherQuery | str) -> None:
        self.query = parse_cypher(query) if isinstance(query, str) \
            else query
        self._matcher = ContinuousPatternQuery(self.query.pattern)
        self._properties: dict[NodeId, dict[str, Any]] = {}
        #: Matches that structurally exist but fail WHERE (may revive).
        self._pending: list[dict[str, NodeId]] = []
        self._emitted: set[tuple] = set()

    def set_node(self, node_id: NodeId, **properties: Any) -> list[dict]:
        """Set/update node properties; returns matches this unblocked."""
        self._properties.setdefault(node_id, {}).update(properties)
        return self.refresh_pending()

    def insert(self, src: NodeId, dst: NodeId,
               label: str) -> list[dict[str, Any]]:
        """Feed one edge; returns newly completed, WHERE-satisfying
        results projected onto the RETURN variables."""
        out: list[dict[str, Any]] = []
        for binding in self._matcher.insert(src, dst, label):
            if self._satisfies(binding):
                out.append(self._project_and_mark(binding))
            else:
                self._pending.append(binding)
        return [r for r in out if r is not None]

    def refresh_pending(self) -> list[dict[str, Any]]:
        """Re-check WHERE on structurally complete but blocked matches."""
        out: list[dict[str, Any]] = []
        still_pending = []
        for binding in self._pending:
            if self._satisfies(binding):
                projected = self._project_and_mark(binding)
                if projected is not None:
                    out.append(projected)
            else:
                still_pending.append(binding)
        self._pending = still_pending
        return out

    def _satisfies(self, binding: dict[str, NodeId]) -> bool:
        for condition in self.query.conditions:
            node = binding[condition.variable]
            if not condition.holds(self._properties.get(node, {})):
                return False
        return True

    def _project_and_mark(self, binding: dict[str, NodeId],
                          ) -> dict[str, Any] | None:
        key = tuple(binding[v] for v in self.query.pattern.variables)
        if key in self._emitted:
            return None
        self._emitted.add(key)
        return {v: binding[v] for v in self.query.returns}

    @property
    def results_emitted(self) -> int:
        return len(self._emitted)

    @property
    def pending_count(self) -> int:
        return len(self._pending)
