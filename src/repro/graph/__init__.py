"""graph — streaming property graphs and continuous graph queries
(paper Section 5.2).

Property graph model, graph streams with windowed views, regular path
queries (snapshot, incremental-streaming, simple-path semantics), and
continuous subgraph pattern matching.
"""

from repro.graph.automaton import (
    DFA,
    NFA,
    compile_regex,
    parse_regex,
    to_dfa,
    to_nfa,
)
from repro.graph.property_graph import Edge, Node, PropertyGraph
from repro.graph.rpq import (
    IncrementalRPQ,
    WindowedRPQ,
    evaluate_rpq,
    evaluate_rpq_simple,
)
from repro.graph.stream import (
    GraphEvent,
    GraphEventKind,
    GraphStream,
    WindowedGraphView,
)
from repro.graph.seraph import (
    ContinuousCypher,
    CypherQuery,
    PropertyCondition,
    parse_cypher,
)
from repro.graph.subgraph import (
    ContinuousPatternQuery,
    Pattern,
    PatternEdge,
    find_matches,
)

__all__ = [
    "PropertyGraph", "Node", "Edge",
    "GraphStream", "GraphEvent", "GraphEventKind", "WindowedGraphView",
    "parse_regex", "to_nfa", "to_dfa", "compile_regex", "NFA", "DFA",
    "evaluate_rpq", "evaluate_rpq_simple", "IncrementalRPQ", "WindowedRPQ",
    "Pattern", "PatternEdge", "find_matches", "ContinuousPatternQuery",
    "ContinuousCypher", "CypherQuery", "PropertyCondition", "parse_cypher",
]
