"""Window operators (paper Definition 2.4 and Section 4.1.3).

Definition 2.4 models a window as a function from evaluation time to a time
interval.  The survey distinguishes time-based windows (tumbling, sliding /
hopping, session, landmark) from tuple-based (count) and partitioned windows
(CQL's ``[Partition By k Rows n]``).  We implement them all:

* Time-based assigners implement two views used by different layers:
  ``assign(t)`` — the windows an *element* with timestamp ``t`` belongs to
  (Dataflow/Flink style) — and ``scope(t)`` — the window *in force* at
  evaluation time ``t`` (CQL/RSP-QL style, i.e. ``W(τ)`` of Def. 2.4).
* Count-based and partitioned windows cannot be defined per-timestamp; they
  are defined over element sequences via ``select(elements)``.

All intervals are half-open ``[start, end)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict, deque
from typing import Any, Callable, Hashable, Sequence

from repro.core.errors import WindowError
from repro.core.stream import StreamElement
from repro.core.time import Interval, Timestamp

#: A window is just a time interval.
Window = Interval


class WindowAssigner(ABC):
    """Time-based window operator: maps instants to intervals."""

    @abstractmethod
    def assign(self, t: Timestamp) -> list[Window]:
        """All windows an element stamped ``t`` belongs to."""

    @abstractmethod
    def scope(self, t: Timestamp) -> Window:
        """The window in force when the operator is evaluated at ``t``
        (Definition 2.4's ``W(τ)``)."""

    @property
    def is_merging(self) -> bool:
        """True for window kinds whose windows merge (sessions)."""
        return False


class TumblingWindow(WindowAssigner):
    """Fixed-size, non-overlapping windows aligned to ``offset``.

    ``TumblingWindow(size=10)`` produces [0,10), [10,20), ...  Every instant
    belongs to exactly one window, so tumbling windows partition time.
    """

    def __init__(self, size: Timestamp, offset: Timestamp = 0) -> None:
        if size <= 0:
            raise WindowError(f"window size must be positive, got {size}")
        self.size = size
        self.offset = offset % size

    def assign(self, t: Timestamp) -> list[Window]:
        start = ((t - self.offset) // self.size) * self.size + self.offset
        return [Window(start, start + self.size)]

    def scope(self, t: Timestamp) -> Window:
        return self.assign(t)[0]

    def __repr__(self) -> str:
        return f"TumblingWindow(size={self.size}, offset={self.offset})"


class SlidingWindow(WindowAssigner):
    """Overlapping windows of ``size`` advancing every ``slide`` ticks.

    Also called *hopping* windows.  When ``slide == size`` this degenerates
    to a tumbling window; ``slide > size`` gives sampling (gappy) windows,
    which the survey's window taxonomy also admits.
    """

    def __init__(self, size: Timestamp, slide: Timestamp,
                 offset: Timestamp = 0) -> None:
        if size <= 0 or slide <= 0:
            raise WindowError(
                f"size and slide must be positive, got {size}/{slide}")
        self.size = size
        self.slide = slide
        self.offset = offset % slide

    def assign(self, t: Timestamp) -> list[Window]:
        windows = []
        last_start = ((t - self.offset) // self.slide) * self.slide \
            + self.offset
        start = last_start
        while start > t - self.size:
            windows.append(Window(start, start + self.size))
            start -= self.slide
        windows.reverse()
        return windows

    def scope(self, t: Timestamp) -> Window:
        """The most recent window whose start is <= t (CQL ``[Range r Slide s]``
        semantics: report reflects the latest complete slide boundary)."""
        start = ((t - self.offset) // self.slide) * self.slide + self.offset
        return Window(start, start + self.size)

    def expiry_boundary(self, t: Timestamp) -> Timestamp:
        """The first slide boundary strictly after ``t``.

        Under ``scope`` semantics an element stamped ``t`` stops being
        visible no later than this instant: the window in force jumps to the
        next boundary, which either still covers ``t`` (``slide < size``) or
        leaves it behind.  For gappy windows (``slide > size``) this can
        exceed ``t + size``, so expiry logic must not cap the boundary at
        the window's own extent.
        """
        return self.scope(t).start + self.slide

    def __repr__(self) -> str:
        return (f"SlidingWindow(size={self.size}, slide={self.slide}, "
                f"offset={self.offset})")


class RangeWindow(WindowAssigner):
    """CQL's ``[Range r]`` time-sliding window: at evaluation time τ the
    window covers ``(τ - r, τ]``.

    We encode it half-open as ``[τ - r + 1, τ + 1)`` so that an element with
    timestamp exactly ``τ - r`` has just expired — matching CQL where the
    range is measured *back from now* inclusively at the current end.
    """

    def __init__(self, range_: Timestamp) -> None:
        if range_ <= 0:
            raise WindowError(f"range must be positive, got {range_}")
        self.range = range_

    def assign(self, t: Timestamp) -> list[Window]:
        raise WindowError(
            "RangeWindow slides per evaluation instant; use scope(t)")

    def scope(self, t: Timestamp) -> Window:
        return Window(max(0, t - self.range + 1), t + 1)

    def __repr__(self) -> str:
        return f"RangeWindow(range={self.range})"


class SteppedRangeWindow(WindowAssigner):
    """CQL's ``[Range r Slide s]``: a range window re-evaluated every ``s``.

    At evaluation time τ the window covers ``(b - r, b]`` where ``b`` is the
    latest slide boundary ≤ τ; between boundaries the reported contents are
    frozen.  With ``slide=1`` this degenerates to :class:`RangeWindow`.
    """

    def __init__(self, range_: Timestamp, slide: Timestamp) -> None:
        if range_ <= 0 or slide <= 0:
            raise WindowError(
                f"range and slide must be positive, got {range_}/{slide}")
        self.range = range_
        self.slide = slide

    def assign(self, t: Timestamp) -> list[Window]:
        raise WindowError(
            "SteppedRangeWindow slides per evaluation instant; use scope(t)")

    def scope(self, t: Timestamp) -> Window:
        boundary = (t // self.slide) * self.slide
        return Window(max(0, boundary - self.range + 1), boundary + 1)

    def first_boundary_covering(self, t: Timestamp) -> Timestamp:
        """The first slide boundary at which an element stamped ``t`` is
        visible."""
        return -((-t) // self.slide) * self.slide  # ceil to a boundary

    def expiry_boundary(self, t: Timestamp) -> Timestamp:
        """The first slide boundary at which an element stamped ``t`` is no
        longer visible."""
        return -((-(t + self.range)) // self.slide) * self.slide

    def __repr__(self) -> str:
        return f"SteppedRangeWindow(range={self.range}, slide={self.slide})"


class NowWindow(WindowAssigner):
    """CQL's ``[Now]``: the window holds only elements stamped exactly τ."""

    def assign(self, t: Timestamp) -> list[Window]:
        return [Window(t, t + 1)]

    def scope(self, t: Timestamp) -> Window:
        return Window(t, t + 1)

    def __repr__(self) -> str:
        return "NowWindow()"


class UnboundedWindow(WindowAssigner):
    """CQL's ``[Range Unbounded]``: everything seen so far."""

    def assign(self, t: Timestamp) -> list[Window]:
        raise WindowError("UnboundedWindow has no per-element windows")

    def scope(self, t: Timestamp) -> Window:
        return Window(0, t + 1)

    def __repr__(self) -> str:
        return "UnboundedWindow()"


class LandmarkWindow(WindowAssigner):
    """A window growing from a fixed landmark instant to now."""

    def __init__(self, landmark: Timestamp) -> None:
        if landmark < 0:
            raise WindowError(f"landmark must be >= 0, got {landmark}")
        self.landmark = landmark

    def assign(self, t: Timestamp) -> list[Window]:
        raise WindowError("LandmarkWindow has no per-element windows")

    def scope(self, t: Timestamp) -> Window:
        return Window(self.landmark, max(self.landmark, t + 1))

    def __repr__(self) -> str:
        return f"LandmarkWindow(landmark={self.landmark})"


class SessionWindow(WindowAssigner):
    """Data-driven session windows: elements closer than ``gap`` merge.

    ``assign`` yields a proto-window per element; :func:`merge_sessions`
    coalesces overlapping proto-windows into sessions, which is how merging
    window assigners work in the Dataflow model.
    """

    def __init__(self, gap: Timestamp) -> None:
        if gap <= 0:
            raise WindowError(f"session gap must be positive, got {gap}")
        self.gap = gap

    def assign(self, t: Timestamp) -> list[Window]:
        return [Window(t, t + self.gap)]

    def scope(self, t: Timestamp) -> Window:
        raise WindowError(
            "session windows are data-driven; use assign + merge_sessions")

    @property
    def is_merging(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"SessionWindow(gap={self.gap})"


def merge_sessions(windows: Sequence[Window]) -> list[Window]:
    """Coalesce overlapping proto-windows into maximal session windows."""
    if not windows:
        return []
    ordered = sorted(windows, key=lambda w: (w.start, w.end))
    merged = [ordered[0]]
    for window in ordered[1:]:
        if window.start <= merged[-1].end:
            merged[-1] = merged[-1].union_span(window)
        else:
            merged.append(window)
    return merged


class CountWindow:
    """Tuple-based window: the last ``n`` elements (CQL's ``[Rows n]``)."""

    def __init__(self, rows: int) -> None:
        if rows <= 0:
            raise WindowError(f"row count must be positive, got {rows}")
        self.rows = rows

    def select(self, elements: Sequence[StreamElement]) -> list[StreamElement]:
        """The window contents given all elements seen so far, in order."""
        return list(elements[-self.rows:])

    def __repr__(self) -> str:
        return f"CountWindow(rows={self.rows})"


class PartitionedWindow:
    """CQL's ``[Partition By keys Rows n]``: last ``n`` elements *per key*.

    The window contents are the union over keys of each key's most recent
    ``n`` elements, in original stream order.
    """

    def __init__(self, key_fn: Callable[[Any], Hashable], rows: int,
                 key_names: Sequence[str] = ()) -> None:
        if rows <= 0:
            raise WindowError(f"row count must be positive, got {rows}")
        self.key_fn = key_fn
        self.rows = rows
        self.key_names = tuple(key_names)

    def select(self, elements: Sequence[StreamElement]) -> list[StreamElement]:
        per_key: dict[Hashable, deque[int]] = defaultdict(
            lambda: deque(maxlen=self.rows))
        for index, element in enumerate(elements):
            per_key[self.key_fn(element.value)].append(index)
        keep = sorted(i for indices in per_key.values() for i in indices)
        return [elements[i] for i in keep]

    def __repr__(self) -> str:
        keys = ",".join(self.key_names) or "<fn>"
        return f"PartitionedWindow(by={keys}, rows={self.rows})"


def window_contents(elements: Sequence[StreamElement],
                    window: Window) -> list[StreamElement]:
    """All elements whose timestamp falls inside ``window``."""
    return [e for e in elements if e.timestamp in window]
