"""Relations: instantaneous bags and time-varying relations (Definition 3.1).

CQL's second data type, the *time-varying relation*, maps each time instant
to a finite bag of tuples.  We represent one as a change-log: a sorted list
of ``(τ, bag)`` entries meaning "from τ (inclusive) until the next entry the
relation equals *bag*".  That makes ``at(τ)`` a binary search, keeps storage
proportional to the number of changes, and makes the R2S operators
(:mod:`repro.core.operators`) a simple pairwise diff of consecutive states.

Instantaneous relations are bags (multisets), matching SQL/CQL semantics
where duplicates are meaningful until an explicit DISTINCT.
"""

from __future__ import annotations

import bisect
from collections import Counter
from typing import Any, Callable, Hashable, Iterable, Iterator

from repro.core.errors import TimeError
from repro.core.records import Schema
from repro.core.time import Timestamp


class Bag:
    """A finite multiset of hashable items (an instantaneous relation).

    Thin, explicit wrapper over :class:`collections.Counter` providing the
    multiset algebra the relational operators need: additive union, monus
    (proper multiset difference), intersection, and support (distinct).
    """

    __slots__ = ("_counts",)

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._counts: Counter = Counter(items)

    @classmethod
    def from_counts(cls, counts: dict[Hashable, int]) -> "Bag":
        """Build directly from an item → multiplicity mapping."""
        bag = cls()
        for item, count in counts.items():
            if count < 0:
                raise ValueError(f"negative multiplicity for {item!r}")
            if count:
                bag._counts[item] = count
        return bag

    def add(self, item: Hashable, count: int = 1) -> None:
        if count < 0:
            raise ValueError("cannot add a negative count")
        if count:
            self._counts[item] += count

    def discard(self, item: Hashable, count: int = 1) -> int:
        """Remove up to ``count`` copies; return how many were removed."""
        have = self._counts.get(item, 0)
        removed = min(have, count)
        if removed == have:
            self._counts.pop(item, None)
        else:
            self._counts[item] = have - removed
        return removed

    def count(self, item: Hashable) -> int:
        return self._counts.get(item, 0)

    def __contains__(self, item: Hashable) -> bool:
        return self._counts.get(item, 0) > 0

    def __len__(self) -> int:
        """Total multiplicity (bag cardinality)."""
        return sum(self._counts.values())

    @property
    def support_size(self) -> int:
        """Number of distinct items."""
        return len(self._counts)

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate items with multiplicity (each copy yielded)."""
        for item, count in self._counts.items():
            for _ in range(count):
                yield item

    def items(self) -> Iterator[tuple[Hashable, int]]:
        """Iterate ``(item, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:
        return f"Bag({dict(self._counts)!r})"

    def __le__(self, other: "Bag") -> bool:
        """Sub-bag test: every multiplicity here is <= the other's."""
        return all(other.count(i) >= c for i, c in self._counts.items())

    def union(self, other: "Bag") -> "Bag":
        """Additive (bag) union: multiplicities add."""
        out = Bag()
        out._counts = self._counts + other._counts
        return out

    def difference(self, other: "Bag") -> "Bag":
        """Monus: multiplicities subtract, floored at zero."""
        out = Bag()
        out._counts = self._counts - other._counts
        return out

    def intersection(self, other: "Bag") -> "Bag":
        """Multiplicity-wise minimum."""
        out = Bag()
        out._counts = self._counts & other._counts
        return out

    def max_union(self, other: "Bag") -> "Bag":
        """Multiplicity-wise maximum (set-style union lifted to bags)."""
        out = Bag()
        out._counts = self._counts | other._counts
        return out

    def distinct(self) -> "Bag":
        """The support of the bag (every multiplicity clamped to 1)."""
        out = Bag()
        out._counts = Counter(dict.fromkeys(self._counts, 1))
        return out

    def map(self, fn: Callable[[Any], Any]) -> "Bag":
        """Apply ``fn`` to each item (multiplicities merge on collision)."""
        out = Bag()
        for item, count in self._counts.items():
            out.add(fn(item), count)
        return out

    def filter(self, predicate: Callable[[Any], bool]) -> "Bag":
        """Keep only items satisfying ``predicate``."""
        out = Bag()
        for item, count in self._counts.items():
            if predicate(item):
                out._counts[item] = count
        return out

    def copy(self) -> "Bag":
        out = Bag()
        out._counts = self._counts.copy()
        return out

    def to_sorted_list(self) -> list[Any]:
        """Items with multiplicity, sorted by repr (stable for reporting)."""
        return sorted(self, key=repr)


EMPTY_BAG = Bag()


class TimeVaryingRelation:
    """A mapping from instants to instantaneous bags (Definition 3.1).

    Stored as a change-log of ``(τ, bag)`` with strictly increasing τ.  The
    relation is *empty* before the first change point.  ``at(τ)`` returns
    the bag in force at τ.
    """

    def __init__(self, schema: Schema | None = None) -> None:
        self._schema = schema
        self._times: list[Timestamp] = []
        self._states: list[Bag] = []

    @classmethod
    def from_snapshots(cls, snapshots: Iterable[tuple[Timestamp, Bag]],
                       schema: Schema | None = None,
                       coalesce: bool = True) -> "TimeVaryingRelation":
        """Build from ``(τ, bag)`` pairs (must be in increasing-τ order).

        When ``coalesce`` is true, consecutive identical states are merged
        into one change point, which normalises the representation.
        """
        relation = cls(schema=schema)
        for t, bag in snapshots:
            relation.set_at(t, bag, coalesce=coalesce)
        return relation

    @property
    def schema(self) -> Schema | None:
        return self._schema

    def set_at(self, t: Timestamp, bag: Bag, coalesce: bool = True) -> None:
        """Record that from instant ``t`` on, the relation equals ``bag``."""
        if self._times and t <= self._times[-1]:
            raise TimeError(
                f"change points must increase: {t} after {self._times[-1]}")
        if coalesce and self._states and self._states[-1] == bag:
            return
        self._times.append(t)
        self._states.append(bag)

    def at(self, t: Timestamp) -> Bag:
        """The instantaneous relation R(τ) in force at instant ``t``."""
        idx = bisect.bisect_right(self._times, t) - 1
        if idx < 0:
            return EMPTY_BAG
        return self._states[idx]

    def change_points(self) -> list[Timestamp]:
        """Instants at which the relation (may) change, in order."""
        return list(self._times)

    def snapshots(self) -> Iterator[tuple[Timestamp, Bag]]:
        """Iterate the change-log as ``(τ, bag)`` pairs."""
        return iter(zip(self._times, self._states))

    def __len__(self) -> int:
        """Number of change points."""
        return len(self._times)

    def __repr__(self) -> str:
        return (f"TimeVaryingRelation(changes={len(self._times)}, "
                f"schema={self._schema!r})")

    def __eq__(self, other: object) -> bool:
        """Pointwise equality over the union of both change-point sets."""
        if not isinstance(other, TimeVaryingRelation):
            return NotImplemented
        instants = sorted(set(self._times) | set(other._times))
        return all(self.at(t) == other.at(t) for t in instants)

    def lift(self, fn: Callable[..., Bag], *others: "TimeVaryingRelation",
             schema: Schema | None = None) -> "TimeVaryingRelation":
        """Apply a bag-level function pointwise over time.

        This is exactly how CQL defines R2R operators: a non-temporal
        relational operator applied independently at every instant.  The
        result's change points are the union of the inputs' change points
        (the only instants where anything can change).
        """
        relations = (self, *others)
        instants = sorted({t for r in relations for t in r._times})
        out = TimeVaryingRelation(schema=schema)
        for t in instants:
            out.set_at(t, fn(*(r.at(t) for r in relations)))
        return out

    def restricted(self, instants: Iterable[Timestamp]) -> list[
            tuple[Timestamp, Bag]]:
        """Sample the relation at the given instants."""
        return [(t, self.at(t)) for t in instants]
