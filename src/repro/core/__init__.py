"""Core continuous-query abstractions (paper Sections 2–3).

This package is the semantic foundation of the library: the time domain,
streams, time-varying relations, windows, the CQL S2R/R2R/R2S operator
trichotomy, the reference continuous-semantics evaluators, monotonicity
analysis, and snapshot reducibility.
"""

from repro.core.errors import (
    BrokerError,
    GraphError,
    ParseError,
    PlanError,
    ReproError,
    RSPError,
    SchemaError,
    StateError,
    TimeError,
    WindowError,
)
from repro.core.monotonicity import (
    AppendOnlyLog,
    IncrementalSPJ,
    MonotonicityClass,
    classify_operator,
    classify_plan,
)
from repro.core.operators import (
    AggregateKind,
    AggregateSpec,
    R2SKind,
    aggregate,
    cross,
    difference,
    distinct,
    dstream,
    equijoin,
    extend,
    intersection,
    istream,
    join,
    now,
    project,
    relation_to_stream,
    rename,
    rstream,
    select,
    stream_to_relation,
    unbounded,
    union,
)
from repro.core.punctuation import (
    FINAL_WATERMARK,
    AscendingWatermarks,
    BoundedOutOfOrderness,
    PeriodicWatermarks,
    Punctuation,
    Watermark,
    WatermarkGenerator,
    WatermarkTracker,
)
from repro.core.records import Record, Schema, records_from_dicts
from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.semantics import (
    babcock_sellis_evaluation,
    continuous_evaluation,
    count_query,
    distinct_query,
    divergence_profile,
    empirically_monotonic,
    filter_query,
    join_query,
    max_query,
    semantics_agree,
    window_filter_query,
)
from repro.core.snapshot import (
    LogicalStream,
    ValidityElement,
    check_snapshot_reducibility,
    logical_duplicate_elimination,
    logical_first_n,
    logical_join,
    logical_project,
    logical_select,
    logical_union,
    reducibility_counterexample,
    timeslice,
)
from repro.core.stream import Stream, StreamElement, merge_streams
from repro.core.time import (
    MAX_TIMESTAMP,
    MIN_TIMESTAMP,
    Interval,
    LogicalClock,
    TimeKind,
    Timestamp,
    check_progression,
    hours,
    millis,
    minutes,
    seconds,
)
from repro.core.windows import (
    CountWindow,
    LandmarkWindow,
    NowWindow,
    PartitionedWindow,
    RangeWindow,
    SessionWindow,
    SlidingWindow,
    SteppedRangeWindow,
    TumblingWindow,
    UnboundedWindow,
    Window,
    WindowAssigner,
    merge_sessions,
    window_contents,
)

__all__ = [
    # errors
    "ReproError", "SchemaError", "TimeError", "WindowError", "ParseError",
    "PlanError", "StateError", "BrokerError", "GraphError", "RSPError",
    # time
    "Timestamp", "TimeKind", "Interval", "LogicalClock", "check_progression",
    "millis", "seconds", "minutes", "hours", "MIN_TIMESTAMP", "MAX_TIMESTAMP",
    # records
    "Schema", "Record", "records_from_dicts",
    # streams & relations
    "Stream", "StreamElement", "merge_streams", "Bag", "TimeVaryingRelation",
    # windows
    "Window", "WindowAssigner", "TumblingWindow", "SlidingWindow",
    "RangeWindow", "SteppedRangeWindow", "NowWindow", "UnboundedWindow", "LandmarkWindow",
    "SessionWindow", "CountWindow", "PartitionedWindow", "merge_sessions",
    "window_contents",
    # operators
    "stream_to_relation", "now", "unbounded", "select", "project", "rename",
    "cross", "join", "equijoin", "union", "difference", "intersection",
    "distinct", "aggregate", "extend", "AggregateKind", "AggregateSpec",
    "rstream", "istream", "dstream", "relation_to_stream", "R2SKind",
    # semantics
    "continuous_evaluation", "babcock_sellis_evaluation",
    "empirically_monotonic", "semantics_agree", "divergence_profile",
    "filter_query", "count_query", "max_query", "window_filter_query",
    "distinct_query", "join_query",
    # monotonicity
    "MonotonicityClass", "classify_operator", "classify_plan",
    "IncrementalSPJ", "AppendOnlyLog",
    # snapshot reducibility
    "LogicalStream", "ValidityElement", "timeslice", "logical_select",
    "logical_project", "logical_union", "logical_join", "logical_first_n",
    "logical_duplicate_elimination", "check_snapshot_reducibility",
    "reducibility_counterexample",
    # punctuation
    "Watermark", "Punctuation", "WatermarkGenerator", "AscendingWatermarks",
    "BoundedOutOfOrderness", "PeriodicWatermarks", "WatermarkTracker",
    "FINAL_WATERMARK",
]
