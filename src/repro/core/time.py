"""Time domain primitives (paper Definition 2.1).

The paper models time as an ordered, infinite set of discrete instants.  We
use plain integers as timestamps: they are exact, orderable, and cheap.  A
library-level convention maps one tick to one millisecond, with helpers
(:func:`seconds`, :func:`minutes`, :func:`hours`) so that queries such as
Listing 1's ``[Range 15 min]`` read naturally.

Two *kinds* of time matter in practice (paper Section 2): **event time**, when
the datum was produced in the real world, and **processing time**, when the
system received it.  Event time admits ties (contemporary data); processing
time is strictly monotonic.  :class:`TimeKind` captures the distinction and
:func:`check_progression` enforces the corresponding contract.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.core.errors import TimeError

#: Timestamps are integer ticks.  By convention one tick == one millisecond.
Timestamp = int

#: The smallest representable instant.
MIN_TIMESTAMP: Timestamp = 0

#: A sentinel "end of time" used for unbounded windows and final watermarks.
MAX_TIMESTAMP: Timestamp = 2**62


def millis(n: float) -> Timestamp:
    """Return ``n`` milliseconds as a tick count."""
    return int(n)


def seconds(n: float) -> Timestamp:
    """Return ``n`` seconds as a tick count."""
    return int(n * 1_000)


def minutes(n: float) -> Timestamp:
    """Return ``n`` minutes as a tick count."""
    return int(n * 60_000)


def hours(n: float) -> Timestamp:
    """Return ``n`` hours as a tick count."""
    return int(n * 3_600_000)


class TimeKind(enum.Enum):
    """Which clock a stream's timestamps refer to (paper Section 2)."""

    EVENT_TIME = "event_time"
    PROCESSING_TIME = "processing_time"


def check_progression(previous: Timestamp | None, current: Timestamp,
                      kind: TimeKind) -> None:
    """Validate that ``current`` may follow ``previous`` under ``kind``.

    Processing time must be strictly increasing; event time must be
    non-decreasing *within an ordered stream* (out-of-order arrival is
    modelled explicitly by the dataflow layer, not by silently accepting
    regressions here).

    Raises:
        TimeError: if the progression contract is violated.
    """
    if current < MIN_TIMESTAMP:
        raise TimeError(f"negative timestamp {current}")
    if previous is None:
        return
    if kind is TimeKind.PROCESSING_TIME and current <= previous:
        raise TimeError(
            f"processing time must be strictly monotonic: {current} after "
            f"{previous}")
    if kind is TimeKind.EVENT_TIME and current < previous:
        raise TimeError(
            f"event time regressed in an ordered stream: {current} after "
            f"{previous}")


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)``.

    Windows (Definition 2.4) evaluate to intervals; keeping them half-open
    makes tumbling windows partition the time axis without overlap.
    """

    start: Timestamp
    end: Timestamp

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TimeError(
                f"interval end {self.end} precedes start {self.start}")

    def __contains__(self, t: Timestamp) -> bool:
        return self.start <= t < self.end

    @property
    def length(self) -> Timestamp:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one instant."""
        return self.start < other.end and other.start < self.end

    def union_span(self, other: "Interval") -> "Interval":
        """The smallest interval covering both (used by session merging)."""
        return Interval(min(self.start, other.start),
                        max(self.end, other.end))

    def intersect(self, other: "Interval") -> "Interval | None":
        """The overlap of the two intervals, or None if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)


class LogicalClock:
    """A deterministic stand-in for a wall clock.

    The paper's processing-time notions (and our benchmarks) need a clock
    that the test harness controls.  ``LogicalClock`` ticks only when asked,
    making every experiment reproducible.
    """

    def __init__(self, start: Timestamp = MIN_TIMESTAMP,
                 step: Timestamp = 1) -> None:
        if step <= 0:
            raise TimeError(f"clock step must be positive, got {step}")
        self._now = start
        self._step = step

    def now(self) -> Timestamp:
        """Return the current instant without advancing."""
        return self._now

    def tick(self, steps: int = 1) -> Timestamp:
        """Advance the clock by ``steps`` steps and return the new instant."""
        if steps < 0:
            raise TimeError("clock cannot move backwards")
        self._now += steps * self._step
        return self._now

    def advance_to(self, t: Timestamp) -> Timestamp:
        """Jump forward to ``t``.  Jumping backwards is an error."""
        if t < self._now:
            raise TimeError(f"clock cannot move backwards to {t} "
                            f"(now {self._now})")
        self._now = t
        return self._now

    def instants(self) -> "itertools.count[int]":
        """An infinite iterator of successive instants (advances the clock)."""
        return itertools.count(self._now, self._step)
