"""The CQL operator trichotomy (paper Figure 2 and Section 3.1).

CQL organises continuous queries around two data types — streams and
time-varying relations — and three operator classes converting between them:

* **Stream-to-Relation (S2R)** — window operators segmenting a stream into a
  time-varying relation (:func:`stream_to_relation`).
* **Relation-to-Relation (R2R)** — ordinary relational operators applied
  *pointwise in time* (:func:`select`, :func:`project`, :func:`join`,
  :func:`aggregate`, ...).
* **Relation-to-Stream (R2S)** — ``RSTREAM`` / ``ISTREAM`` / ``DSTREAM``
  turning a time-varying relation back into a stream
  (:func:`rstream`, :func:`istream`, :func:`dstream`).

These are the *reference* (denotational) implementations: clear, obviously
correct, and deliberately non-incremental.  The executors in
:mod:`repro.cql.executor` and :mod:`repro.dsms` are validated against them.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import WindowError
from repro.core.records import Record, Schema
from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.stream import Stream
from repro.core.time import Timestamp
from repro.core.windows import (
    CountWindow,
    LandmarkWindow,
    NowWindow,
    PartitionedWindow,
    RangeWindow,
    SlidingWindow,
    SteppedRangeWindow,
    TumblingWindow,
    UnboundedWindow,
    WindowAssigner,
)

# ---------------------------------------------------------------------------
# Stream-to-Relation
# ---------------------------------------------------------------------------

#: Anything accepted as an S2R window specification.
S2RWindow = WindowAssigner | CountWindow | PartitionedWindow


def _relevant_instants(stream: Stream[Any], window: S2RWindow) -> list[Timestamp]:
    """Instants at which the windowed relation can change.

    Window contents change when an element enters (its timestamp) and when
    it leaves (depends on the window kind).  Evaluating the S2R operator at
    exactly these instants yields the complete change-log of the relation.
    """
    arrivals = stream.distinct_timestamps()
    instants: set[Timestamp] = set(arrivals)
    if isinstance(window, RangeWindow):
        instants.update(t + window.range for t in arrivals)
    elif isinstance(window, NowWindow):
        instants.update(t + 1 for t in arrivals)
    elif isinstance(window, TumblingWindow):
        for t in arrivals:
            instants.add(window.scope(t).end)
    elif isinstance(window, SteppedRangeWindow):
        for t in arrivals:
            instants.add(window.first_boundary_covering(t))
            instants.add(window.expiry_boundary(t))
    elif isinstance(window, SlidingWindow):
        for t in arrivals:
            # Under scope semantics an element is visible exactly until the
            # next slide boundary after it; later boundaries cannot change
            # its visibility again.  For gappy windows (slide > size) this
            # boundary lies beyond t + size, so it must not be capped by the
            # window extent — capping used to leave elements visible forever
            # in the sparse change-log.
            instants.add(window.expiry_boundary(t))
    # Unbounded, landmark, count and partitioned windows only change on
    # arrival, which ``arrivals`` already covers.
    return sorted(instants)


def _contents_at(stream: Stream[Any], window: S2RWindow,
                 t: Timestamp) -> Bag:
    """The bag of stream values visible through ``window`` at instant ``t``."""
    prefix = stream.up_to(t)
    if isinstance(window, (CountWindow, PartitionedWindow)):
        return Bag(e.value for e in window.select(list(prefix)))
    scope = window.scope(t)
    return Bag(e.value for e in prefix if e.timestamp in scope)


def stream_to_relation(stream: Stream[Any], window: S2RWindow,
                       instants: Iterable[Timestamp] | None = None
                       ) -> TimeVaryingRelation:
    """Apply a window operator: the S2R conversion of Figure 2.

    ``instants`` overrides the evaluation instants (used by the semantics
    checkers); by default the relation is evaluated at every instant where
    its contents can change, producing its exact change-log.
    """
    if instants is None:
        instants = _relevant_instants(stream, window)
    else:
        instants = sorted(set(instants))
    relation = TimeVaryingRelation(schema=stream.schema)
    for t in instants:
        relation.set_at(t, _contents_at(stream, window, t))
    return relation


def now(stream: Stream[Any]) -> TimeVaryingRelation:
    """CQL's ``[Now]`` — shorthand S2R."""
    return stream_to_relation(stream, NowWindow())


def unbounded(stream: Stream[Any]) -> TimeVaryingRelation:
    """CQL's ``[Range Unbounded]`` — shorthand S2R."""
    return stream_to_relation(stream, UnboundedWindow())


# ---------------------------------------------------------------------------
# Relation-to-Relation (pointwise lifting of bag operators)
# ---------------------------------------------------------------------------


def select(relation: TimeVaryingRelation,
           predicate: Callable[[Any], bool]) -> TimeVaryingRelation:
    """σ — keep tuples satisfying ``predicate``, at every instant."""
    return relation.lift(lambda bag: bag.filter(predicate),
                         schema=relation.schema)


def project(relation: TimeVaryingRelation,
            names: Sequence[str]) -> TimeVaryingRelation:
    """π — project record tuples onto ``names`` (bag semantics: duplicates
    are preserved)."""
    schema = relation.schema.project(names) if relation.schema else None
    return relation.lift(
        lambda bag: bag.map(lambda r: r.project(names)), schema=schema)


def rename(relation: TimeVaryingRelation, schema: Schema) -> TimeVaryingRelation:
    """ρ — relabel tuples under a new schema of the same arity."""
    return relation.lift(
        lambda bag: bag.map(lambda r: r.with_schema(schema)), schema=schema)


def cross(left: TimeVaryingRelation,
          right: TimeVaryingRelation) -> TimeVaryingRelation:
    """× — bag Cartesian product, pointwise in time."""
    schema = None
    if left.schema and right.schema:
        schema = left.schema.concat(right.schema)

    def product(lbag: Bag, rbag: Bag) -> Bag:
        out = Bag()
        for litem, lcount in lbag.items():
            for ritem, rcount in rbag.items():
                out.add(litem.concat(ritem), lcount * rcount)
        return out

    return left.lift(product, right, schema=schema)


def join(left: TimeVaryingRelation, right: TimeVaryingRelation,
         on: Callable[[Any, Any], bool]) -> TimeVaryingRelation:
    """⋈ — theta join: product filtered by ``on(l, r)``, pointwise."""
    schema = None
    if left.schema and right.schema:
        schema = left.schema.concat(right.schema)

    def joined(lbag: Bag, rbag: Bag) -> Bag:
        out = Bag()
        for litem, lcount in lbag.items():
            for ritem, rcount in rbag.items():
                if on(litem, ritem):
                    out.add(litem.concat(ritem), lcount * rcount)
        return out

    return left.lift(joined, right, schema=schema)


def equijoin(left: TimeVaryingRelation, right: TimeVaryingRelation,
             left_key: Sequence[str],
             right_key: Sequence[str]) -> TimeVaryingRelation:
    """⋈ₖ — hash equi-join on named key columns, pointwise in time."""
    schema = None
    if left.schema and right.schema:
        schema = left.schema.concat(right.schema)

    def joined(lbag: Bag, rbag: Bag) -> Bag:
        # SQL three-valued logic: NULL = NULL is unknown, so rows with a
        # NULL key component can never match (same as the theta-join form).
        index: dict[tuple, list[tuple[Record, int]]] = defaultdict(list)
        for ritem, rcount in rbag.items():
            key = ritem.key(right_key)
            if None in key:
                continue
            index[key].append((ritem, rcount))
        out = Bag()
        for litem, lcount in lbag.items():
            key = litem.key(left_key)
            if None in key:
                continue
            for ritem, rcount in index.get(key, ()):
                out.add(litem.concat(ritem), lcount * rcount)
        return out

    return left.lift(joined, right, schema=schema)


def union(left: TimeVaryingRelation,
          right: TimeVaryingRelation) -> TimeVaryingRelation:
    """∪ — additive bag union, pointwise."""
    return left.lift(Bag.union, right, schema=left.schema)


def difference(left: TimeVaryingRelation,
               right: TimeVaryingRelation) -> TimeVaryingRelation:
    """− — bag monus, pointwise.  The canonical *non-monotonic* operator."""
    return left.lift(Bag.difference, right, schema=left.schema)


def intersection(left: TimeVaryingRelation,
                 right: TimeVaryingRelation) -> TimeVaryingRelation:
    """∩ — multiplicity-wise minimum, pointwise."""
    return left.lift(Bag.intersection, right, schema=left.schema)


def distinct(relation: TimeVaryingRelation) -> TimeVaryingRelation:
    """δ — duplicate elimination, pointwise."""
    return relation.lift(Bag.distinct, schema=relation.schema)


class AggregateKind(enum.Enum):
    """SQL aggregate functions supported by the reference evaluator."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


def _compute_aggregate(kind: AggregateKind, values: list[Any]) -> Any:
    if kind is AggregateKind.COUNT:
        return len(values)
    if not values:
        return None
    if kind is AggregateKind.SUM:
        return sum(values)
    if kind is AggregateKind.AVG:
        return sum(values) / len(values)
    if kind is AggregateKind.MIN:
        return min(values)
    if kind is AggregateKind.MAX:
        return max(values)
    raise WindowError(f"unknown aggregate {kind}")


class AggregateSpec:
    """One aggregate column: ``kind(column) AS alias``.

    ``column=None`` means ``COUNT(*)``.
    """

    def __init__(self, kind: AggregateKind, column: str | None,
                 alias: str) -> None:
        if kind is not AggregateKind.COUNT and column is None:
            raise WindowError(f"{kind.value}(*) is only valid for COUNT")
        self.kind = kind
        self.column = column
        self.alias = alias

    def __repr__(self) -> str:
        arg = self.column if self.column is not None else "*"
        return f"{self.kind.value}({arg}) AS {self.alias}"


def aggregate(relation: TimeVaryingRelation,
              group_by: Sequence[str],
              aggregates: Sequence[AggregateSpec]) -> TimeVaryingRelation:
    """γ — grouped aggregation, pointwise in time.

    Output schema: the group-by columns followed by one column per
    aggregate alias.  With no groups and an empty input the result contains
    the single "empty aggregate" row (COUNT = 0), matching SQL.
    """
    out_fields = list(group_by) + [a.alias for a in aggregates]
    schema = Schema(out_fields)

    def grouped(bag: Bag) -> Bag:
        groups: dict[tuple, list[Record]] = defaultdict(list)
        for record in bag:
            groups[record.key(group_by)].append(record)
        if not groups and not group_by:
            groups[()] = []
        out = Bag()
        for key, rows in groups.items():
            values: list[Any] = list(key)
            for spec in aggregates:
                column_values = ([1] * len(rows) if spec.column is None
                                 else [r[spec.column] for r in rows
                                       if r[spec.column] is not None])
                if spec.kind is AggregateKind.COUNT:
                    values.append(len(column_values))
                else:
                    values.append(
                        _compute_aggregate(spec.kind, column_values))
            out.add(Record(schema, values, validate=False))
        return out

    return relation.lift(grouped, schema=schema)


def extend(relation: TimeVaryingRelation,
           fn: Callable[[Record], Any], alias: str) -> TimeVaryingRelation:
    """Map calculation: add a computed column ``alias`` to each record."""
    base = relation.schema

    def extended(bag: Bag) -> Bag:
        out = Bag()
        for record, count in bag.items():
            schema = Schema(record.schema.fields + (alias,))
            out.add(Record(schema, record.values + (fn(record),),
                           validate=False), count)
        return out

    schema = Schema(base.fields + (alias,)) if base else None
    return relation.lift(extended, schema=schema)


# ---------------------------------------------------------------------------
# Relation-to-Stream
# ---------------------------------------------------------------------------


def rstream(relation: TimeVaryingRelation) -> Stream[Any]:
    """``RSTREAM`` — at every change point τ emit *all* of R(τ) stamped τ."""
    out: Stream[Any] = Stream(schema=relation.schema)
    for t, bag in relation.snapshots():
        for item in sorted(bag, key=repr):
            out.append(item, t)
    return out


def istream(relation: TimeVaryingRelation) -> Stream[Any]:
    """``ISTREAM`` — emit insertions: R(τ) − R(τ−) at each change point."""
    out: Stream[Any] = Stream(schema=relation.schema)
    previous = Bag()
    for t, bag in relation.snapshots():
        for item in sorted(bag.difference(previous), key=repr):
            out.append(item, t)
        previous = bag
    return out


def dstream(relation: TimeVaryingRelation) -> Stream[Any]:
    """``DSTREAM`` — emit deletions: R(τ−) − R(τ) at each change point."""
    out: Stream[Any] = Stream(schema=relation.schema)
    previous = Bag()
    for t, bag in relation.snapshots():
        for item in sorted(previous.difference(bag), key=repr):
            out.append(item, t)
        previous = bag
    return out


class R2SKind(enum.Enum):
    """The three relation-to-stream operators of CQL."""

    RSTREAM = "rstream"
    ISTREAM = "istream"
    DSTREAM = "dstream"


def relation_to_stream(relation: TimeVaryingRelation,
                       kind: R2SKind) -> Stream[Any]:
    """Dispatch to :func:`rstream` / :func:`istream` / :func:`dstream`."""
    if kind is R2SKind.RSTREAM:
        return rstream(relation)
    if kind is R2SKind.ISTREAM:
        return istream(relation)
    return dstream(relation)
