"""Data streams (paper Definition 2.2).

A data stream maps each instant of the time domain to a finite bag of
tuples; equivalently it is a potentially infinite collection of pairs
``(o, τ)`` of a data item and a timestamp.  :class:`Stream` materialises a
*finite prefix* of such a stream — which is all any terminating experiment
ever observes — while keeping the infinite-stream contract visible through
``up_to`` (prefix by time) and ``extend`` (the stream only ever grows:
append-only, as in Terry et al.'s model).
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Generic, Iterable, Iterator, NamedTuple, TypeVar

from repro.core.errors import TimeError
from repro.core.records import Record, Schema
from repro.core.time import TimeKind, Timestamp, check_progression

T = TypeVar("T")


class StreamElement(NamedTuple):
    """One stream item: a payload and the instant it carries."""

    value: Any
    timestamp: Timestamp


class Stream(Generic[T]):
    """An append-only, timestamp-ordered sequence of elements.

    The order invariant depends on the stream's :class:`TimeKind`: event-time
    streams allow ties (contemporary data), processing-time streams are
    strictly monotonic.  Out-of-order *arrival* is a property of transport,
    not of the logical stream, and is modelled by the dataflow layer; a
    ``Stream`` is always the logically ordered view.
    """

    def __init__(self, schema: Schema | None = None,
                 kind: TimeKind = TimeKind.EVENT_TIME,
                 elements: Iterable[StreamElement] | None = None) -> None:
        self._schema = schema
        self._kind = kind
        self._elements: list[StreamElement] = []
        self._timestamps: list[Timestamp] = []
        if elements is not None:
            for element in elements:
                self.append(element.value, element.timestamp)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Any, Timestamp]],
                   schema: Schema | None = None,
                   kind: TimeKind = TimeKind.EVENT_TIME) -> "Stream[T]":
        """Build a stream from ``(value, timestamp)`` pairs."""
        stream: Stream[T] = cls(schema=schema, kind=kind)
        for value, timestamp in pairs:
            stream.append(value, timestamp)
        return stream

    @classmethod
    def of_records(cls, schema: Schema,
                   rows: Iterable[tuple[dict[str, Any], Timestamp]],
                   kind: TimeKind = TimeKind.EVENT_TIME) -> "Stream[Record]":
        """Build a record stream from ``(field-dict, timestamp)`` pairs."""
        stream: Stream[Record] = cls(schema=schema, kind=kind)
        for row, timestamp in rows:
            stream.append(Record.from_mapping(schema, row), timestamp)
        return stream

    @property
    def schema(self) -> Schema | None:
        return self._schema

    @property
    def kind(self) -> TimeKind:
        return self._kind

    def append(self, value: Any, timestamp: Timestamp) -> None:
        """Append one element, enforcing the time-progression contract."""
        previous = self._timestamps[-1] if self._timestamps else None
        check_progression(previous, timestamp, self._kind)
        self._elements.append(StreamElement(value, timestamp))
        self._timestamps.append(timestamp)

    def extend(self, pairs: Iterable[tuple[Any, Timestamp]]) -> None:
        """Append many ``(value, timestamp)`` pairs."""
        for value, timestamp in pairs:
            self.append(value, timestamp)

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> StreamElement:
        return self._elements[index]

    def __repr__(self) -> str:
        span = (f"[{self._timestamps[0]}..{self._timestamps[-1]}]"
                if self._elements else "[]")
        return (f"Stream(len={len(self._elements)}, span={span}, "
                f"kind={self._kind.value})")

    @property
    def min_timestamp(self) -> Timestamp | None:
        return self._timestamps[0] if self._timestamps else None

    @property
    def max_timestamp(self) -> Timestamp | None:
        return self._timestamps[-1] if self._timestamps else None

    def timestamps(self) -> list[Timestamp]:
        """All element timestamps, in order (copies)."""
        return list(self._timestamps)

    def distinct_timestamps(self) -> list[Timestamp]:
        """The sorted set of instants at which elements occur."""
        out: list[Timestamp] = []
        for t in self._timestamps:
            if not out or out[-1] != t:
                out.append(t)
        return out

    def up_to(self, t: Timestamp) -> "Stream[T]":
        """The prefix of elements with timestamp ``<= t``.

        This is the ``S up to τ`` notion used throughout the CQL semantics
        (paper Section 3.1).
        """
        cut = bisect.bisect_right(self._timestamps, t)
        prefix: Stream[T] = Stream(schema=self._schema, kind=self._kind)
        prefix._elements = self._elements[:cut]
        prefix._timestamps = self._timestamps[:cut]
        return prefix

    def between(self, start: Timestamp, end: Timestamp) -> list[StreamElement]:
        """Elements with timestamp in the half-open interval ``[start, end)``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        return self._elements[lo:hi]

    def at(self, t: Timestamp) -> list[Any]:
        """The finite bag of values carrying exactly timestamp ``t``
        (the ``S(τ)`` of Definition 2.2)."""
        lo = bisect.bisect_left(self._timestamps, t)
        hi = bisect.bisect_right(self._timestamps, t)
        return [e.value for e in self._elements[lo:hi]]

    def values(self) -> list[Any]:
        """All payloads, in stream order."""
        return [e.value for e in self._elements]

    def map(self, fn: Callable[[Any], Any],
            schema: Schema | None = None) -> "Stream[Any]":
        """A new stream with ``fn`` applied to every payload."""
        out: Stream[Any] = Stream(schema=schema, kind=self._kind)
        out._elements = [StreamElement(fn(e.value), e.timestamp)
                         for e in self._elements]
        out._timestamps = list(self._timestamps)
        return out

    def filter(self, predicate: Callable[[Any], bool]) -> "Stream[T]":
        """A new stream keeping only payloads satisfying ``predicate``."""
        out: Stream[T] = Stream(schema=self._schema, kind=self._kind)
        for element in self._elements:
            if predicate(element.value):
                out._elements.append(element)
                out._timestamps.append(element.timestamp)
        return out


def merge_streams(*streams: Stream[Any],
                  schema: Schema | None = None) -> Stream[Any]:
    """Merge ordered streams into one ordered stream (k-way merge).

    All inputs must share a :class:`TimeKind`; the result is event-time when
    any tie would violate strict monotonicity.
    """
    if not streams:
        raise TimeError("merge_streams needs at least one stream")
    kinds = {s.kind for s in streams}
    if len(kinds) > 1:
        raise TimeError(f"cannot merge streams of mixed kinds {kinds}")
    elements = sorted(
        (e for s in streams for e in s),
        key=lambda e: e.timestamp)
    merged: Stream[Any] = Stream(schema=schema or streams[0].schema,
                                 kind=TimeKind.EVENT_TIME)
    for element in elements:
        merged.append(element.value, element.timestamp)
    return merged
