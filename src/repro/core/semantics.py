"""Reference continuous-query semantics (paper Definitions 2.3 & Section 3.1).

The paper contrasts three formulations of "what a continuous query means":

* **Terry et al. / CQL** (Definition 2.3): a continuous query submitted at
  τ₀ returns, at every instant τ, the result the one-shot query Q would
  produce over the stream prefix up to τ.  :func:`continuous_evaluation`
  implements this directly — it is the executable denotational semantics
  every incremental engine in this repository is validated against.

* **Babcock & Sellis**: the result *up to* τ is the set-union of the
  one-shot results over all successive prefixes,
  ``Q_cont(S(τᵢ)) = ⋃_{τ₀<τ≤τᵢ} Q(S(τ))``.
  :func:`babcock_sellis_evaluation` implements it.

The two agree exactly when Q is *monotonic* (Barbarà's characterisation,
paper Section 3.2); :func:`semantics_agree` and
:func:`empirically_monotonic` make the claim machine-checkable, and the C1
benchmark measures how far they diverge for non-monotonic queries.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.relation import Bag, TimeVaryingRelation
from repro.core.stream import Stream
from repro.core.time import Timestamp

#: A one-shot query: a function from a finite stream prefix to a bag of
#: results.  This is the ``Q`` of Definition 2.3.
OneShotQuery = Callable[[Stream[Any]], Bag]


def default_instants(stream: Stream[Any]) -> list[Timestamp]:
    """The canonical evaluation instants: every distinct element timestamp."""
    return stream.distinct_timestamps()


def continuous_evaluation(query: OneShotQuery, stream: Stream[Any],
                          instants: Iterable[Timestamp] | None = None
                          ) -> TimeVaryingRelation:
    """Terry/CQL continuous semantics: ``R(τ) = Q(S up to τ)`` for each τ.

    This is the *reference evaluator* — quadratic by construction (it replays
    the prefix at every instant) and used as ground truth in tests and as
    the "one-shot re-execution" baseline in the Figure 1 benchmark.
    """
    if instants is None:
        instants = default_instants(stream)
    relation = TimeVaryingRelation()
    for t in sorted(set(instants)):
        relation.set_at(t, query(stream.up_to(t)), coalesce=False)
    return relation


def babcock_sellis_evaluation(query: OneShotQuery, stream: Stream[Any],
                              instants: Iterable[Timestamp] | None = None
                              ) -> TimeVaryingRelation:
    """Babcock/Sellis union semantics: cumulative set-union of results.

    ``R(τᵢ) = ⋃_{τ ≤ τᵢ} Q(S up to τ)`` — interpreted over sets, as in the
    original formulation, so multiplicities are clamped to one.
    """
    if instants is None:
        instants = default_instants(stream)
    relation = TimeVaryingRelation()
    accumulated = Bag()
    for t in sorted(set(instants)):
        accumulated = accumulated.max_union(query(stream.up_to(t)).distinct())
        relation.set_at(t, accumulated, coalesce=False)
    return relation


def empirically_monotonic(query: OneShotQuery, stream: Stream[Any],
                          instants: Iterable[Timestamp] | None = None
                          ) -> bool:
    """Check Barbarà's monotonicity property on this input.

    Q is monotonic when ``S(τ₁) ⊆ S(τ₂) ⟹ Q(S(τ₁)) ⊆ Q(S(τ₂))``.  Prefixes
    of one stream are nested by construction, so it suffices to check that
    successive results are nested (as sets).
    """
    if instants is None:
        instants = default_instants(stream)
    previous: Bag | None = None
    for t in sorted(set(instants)):
        current = query(stream.up_to(t)).distinct()
        if previous is not None and not previous <= current:
            return False
        previous = current
    return True


def semantics_agree(query: OneShotQuery, stream: Stream[Any],
                    instants: Iterable[Timestamp] | None = None) -> bool:
    """True when Terry/CQL and Babcock/Sellis semantics coincide (as sets)
    at every instant — which Barbarà shows happens iff Q is monotonic."""
    if instants is None:
        instants = default_instants(stream)
    instants = sorted(set(instants))
    terry = continuous_evaluation(query, stream, instants)
    union = babcock_sellis_evaluation(query, stream, instants)
    return all(terry.at(t).distinct() == union.at(t) for t in instants)


def divergence_profile(query: OneShotQuery, stream: Stream[Any],
                       instants: Iterable[Timestamp] | None = None
                       ) -> list[tuple[Timestamp, int]]:
    """Per-instant count of *stale* tuples the union semantics retains.

    For non-monotonic queries the Babcock/Sellis union keeps results that
    have ceased to qualify; the returned profile is
    ``[(τ, |union(τ) − current(τ)|), ...]`` — all zeros iff the semantics
    agree.  Used by the C1 benchmark.
    """
    if instants is None:
        instants = default_instants(stream)
    instants = sorted(set(instants))
    terry = continuous_evaluation(query, stream, instants)
    union = babcock_sellis_evaluation(query, stream, instants)
    profile = []
    for t in instants:
        stale = union.at(t).difference(terry.at(t).distinct())
        profile.append((t, len(stale)))
    return profile


# ---------------------------------------------------------------------------
# Ready-made one-shot query constructors (used across tests and benchmarks)
# ---------------------------------------------------------------------------


def filter_query(predicate: Callable[[Any], bool]) -> OneShotQuery:
    """Monotonic: select stream values satisfying ``predicate``."""

    def query(stream: Stream[Any]) -> Bag:
        return Bag(v for v in stream.values() if predicate(v))

    return query


def count_query() -> OneShotQuery:
    """Non-monotonic: the (single-row) count of all values seen so far.

    Each new arrival changes the count, invalidating the previous result —
    the textbook non-monotonic aggregate."""

    def query(stream: Stream[Any]) -> Bag:
        return Bag([len(stream)])

    return query


def max_query(key: Callable[[Any], Any] = lambda v: v) -> OneShotQuery:
    """Monotonic-looking but non-monotonic: the maximum so far.

    Old maxima cease to qualify when a larger value arrives."""

    def query(stream: Stream[Any]) -> Bag:
        values = stream.values()
        if not values:
            return Bag()
        return Bag([max(values, key=key)])

    return query


def window_filter_query(predicate: Callable[[Any], bool],
                        range_: Timestamp) -> OneShotQuery:
    """Non-monotonic: select over a sliding ``[Range r]`` window.

    Windowing makes even selection non-monotonic, because tuples expire —
    the reason the paper calls windows 'the most delicate contact' between
    continuous querying and streaming systems."""

    def query(stream: Stream[Any]) -> Bag:
        horizon = stream.max_timestamp
        if horizon is None:
            return Bag()
        low = horizon - range_ + 1
        return Bag(e.value for e in stream
                   if e.timestamp >= low and predicate(e.value))

    return query


def distinct_query(key: Callable[[Any], Any] = lambda v: v) -> OneShotQuery:
    """Monotonic: the set of distinct keys seen so far."""

    def query(stream: Stream[Any]) -> Bag:
        return Bag(set(key(v) for v in stream.values()))

    return query


def join_query(left_of: Callable[[Any], bool],
               join_key: Callable[[Any], Any]) -> OneShotQuery:
    """Monotonic: self-join over an append-only stream.

    Values are split into a left and right side by ``left_of``; the result
    pairs left/right values sharing a join key.  Append-only inputs only
    ever *add* join results, so the query is monotonic."""

    def query(stream: Stream[Any]) -> Bag:
        lefts: dict[Any, list[Any]] = {}
        rights: dict[Any, list[Any]] = {}
        for value in stream.values():
            side = lefts if left_of(value) else rights
            side.setdefault(join_key(value), []).append(value)
        out = Bag()
        for key, lvals in lefts.items():
            for lval in lvals:
                for rval in rights.get(key, ()):  # noqa: B020
                    out.add((lval, rval))
        return out

    return query
