"""Records and schemas — the tuples ``o`` of Definition 2.2.

A :class:`Schema` is an ordered list of field names (optionally typed); a
:class:`Record` is an immutable tuple of values conforming to a schema.
Records support access by position and by name, are hashable (so they can be
multiset elements and join keys), and compare by value, which is what the
bag semantics of the relational operators need.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.errors import SchemaError


class Schema:
    """An ordered, named record layout.

    Fields may carry an optional Python type used for validation; ``None``
    means "any type".  Field names may be qualified (``"O.room"``): the
    resolution rules in :meth:`index_of` accept either an exact match or an
    unambiguous suffix match, which is how CQL queries refer to
    ``P.id`` vs plain ``id``.
    """

    __slots__ = ("_fields", "_types", "_index")

    def __init__(self, fields: Sequence[str],
                 types: Sequence[type | None] | None = None) -> None:
        fields = tuple(fields)
        if len(set(fields)) != len(fields):
            raise SchemaError(f"duplicate field names in {fields!r}")
        if types is None:
            types = (None,) * len(fields)
        else:
            types = tuple(types)
            if len(types) != len(fields):
                raise SchemaError(
                    f"{len(fields)} fields but {len(types)} types")
        self._fields = fields
        self._types = types
        self._index = {name: i for i, name in enumerate(fields)}

    @property
    def fields(self) -> tuple[str, ...]:
        return self._fields

    @property
    def types(self) -> tuple[type | None, ...]:
        return self._types

    @property
    def arity(self) -> int:
        return len(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __contains__(self, name: str) -> bool:
        try:
            self.index_of(name)
        except SchemaError:
            return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        return f"Schema({list(self._fields)!r})"

    def index_of(self, name: str) -> int:
        """Resolve ``name`` to a position.

        Resolution order: exact match first, then unique unqualified-suffix
        match (``"id"`` resolves to ``"P.id"`` when no other field ends in
        ``.id``).

        Raises:
            SchemaError: when the name is unknown or ambiguous.
        """
        if name in self._index:
            return self._index[name]
        if "." in name:
            # A qualified name matches a whole field only — ``O.id`` never
            # resolves to ``P.id`` — but, as in SQL, case-insensitively
            # (Listing 1 writes ``P.ID`` for the ``id`` attribute).
            folded = [i for f, i in self._index.items()
                      if f.lower() == name.lower()]
            if len(folded) == 1:
                return folded[0]
            if len(folded) > 1:
                raise SchemaError(f"ambiguous field {name!r} in {self!r}")
            raise SchemaError(f"unknown field {name!r} in {self!r}")
        suffix = "." + name
        candidates = [i for f, i in self._index.items() if f.endswith(suffix)]
        if not candidates:
            suffix = suffix.lower()
            candidates = [i for f, i in self._index.items()
                          if f.lower().endswith(suffix)]
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            raise SchemaError(f"ambiguous field {name!r} in {self!r}")
        raise SchemaError(f"unknown field {name!r} in {self!r}")

    def qualify(self, alias: str) -> "Schema":
        """Return a copy with every unqualified field prefixed by ``alias.``."""
        fields = tuple(
            f if "." in f else f"{alias}.{f}" for f in self._fields)
        return Schema(fields, self._types)

    def unqualified(self) -> "Schema":
        """Return a copy with qualifiers stripped (must stay unambiguous)."""
        fields = tuple(f.rpartition(".")[2] for f in self._fields)
        return Schema(fields, self._types)

    def concat(self, other: "Schema") -> "Schema":
        """The schema of a join/product of the two record layouts."""
        return Schema(self._fields + other._fields,
                      self._types + other._types)

    def project(self, names: Sequence[str]) -> "Schema":
        """The schema produced by projecting onto ``names`` (in order)."""
        indices = [self.index_of(n) for n in names]
        return Schema(tuple(names),
                      tuple(self._types[i] for i in indices))

    def validate(self, values: Sequence[Any]) -> None:
        """Check arity and (when declared) types of a value tuple.

        Raises:
            SchemaError: on arity or type mismatch.
        """
        if len(values) != len(self._fields):
            raise SchemaError(
                f"expected {len(self._fields)} values, got {len(values)}")
        for name, expected, value in zip(self._fields, self._types, values):
            if expected is not None and value is not None \
                    and not isinstance(value, expected):
                raise SchemaError(
                    f"field {name!r} expects {expected.__name__}, got "
                    f"{type(value).__name__} ({value!r})")


class Record:
    """An immutable tuple of values with a :class:`Schema`.

    Records hash and compare by their values *and* field names, so two
    records from differently-named schemas are distinct even when the raw
    values coincide — exactly the behaviour bag-relational operators expect.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Sequence[Any],
                 validate: bool = True) -> None:
        values = tuple(values)
        if validate:
            schema.validate(values)
        self._schema = schema
        self._values = values

    @classmethod
    def from_mapping(cls, schema: Schema,
                     mapping: Mapping[str, Any]) -> "Record":
        """Build a record from a field-name → value mapping."""
        missing = [f for f in schema.fields if f not in mapping]
        if missing:
            raise SchemaError(f"missing fields {missing} for {schema!r}")
        return cls(schema, tuple(mapping[f] for f in schema.fields))

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, key: int | str) -> Any:
        if isinstance(key, str):
            return self._values[self._schema.index_of(key)]
        return self._values[key]

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except SchemaError:
            return default

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (self._values == other._values
                and self._schema.fields == other._schema.fields)

    def __hash__(self) -> int:
        return hash((self._schema.fields, self._values))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{f}={v!r}" for f, v in zip(self._schema.fields, self._values))
        return f"Record({pairs})"

    def as_dict(self) -> dict[str, Any]:
        """The record as a field-name → value dict (copies)."""
        return dict(zip(self._schema.fields, self._values))

    def project(self, names: Sequence[str]) -> "Record":
        """A new record containing only ``names``, in the given order."""
        schema = self._schema.project(names)
        values = tuple(self[n] for n in names)
        return Record(schema, values, validate=False)

    def concat(self, other: "Record") -> "Record":
        """The concatenation of two records (join output)."""
        return Record(self._schema.concat(other._schema),
                      self._values + other._values, validate=False)

    def with_schema(self, schema: Schema) -> "Record":
        """The same values re-labelled under a compatible schema."""
        if schema.arity != len(self._values):
            raise SchemaError(
                f"cannot relabel {len(self._values)} values as {schema!r}")
        return Record(schema, self._values, validate=False)

    def key(self, names: Sequence[str]) -> tuple[Any, ...]:
        """The tuple of values at ``names`` — a grouping/join key."""
        return tuple(self[n] for n in names)


def records_from_dicts(schema: Schema,
                       rows: Iterable[Mapping[str, Any]]) -> list[Record]:
    """Convenience: build a list of records from dict rows."""
    return [Record.from_mapping(schema, row) for row in rows]
