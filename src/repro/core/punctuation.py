"""Punctuations and watermarks — progress signals for unbounded inputs.

The survey's Section 4 credits streaming systems with making *out-of-order
processing* a first-class concern.  The mechanism is the watermark: an
assertion that no element with timestamp ≤ w will arrive any more.  This
module provides the message types shared by the dataflow and runtime layers
and the two standard watermark generators (periodic / bounded
out-of-orderness), plus general punctuations (predicate-scoped "end of
substream" markers, the DSMS-era ancestor of watermarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.time import MAX_TIMESTAMP, Timestamp


@dataclass(frozen=True, order=True)
class Watermark:
    """No element with ``timestamp <= value`` will arrive after this."""

    value: Timestamp

    @property
    def is_final(self) -> bool:
        """The end-of-stream watermark: everything has arrived."""
        return self.value >= MAX_TIMESTAMP


#: The watermark that closes a stream.
FINAL_WATERMARK = Watermark(MAX_TIMESTAMP)


@dataclass(frozen=True)
class Punctuation:
    """A predicate-scoped progress marker (Tucker et al. style).

    Asserts that no future element satisfies ``description``'s predicate —
    e.g. "no more readings for room 42".  Watermarks are the special case
    whose predicate is ``timestamp <= value``.
    """

    describes: Callable[[Any], bool] = field(compare=False)
    label: str = ""

    def matches(self, value: Any) -> bool:
        return self.describes(value)


class WatermarkGenerator:
    """Base class: observes (value, timestamp) pairs, emits watermarks."""

    def observe(self, timestamp: Timestamp) -> Watermark | None:
        """Feed one element timestamp; maybe return a new watermark."""
        raise NotImplementedError

    def current(self) -> Watermark:
        """The latest watermark implied by what has been observed."""
        raise NotImplementedError


class AscendingWatermarks(WatermarkGenerator):
    """For in-order streams: watermark trails the max timestamp by one."""

    def __init__(self) -> None:
        self._max_seen: Timestamp = -1

    def observe(self, timestamp: Timestamp) -> Watermark | None:
        if timestamp > self._max_seen:
            self._max_seen = timestamp
            return self.current()
        return None

    def current(self) -> Watermark:
        return Watermark(self._max_seen - 1) if self._max_seen >= 0 \
            else Watermark(-1)


class BoundedOutOfOrderness(WatermarkGenerator):
    """Flink's standard generator: watermark = max timestamp − bound − 1.

    Elements later than ``bound`` behind the maximum seen so far are late.
    """

    def __init__(self, bound: Timestamp) -> None:
        if bound < 0:
            raise ValueError(f"out-of-orderness bound must be >= 0, "
                             f"got {bound}")
        self.bound = bound
        self._max_seen: Timestamp = -1

    def observe(self, timestamp: Timestamp) -> Watermark | None:
        if timestamp > self._max_seen:
            self._max_seen = timestamp
            return self.current()
        return None

    def current(self) -> Watermark:
        return Watermark(self._max_seen - self.bound - 1)


class PeriodicWatermarks(WatermarkGenerator):
    """Emit a watermark only every ``period`` observations (amortises the
    per-element cost, the usual production configuration)."""

    def __init__(self, inner: WatermarkGenerator, period: int) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._inner = inner
        self._period = period
        self._count = 0

    def observe(self, timestamp: Timestamp) -> Watermark | None:
        self._inner.observe(timestamp)
        self._count += 1
        if self._count % self._period == 0:
            return self._inner.current()
        return None

    def current(self) -> Watermark:
        return self._inner.current()


class WatermarkTracker:
    """Tracks the minimum watermark across several input channels.

    Operators with multiple inputs may only advance to the *minimum* of
    their inputs' watermarks — the propagation rule every streaming system
    in the survey shares."""

    def __init__(self, channels: int) -> None:
        if channels <= 0:
            raise ValueError(f"need at least one channel, got {channels}")
        self._marks: list[Timestamp] = [-1] * channels

    def update(self, channel: int, watermark: Watermark) -> Watermark | None:
        """Record a per-channel watermark; return the new combined watermark
        when it advanced, else None."""
        before = min(self._marks)
        if watermark.value > self._marks[channel]:
            self._marks[channel] = watermark.value
        after = min(self._marks)
        if after > before:
            return Watermark(after)
        return None

    def current(self) -> Watermark:
        return Watermark(min(self._marks))
