"""Timeslice and snapshot reducibility (Krämer & Seeger; paper Def. 3.2).

Krämer & Seeger bridge streaming and temporal databases: a *logical stream*
carries tuples with validity intervals, the **timeslice** operation takes
the snapshot of a logical stream at an instant, and an operator over logical
streams is **snapshot-reducible** to its non-temporal (bag) counterpart when

    timeslice(op_T(S₁…Sₙ), τ)  ==  op(timeslice(S₁,τ), …, timeslice(Sₙ,τ))

for every instant τ.  Unlike windows, timeslice is a global property of the
stream and reducibility can be proved *per operator* — this module makes the
property executable: :func:`check_snapshot_reducibility` verifies it over
all relevant instants, and the provided logical-stream operators include
both reducible ones (selection, projection, join, union) and a deliberately
non-reducible one (:func:`logical_first_n`, which depends on arrival order
rather than validity) to exercise the negative case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import TimeError
from repro.core.relation import Bag
from repro.core.time import MAX_TIMESTAMP, Interval, Timestamp


@dataclass(frozen=True)
class ValidityElement:
    """A logical-stream element: a value valid during ``[start, end)``."""

    value: Any
    start: Timestamp
    end: Timestamp = MAX_TIMESTAMP

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise TimeError(
                f"validity interval [{self.start},{self.end}) is empty")

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)

    def valid_at(self, t: Timestamp) -> bool:
        return self.start <= t < self.end


class LogicalStream:
    """A Krämer–Seeger logical stream: elements with validity intervals.

    Ordered by interval start (the arrival order of the physical stream)."""

    def __init__(self, elements: Iterable[ValidityElement] = ()) -> None:
        self._elements = sorted(elements, key=lambda e: (e.start, e.end))

    @classmethod
    def from_windowed(cls, pairs: Iterable[tuple[Any, Timestamp]],
                      lifetime: Timestamp) -> "LogicalStream":
        """Build from (value, timestamp) pairs, each valid for ``lifetime``
        ticks — the logical-stream encoding of a time-based sliding window."""
        return cls(ValidityElement(v, t, t + lifetime) for v, t in pairs)

    def __iter__(self):
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def elements(self) -> list[ValidityElement]:
        return list(self._elements)

    def relevant_instants(self) -> list[Timestamp]:
        """Every instant at which some snapshot can change."""
        instants: set[Timestamp] = set()
        for element in self._elements:
            instants.add(element.start)
            if element.end < MAX_TIMESTAMP:
                instants.add(element.end)
        return sorted(instants)


def timeslice(stream: LogicalStream, t: Timestamp) -> Bag:
    """The snapshot of ``stream`` at instant ``t`` — a bag of values."""
    return Bag(e.value for e in stream if e.valid_at(t))


# ---------------------------------------------------------------------------
# Logical-stream (temporal) operators
# ---------------------------------------------------------------------------


def logical_select(stream: LogicalStream,
                   predicate: Callable[[Any], bool]) -> LogicalStream:
    """Temporal selection: keep elements whose value satisfies the predicate
    (validity unchanged).  Snapshot-reducible to bag selection."""
    return LogicalStream(e for e in stream if predicate(e.value))


def logical_project(stream: LogicalStream,
                    fn: Callable[[Any], Any]) -> LogicalStream:
    """Temporal projection/map over values (validity unchanged).
    Snapshot-reducible to bag map."""
    return LogicalStream(
        ValidityElement(fn(e.value), e.start, e.end) for e in stream)


def logical_union(left: LogicalStream, right: LogicalStream) -> LogicalStream:
    """Temporal union (validity preserved).  Snapshot-reducible to bag
    additive union."""
    return LogicalStream([*left, *right])


def logical_join(left: LogicalStream, right: LogicalStream,
                 on: Callable[[Any, Any], bool],
                 combine: Callable[[Any, Any], Any] = lambda l, r: (l, r),
                 ) -> LogicalStream:
    """Temporal join: matching pairs are valid on the *intersection* of
    their validity intervals — Krämer & Seeger's join rule, which is what
    makes the operator snapshot-reducible to the bag theta-join."""
    out: list[ValidityElement] = []
    for le in left:
        for re_ in right:
            if not on(le.value, re_.value):
                continue
            overlap = le.interval.intersect(re_.interval)
            if overlap is not None:
                out.append(ValidityElement(
                    combine(le.value, re_.value), overlap.start, overlap.end))
    return LogicalStream(out)


def logical_first_n(stream: LogicalStream, n: int) -> LogicalStream:
    """Keep the first ``n`` elements *by arrival order*.

    Deliberately **not** snapshot-reducible: which elements survive depends
    on arrival order, not on what is valid at each instant, so no bag-level
    counterpart can reproduce its snapshots.  Serves as the negative test
    case for Definition 3.2."""
    return LogicalStream(stream.elements()[:n])


def logical_duplicate_elimination(stream: LogicalStream) -> LogicalStream:
    """Temporal duplicate elimination by splitting overlapping validity.

    For each value, the output is valid wherever *at least one* input copy
    is valid, with multiplicity one — computed by sweeping the value's
    validity intervals and merging overlaps.  Snapshot-reducible to bag
    ``distinct``."""
    by_value: dict[Any, list[Interval]] = {}
    for element in stream:
        by_value.setdefault(element.value, []).append(element.interval)
    out: list[ValidityElement] = []
    for value, intervals in by_value.items():
        intervals.sort(key=lambda i: (i.start, i.end))
        current = intervals[0]
        for interval in intervals[1:]:
            if interval.start <= current.end:
                current = Interval(current.start,
                                   max(current.end, interval.end))
            else:
                out.append(ValidityElement(value, current.start, current.end))
                current = interval
        out.append(ValidityElement(value, current.start, current.end))
    return LogicalStream(out)


# ---------------------------------------------------------------------------
# The reducibility checker (executable Definition 3.2)
# ---------------------------------------------------------------------------


def check_snapshot_reducibility(
        stream_op: Callable[..., LogicalStream],
        bag_op: Callable[..., Bag],
        inputs: Sequence[LogicalStream],
        instants: Iterable[Timestamp] | None = None) -> bool:
    """Verify Definition 3.2 over the given inputs.

    Checks, for every relevant instant τ, that the snapshot of the temporal
    operator's output equals the bag operator applied to the inputs'
    snapshots.  ``instants`` defaults to every instant at which any input or
    the output can change.
    """
    output = stream_op(*inputs)
    if instants is None:
        relevant: set[Timestamp] = set(output.relevant_instants())
        for stream in inputs:
            relevant.update(stream.relevant_instants())
        instants = sorted(relevant)
    for t in instants:
        lhs = timeslice(output, t)
        rhs = bag_op(*(timeslice(s, t) for s in inputs))
        if lhs != rhs:
            return False
    return True


def reducibility_counterexample(
        stream_op: Callable[..., LogicalStream],
        bag_op: Callable[..., Bag],
        inputs: Sequence[LogicalStream],
        ) -> tuple[Timestamp, Bag, Bag] | None:
    """Return ``(τ, snapshot-of-output, bag-op-of-snapshots)`` at the first
    instant where Definition 3.2 fails, or None when the operator is
    reducible on these inputs."""
    output = stream_op(*inputs)
    relevant: set[Timestamp] = set(output.relevant_instants())
    for stream in inputs:
        relevant.update(stream.relevant_instants())
    for t in sorted(relevant):
        lhs = timeslice(output, t)
        rhs = bag_op(*(timeslice(s, t) for s in inputs))
        if lhs != rhs:
            return (t, lhs, rhs)
    return None
