"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause while still
being able to distinguish schema problems from, say, parse errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A record does not match its schema, or two schemas are incompatible."""


class TimeError(ReproError):
    """A timestamp violates the time-domain contract (e.g. regression on a
    processing-time stream, or a negative window range)."""


class WindowError(ReproError):
    """A window specification is invalid (non-positive size, slide > range
    where forbidden, etc.)."""


class ParseError(ReproError):
    """A query text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """A logical plan could not be built or is semantically invalid
    (unknown stream, ambiguous column, aggregate misuse...)."""


class StateError(ReproError):
    """Operator or store state was used incorrectly (e.g. reading a closed
    store, checkpointing mid-barrier)."""


class BrokerError(ReproError):
    """Misuse of the message broker (unknown topic, bad offset...)."""


class GraphError(ReproError):
    """Malformed graph data or graph query."""


class RSPError(ReproError):
    """Malformed RDF data or RSP-QL query."""
