"""Monotonicity analysis and the incremental rewrite (paper Section 3.2).

Barbarà's characterisation: a continuous query is monotonic when growing the
input can only grow the output.  Monotonic queries admit an *incremental*
evaluation — re-using all previously produced results and touching only the
arrived delta — which is the rewriting the paper credits with "paving the
road to incremental execution".

This module provides:

* a static classifier over operator trees (:func:`classify_plan`) using the
  standard rules (selection/projection/join/union preserve monotonicity;
  difference, aggregation and expiring windows destroy it);
* :class:`IncrementalSPJ`, the incremental rewrite for monotonic
  select-project-join queries over append-only streams: it maintains hash
  indexes on the join keys and, per arrival, emits exactly the *new* result
  tuples.  The C3 benchmark measures its speedup over from-scratch
  re-evaluation.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Protocol, Sequence

from repro.core.relation import Bag
from repro.core.time import Timestamp


class MonotonicityClass(enum.Enum):
    """Verdict of the static analysis."""

    MONOTONIC = "monotonic"
    NON_MONOTONIC = "non-monotonic"
    UNKNOWN = "unknown"


class PlanNode(Protocol):
    """Structural protocol for analysable operator trees.

    Any object exposing an operator name and children can be classified —
    the CQL and SQL logical plans both satisfy this protocol.
    """

    @property
    def op_name(self) -> str: ...

    @property
    def children(self) -> Sequence["PlanNode"]: ...


#: Operators that preserve monotonicity when all inputs are monotonic.
_PRESERVING = frozenset({
    "scan", "stream_scan", "relation_scan", "select", "filter", "project",
    "rename", "join", "equijoin", "cross", "union", "distinct", "extend",
    "map", "flat_map", "istream",
    # Pass-through plumbing in the dataflow/DSL frontends: repartitioning
    # and sinks forward elements unchanged.
    "key_by", "rebalance", "sink",
})

#: Operators that are non-monotonic regardless of their inputs.
_BREAKING = frozenset({
    "difference", "except", "aggregate", "group_aggregate", "dstream",
    "window", "range_window", "row_window", "partitioned_window",
    "rstream", "top_k", "limit", "negation", "anti_join",
})

#: Window-like operators that *do* preserve monotonicity because nothing
#: ever expires from them.
_GROWING_WINDOWS = frozenset({"unbounded_window", "landmark_window"})


def classify_operator(op_name: str) -> MonotonicityClass:
    """Classify a single operator by name (case-insensitive)."""
    name = op_name.lower()
    if name in _GROWING_WINDOWS or name in _PRESERVING:
        return MonotonicityClass.MONOTONIC
    if name in _BREAKING:
        return MonotonicityClass.NON_MONOTONIC
    return MonotonicityClass.UNKNOWN


def classify_plan(node: PlanNode) -> MonotonicityClass:
    """Classify an operator tree bottom-up.

    A plan is monotonic only when every operator in it preserves
    monotonicity; a single breaking operator makes the plan non-monotonic;
    unknown operators make the verdict unknown (conservative).
    """
    verdict = classify_operator(node.op_name)
    if verdict is MonotonicityClass.NON_MONOTONIC:
        return verdict
    saw_unknown = verdict is MonotonicityClass.UNKNOWN
    for child in node.children:
        child_verdict = classify_plan(child)
        if child_verdict is MonotonicityClass.NON_MONOTONIC:
            return MonotonicityClass.NON_MONOTONIC
        if child_verdict is MonotonicityClass.UNKNOWN:
            saw_unknown = True
    if saw_unknown:
        return MonotonicityClass.UNKNOWN
    return MonotonicityClass.MONOTONIC


# ---------------------------------------------------------------------------
# The incremental rewrite for monotonic SPJ queries
# ---------------------------------------------------------------------------


class IncrementalSPJ:
    """Incremental select-project-join over two append-only streams.

    Implements the rewriting of Section 3.2: because the query is monotonic
    on append-only inputs, the continuous result is the *union of deltas*,
    and each delta depends only on the new tuple joined against the other
    side's full history.  The rewrite therefore maintains one hash index per
    side and runs in O(matches) per arrival instead of O(history).

    The one-shot equivalent (for validation) is: select each side by its
    predicate, equi-join on the key, project with ``project_fn``.
    """

    def __init__(self,
                 left_predicate: Callable[[Any], bool],
                 right_predicate: Callable[[Any], bool],
                 left_key: Callable[[Any], Any],
                 right_key: Callable[[Any], Any],
                 project_fn: Callable[[Any, Any], Any] = lambda l, r: (l, r),
                 ) -> None:
        self._left_predicate = left_predicate
        self._right_predicate = right_predicate
        self._left_key = left_key
        self._right_key = right_key
        self._project = project_fn
        self._left_index: dict[Any, list[Any]] = {}
        self._right_index: dict[Any, list[Any]] = {}
        self._result = Bag()

    @property
    def result(self) -> Bag:
        """The cumulative continuous result so far."""
        return self._result

    @property
    def state_size(self) -> int:
        """Number of indexed tuples (both sides)."""
        return (sum(len(v) for v in self._left_index.values())
                + sum(len(v) for v in self._right_index.values()))

    def on_left(self, value: Any) -> list[Any]:
        """Process a left-side arrival; return newly produced results."""
        if not self._left_predicate(value):
            return []
        key = self._left_key(value)
        self._left_index.setdefault(key, []).append(value)
        produced = [self._project(value, match)
                    for match in self._right_index.get(key, ())]
        for item in produced:
            self._result.add(item)
        return produced

    def on_right(self, value: Any) -> list[Any]:
        """Process a right-side arrival; return newly produced results."""
        if not self._right_predicate(value):
            return []
        key = self._right_key(value)
        self._right_index.setdefault(key, []).append(value)
        produced = [self._project(match, value)
                    for match in self._left_index.get(key, ())]
        for item in produced:
            self._result.add(item)
        return produced

    def one_shot(self, left_values: Iterable[Any],
                 right_values: Iterable[Any]) -> Bag:
        """The non-incremental reference evaluation over full histories."""
        left_index: dict[Any, list[Any]] = {}
        for value in left_values:
            if self._left_predicate(value):
                left_index.setdefault(self._left_key(value), []).append(value)
        out = Bag()
        for value in right_values:
            if not self._right_predicate(value):
                continue
            for match in left_index.get(self._right_key(value), ()):
                out.add(self._project(match, value))
        return out


class AppendOnlyLog:
    """A minimal append-only relation with subscriber callbacks.

    Models Terry et al.'s append-only databases: no deletes, full history
    retained, and continuous queries notified on every append.  Used by
    examples and the Figure 1 benchmark.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[Any, Timestamp]] = []
        self._subscribers: list[Callable[[Any, Timestamp], None]] = []

    def subscribe(self, callback: Callable[[Any, Timestamp], None]) -> None:
        """Register a continuous query's arrival callback."""
        self._subscribers.append(callback)

    def append(self, value: Any, timestamp: Timestamp) -> None:
        """Append an entry and notify all registered continuous queries."""
        if self._entries and timestamp < self._entries[-1][1]:
            raise ValueError("append-only log requires non-decreasing time")
        self._entries.append((value, timestamp))
        for callback in self._subscribers:
            callback(value, timestamp)

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[tuple[Any, Timestamp]]:
        """The full history (copies)."""
        return list(self._entries)
