"""repro — an executable companion to "An Overview of Continuous Querying
in (Modern) Data Systems" (Bonifati & Tommasini, SIGMOD 2024).

The library implements, as working laptop-scale Python systems, every family
of continuous-query system the survey covers:

* :mod:`repro.core` — streams, time-varying relations, windows, the CQL
  S2R/R2R/R2S trichotomy, continuous semantics, monotonicity, snapshot
  reducibility (paper Sections 2-3).
* :mod:`repro.cql` — the CQL continuous query language: parser, algebra,
  planner, incremental executor (Section 3.1).
* :mod:`repro.dsms` — a Data Stream Management System runtime with the
  Stream/Store/Scratch/Throw architecture of Figure 3 (Section 3.2).
* :mod:`repro.dataflow` — the Google Dataflow model: ParDo, GroupByKey,
  event-time windows, triggers, watermarks (Section 4.1.1).
* :mod:`repro.dsl` — a Flink/Kafka-Streams-style functional DSL and the
  stream/table duality (Section 4.1.2).
* :mod:`repro.sql` — a streaming SQL dialect with a rule-based optimizer and
  a volcano cost-based planner (Sections 4.1.3, 4.2).
* :mod:`repro.runtime` — the streaming-system substrate of Figure 5:
  partitioned broker, LSM key-value state store, actors, job DAGs,
  checkpointing (Section 4.2).
* :mod:`repro.viewmaint` — streaming-database view maintenance: eager,
  lazy, split ("meet me halfway"), and higher-order delta strategies
  (Section 5.1).
* :mod:`repro.graph` — streaming property graphs and incremental regular
  path queries (Section 5.2).
* :mod:`repro.rsp` — RDF stream processing with RSP-QL semantics
  (Section 5.2).
* :mod:`repro.bench` — deterministic workload generators and the experiment
  harness behind EXPERIMENTS.md.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
