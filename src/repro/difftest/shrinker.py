"""Delta-debugging shrinker for failing differential cases.

Given a failing (query, stream) pair and the oracle, the shrinker

1. minimises the stream contents with the classic ddmin algorithm over
   the flattened element list,
2. simplifies surviving row values (constants towards 0 / 'a' / NULL),
3. tries a fixed set of query-text simplifications (dropping the R2S
   wrapper, DISTINCT, WHERE/HAVING clauses, shrinking window params),

keeping every transformation only if the *same divergence kind* still
reproduces — so shrinking cannot wander off to a different bug.  The
result can be emitted as a standalone pytest file via :func:`emit_repro`.
"""

from __future__ import annotations

import pathlib
import re
from typing import Any, Callable

from repro.difftest.generators import Case, CoreWindowCase
from repro.difftest.oracle import Divergence, run_case, run_core_window_case

#: An oracle predicate: returns the Divergence a case produces (or None).
Oracle = Callable[[Case], Divergence | None]


def _flatten(case: Case) -> list[tuple[str, dict[str, Any], int]]:
    return [(name, row, t)
            for name, rows in case.streams.items() for row, t in rows]


def _rebuild(case: Case,
             elements: list[tuple[str, dict[str, Any], int]]) -> Case:
    streams: dict[str, list[tuple[dict[str, Any], int]]] = {
        name: [] for name in case.streams}
    for name, row, t in elements:
        streams[name].append((row, t))
    return Case(query=case.query, streams=streams, seed=case.seed)


def _same_failure(case: Case, kind: str, oracle: Oracle) -> bool:
    divergence = oracle(case)
    return divergence is not None and divergence.kind == kind


def _ddmin(elements: list, test: Callable[[list], bool]) -> list:
    """Classic ddmin: greedily remove chunks while the test still fails."""
    granularity = 2
    while len(elements) >= 2:
        chunk = max(1, len(elements) // granularity)
        reduced = False
        start = 0
        while start < len(elements):
            candidate = elements[:start] + elements[start + chunk:]
            if candidate != elements and test(candidate):
                elements = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(elements):
                break
            granularity = min(len(elements), granularity * 2)
    return elements


def _simplify_rows(case: Case, kind: str, oracle: Oracle) -> Case:
    """Push surviving field values towards canonical small constants."""
    elements = _flatten(case)
    for index, (name, row, t) in enumerate(elements):
        for field_name, value in list(row.items()):
            if value in (0, "a", None):
                continue
            for replacement in (0 if isinstance(value, int) else "a",):
                candidate_row = dict(row)
                candidate_row[field_name] = replacement
                candidate = elements.copy()
                candidate[index] = (name, candidate_row, t)
                if _same_failure(_rebuild(case, candidate), kind, oracle):
                    elements = candidate
                    row = candidate_row
                    break
    return _rebuild(case, elements)


#: Textual query simplifications, tried in order, each kept only when the
#: divergence survives.  Regexes stay deliberately conservative: a missed
#: simplification only costs minimality, never correctness.
_QUERY_REWRITES: list[tuple[str, str]] = [
    (r"\b(ISTREAM|DSTREAM|RSTREAM)\s+", ""),
    (r"\bDISTINCT\s+", ""),
    (r"\s+HAVING\s+.+$", ""),
    (r"\s+WHERE\s+(?P<p>[^,]+?)(?=\s+GROUP BY|$)", ""),
    (r"\[Range \d+( Slide \d+)?\]", "[Range 1]"),
    (r"\[Rows [2-9]\]", "[Rows 1]"),
    (r"\[Partition By room Rows \d+\]", "[Rows 1]"),
]


def _simplify_query(case: Case, kind: str, oracle: Oracle) -> Case:
    for pattern, replacement in _QUERY_REWRITES:
        candidate_text = re.sub(pattern, replacement, case.query)
        candidate_text = re.sub(r"\s+", " ", candidate_text).strip()
        if candidate_text == case.query:
            continue
        candidate = Case(query=candidate_text, streams=case.streams,
                         seed=case.seed)
        if _same_failure(candidate, kind, oracle):
            case = candidate
    return case


def shrink_case(case: Case, divergence: Divergence,
                oracle: Oracle = run_case) -> tuple[Case, Divergence]:
    """Minimise ``case`` while preserving ``divergence.kind``.

    Returns the shrunk case and its (re-computed) divergence.
    """
    kind = divergence.kind
    if not _same_failure(case, kind, oracle):
        # Not reproducible (e.g. flaky external state): return unchanged.
        return case, divergence
    elements = _ddmin(
        _flatten(case),
        lambda candidate: _same_failure(
            _rebuild(case, candidate), kind, oracle))
    case = _rebuild(case, elements)
    case = _simplify_rows(case, kind, oracle)
    case = _simplify_query(case, kind, oracle)
    final = oracle(case)
    assert final is not None and final.kind == kind
    return case, final


# ---------------------------------------------------------------------------
# Standalone repro emission
# ---------------------------------------------------------------------------

_REPRO_TEMPLATE = '''"""Auto-generated differential-test counterexample.

Shrunk by repro.difftest.shrinker; run with
``PYTHONPATH=src python -m pytest {filename} -q``.
It fails while the divergence below reproduces and passes once fixed.

Original divergence: {divergence}
"""

from repro.difftest import Case, run_case


def test_shrunk_counterexample():
    case = Case(
        query={query!r},
        streams={streams!r},
    )
    divergence = run_case(case)
    assert divergence is None, f"evaluators diverge: {{divergence}}"
'''


def emit_repro(case: Case, divergence: Divergence,
               path: str | pathlib.Path) -> pathlib.Path:
    """Write a standalone pytest file reproducing ``case``."""
    path = pathlib.Path(path)
    path.write_text(_REPRO_TEMPLATE.format(
        filename=path.name,
        divergence=str(divergence),
        query=case.query,
        streams=case.streams,
    ), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Core-window cases (sparse-vs-dense leg)
# ---------------------------------------------------------------------------


def shrink_core_case(case: CoreWindowCase, divergence: Divergence
                     ) -> tuple[CoreWindowCase, Divergence]:
    """ddmin the stream rows of a failing core-window case."""
    kind = divergence.kind

    def fails(rows: list) -> bool:
        result = run_core_window_case(
            CoreWindowCase(window=case.window, rows=rows, seed=case.seed))
        return result is not None and result.kind == kind

    if not fails(case.rows):
        return case, divergence
    rows = _ddmin(list(case.rows), fails)
    shrunk = CoreWindowCase(window=case.window, rows=rows, seed=case.seed)
    final = run_core_window_case(shrunk)
    assert final is not None and final.kind == kind
    return shrunk, final


def _window_expr(window: Any) -> str:
    """A valid constructor expression for ``window`` (reprs are for humans
    and use display names like ``range=`` that the constructors reject)."""
    from repro.core import windows as w

    if isinstance(window, w.SteppedRangeWindow):
        return f"SteppedRangeWindow({window.range}, {window.slide})"
    if isinstance(window, w.RangeWindow):
        return f"RangeWindow({window.range})"
    if isinstance(window, w.SlidingWindow):
        return (f"SlidingWindow({window.size}, {window.slide}, "
                f"{window.offset})")
    if isinstance(window, w.TumblingWindow):
        return f"TumblingWindow({window.size}, {window.offset})"
    if isinstance(window, w.LandmarkWindow):
        return f"LandmarkWindow({window.landmark})"
    if isinstance(window, w.SessionWindow):
        return f"SessionWindow({window.gap})"
    if isinstance(window, w.CountWindow):
        return f"CountWindow({window.rows})"
    if isinstance(window, w.NowWindow):
        return "NowWindow()"
    if isinstance(window, w.UnboundedWindow):
        return "UnboundedWindow()"
    raise ValueError(f"no constructor expression for {window!r}")


_CORE_REPRO_TEMPLATE = '''"""Auto-generated core S2R counterexample (sparse-vs-dense leg).

Shrunk by repro.difftest.shrinker; run with
``PYTHONPATH=src python -m pytest {filename} -q``.

Original divergence: {divergence}
"""

from repro.core.windows import *  # noqa: F401,F403 — window repr below
from repro.difftest import CoreWindowCase, run_core_window_case


def test_shrunk_core_counterexample():
    case = CoreWindowCase(
        window={window},
        rows={rows!r},
    )
    divergence = run_core_window_case(case)
    assert divergence is None, f"S2R change-log diverges: {{divergence}}"
'''


def emit_core_repro(case: CoreWindowCase, divergence: Divergence,
                    path: str | pathlib.Path) -> pathlib.Path:
    """Write a standalone pytest file reproducing a core-window case."""
    path = pathlib.Path(path)
    path.write_text(_CORE_REPRO_TEMPLATE.format(
        filename=path.name,
        divergence=str(divergence),
        window=_window_expr(case.window),
        rows=case.rows,
    ), encoding="utf-8")
    return path


_VIEW_REPRO_TEMPLATE = '''"""Auto-generated dynamic-table counterexample.

View cases are emitted whole (the event script's meaning depends on DAG
order, so ddmin slicing would mostly produce invalid cases); run with
``PYTHONPATH=src python -m pytest {filename} -q``.

Original divergence: {divergence}
"""

from repro.difftest.generators import ViewCase
from repro.difftest.oracle import run_view_case


def test_view_counterexample():
    case = ViewCase(
        views={views!r},
        initial={initial!r},
        events={events!r},
    )
    divergence = run_view_case(case)
    assert divergence is None, f"view maintenance diverges: {{divergence}}"
'''


def emit_view_repro(case, divergence: Divergence,
                    path: str | pathlib.Path) -> pathlib.Path:
    """Write a standalone pytest file reproducing a dynamic-table case."""
    path = pathlib.Path(path)
    path.write_text(_VIEW_REPRO_TEMPLATE.format(
        filename=path.name,
        divergence=str(divergence),
        views=case.views,
        initial=case.initial,
        events=case.events,
    ), encoding="utf-8")
    return path
