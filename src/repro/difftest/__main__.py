"""CLI for differential fuzz campaigns.

Bounded seeded run (what CI does, also reachable via ``make fuzz``)::

    PYTHONPATH=src python -m repro.difftest --cases 500 --seed 0

Long unseeded run, emitting repro files for anything it finds::

    PYTHONPATH=src python -m repro.difftest --cases 20000 --unseeded \\
        --repro-dir ./difftest-repros --bench-dir .
"""

from __future__ import annotations

import argparse
import sys

from repro.difftest.runner import fuzz


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.difftest",
        description="Differential fuzzing across the three evaluators.")
    parser.add_argument("--cases", type=int, default=500,
                        help="CQL cases to run (default 500)")
    parser.add_argument("--core-cases", type=int, default=200,
                        help="core window cases to run (default 200)")
    parser.add_argument("--view-cases", type=int, default=100,
                        help="dynamic-table cases to run (default 100)")
    parser.add_argument("--rescale-cases", type=int, default=0,
                        help="extra cases through only the live-rescale "
                             "leg (every regular case runs it too; "
                             "default 0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--unseeded", action="store_true",
                        help="draw fresh entropy instead of --seed")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without minimising them")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many divergences (default 5)")
    parser.add_argument("--repro-dir", default=None,
                        help="emit standalone pytest repro files here")
    parser.add_argument("--bench-dir", default=None,
                        help="write BENCH_difftest_fuzz.json here")
    args = parser.parse_args(argv)

    report = fuzz(
        seed=None if args.unseeded else args.seed,
        cases=args.cases,
        core_cases=args.core_cases,
        view_cases=args.view_cases,
        rescale_cases=args.rescale_cases,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        repro_dir=args.repro_dir,
        bench_dir=args.bench_dir,
    )
    print(report.summary())
    for case, divergence in report.failures:
        print(f"  CQL divergence: {divergence}")
        print(f"    query: {case.query}")
        print(f"    streams: {case.streams}")
    for case, divergence in report.core_failures:
        print(f"  core divergence: {divergence}")
        print(f"    window: {case.window!r} rows: {case.rows}")
    for case, divergence in report.view_failures:
        print(f"  view divergence: {divergence}")
        print(f"    views: {case.views} events: {case.events}")
    for case, divergence in report.rescale_failures:
        print(f"  rescale divergence: {divergence}")
        print(f"    query: {case.query}")
        print(f"    streams: {case.streams}")
    for problem in report.consistency_problems:
        print(f"  consistency: {problem}")
    for path in report.repro_paths:
        print(f"  repro written: {path}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
