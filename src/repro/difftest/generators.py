"""Seeded generators for differential-testing cases.

Two kinds of cases are generated:

* :class:`Case` — a CQL query text plus raw ``(row, timestamp)`` pairs per
  input stream.  Kept as plain JSON-able data so the shrinker can slice it
  and the repro emitter can embed it literally in a pytest file.
* :class:`CoreWindowCase` — a window object from ``core/windows.py`` plus a
  record stream, for the sparse-vs-dense S2R leg that covers the window
  kinds CQL's surface syntax cannot express (tumbling, sliding, landmark,
  session).

Stream profiles deliberately stress the executor's weak spots: bursty
same-instant ties, duplicate-heavy rows, zero-timestamp pile-ups and
NULL-heavy values.  Timestamps are always ``>= 0`` — the semantics layer
rejects negative time, and the oracle separately asserts all three
evaluators agree on that rejection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core import Schema, Stream
from repro.core.windows import (
    LandmarkWindow,
    NowWindow,
    RangeWindow,
    SessionWindow,
    SlidingWindow,
    SteppedRangeWindow,
    TumblingWindow,
    UnboundedWindow,
)
from repro.cql import CQLEngine

OBS_SCHEMA = Schema(["id", "room", "temp"])
ALERTS_SCHEMA = Schema(["id", "level"])
ROOMS_SCHEMA = Schema(["room", "floor"])
ROOMS_ROWS = ({"room": "a", "floor": 1}, {"room": "b", "floor": 2})

#: (stream row-domain) — small domains so joins and duplicates hit often.
_ROOMS = ("a", "b")
_TEMPS = (None, None, 0, 1, 5, 30)


@dataclass
class Case:
    """One CQL differential case: a query plus raw stream contents."""

    query: str
    streams: dict[str, list[tuple[dict[str, Any], int]]]
    seed: int | None = None

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.streams.values())


@dataclass
class CoreWindowCase:
    """One core S2R case: a window assigner plus raw stream contents."""

    window: Any
    rows: list[tuple[dict[str, Any], int]] = field(default_factory=list)
    seed: int | None = None


def build_engine() -> CQLEngine:
    """A CQL engine with the fixed difftest catalog registered."""
    engine = CQLEngine()
    engine.register_stream("Obs", OBS_SCHEMA)
    engine.register_stream("Alerts", ALERTS_SCHEMA)
    engine.register_relation("Rooms", ROOMS_SCHEMA, ROOMS_ROWS)
    return engine


def build_streams(case: Case) -> dict[str, Stream]:
    """Materialise a case's raw pairs as event-time streams."""
    schemas = {"Obs": OBS_SCHEMA, "Alerts": ALERTS_SCHEMA}
    return {name: Stream.of_records(schemas[name], rows)
            for name, rows in case.streams.items()}


# ---------------------------------------------------------------------------
# Query generation
# ---------------------------------------------------------------------------


def _window(rng: random.Random, partition_ok: bool = True) -> str:
    r = rng.randint(1, 10)
    s = rng.randint(1, 10)
    options = [
        "",                              # unbounded
        "[Now]",
        f"[Range {r}]",
        f"[Range {r} Slide {s}]",
        f"[Rows {rng.randint(1, 4)}]",
    ]
    if partition_ok:
        options.append(f"[Partition By room Rows {rng.randint(1, 3)}]")
    return rng.choice(options)


def _r2s(rng: random.Random) -> str:
    return rng.choice(["", "ISTREAM ", "DSTREAM ", "RSTREAM "])


def _aggregate(rng: random.Random) -> str:
    return rng.choice([
        "COUNT(*) AS n", "COUNT(temp) AS n", "SUM(temp) AS n",
        "AVG(temp) AS n", "MIN(temp) AS n", "MAX(temp) AS n",
    ])


def gen_query(rng: random.Random) -> str:
    """One random CQL query over the fixed catalog.

    Shapes cover projection with scalar expressions, filters, all
    ``AggregateKind``s (global, grouped, HAVING, DISTINCT), stream-stream
    and stream-relation joins, every set operation, and all three R2S
    operators — the surface the oracle must agree on.
    """
    shape = rng.randrange(9)
    w1 = _window(rng)
    w2 = _window(rng, partition_ok=False)
    r2s = _r2s(rng)
    agg = _aggregate(rng)
    if shape == 0:
        return f"SELECT {r2s}id, temp FROM Obs {w1}"
    if shape == 1:
        # The dialect has no IS NULL; COALESCE sentinels and 3VL NOT probe
        # the same NULL paths through the shared expression compiler.
        predicate = rng.choice(
            ["temp > 1", "COALESCE(temp, 0 - 1) < 0",
             "COALESCE(temp, 0 - 1) >= 0", "NOT temp > 1",
             "room = 'a'", "temp + 1 >= 2"])
        return f"SELECT {r2s}id, room FROM Obs {w1} WHERE {predicate}"
    if shape == 2:
        expr = rng.choice(
            ["temp + 1 AS t1", "temp * 2 AS t1", "COALESCE(temp, 0) AS t1",
             "ABS(temp - 5) AS t1"])
        return f"SELECT {r2s}id, {expr} FROM Obs {w1}"
    if shape == 3:
        return f"SELECT {r2s}{agg} FROM Obs {w1}"
    if shape == 4:
        having = (" HAVING COUNT(*) >= 2" if rng.random() < 0.5 else "")
        return (f"SELECT {r2s}room, {agg} FROM Obs {w1} "
                f"GROUP BY room{having}")
    if shape == 5:
        return (f"SELECT {r2s}O.id, A.level FROM Obs O {w1}, "
                f"Alerts A {w2} WHERE O.id = A.id")
    if shape == 6:
        return (f"SELECT {r2s}O.id, R.floor FROM Obs O {w1}, "
                f"Rooms R WHERE O.room = R.room")
    if shape == 7:
        kind = rng.choice(["UNION ALL", "EXCEPT ALL", "INTERSECT ALL",
                           "UNION", "EXCEPT", "INTERSECT"])
        left = f"SELECT id FROM Obs {w1}"
        right = f"SELECT id FROM Alerts {w2}"
        if r2s:
            return f"{r2s.strip()} ({left} {kind} {right})"
        return f"{left} {kind} {right}"
    return f"SELECT {r2s}DISTINCT room, temp FROM Obs {w1}"


# ---------------------------------------------------------------------------
# Stream generation
# ---------------------------------------------------------------------------


def _gen_rows(rng: random.Random, rowfn, count: int,
              profile: str) -> list[tuple[dict[str, Any], int]]:
    if profile == "bursty":
        gaps = [0, 0, 0, 0, 1, 1, 2, 9]
    elif profile == "zero-heavy":
        gaps = [0, 0, 0, 0, 0, 0, 1, 3]
    elif profile == "sparse":
        gaps = [1, 2, 3, 5, 7, 11]
    else:  # mixed
        gaps = [0, 0, 1, 1, 2, 5, 9]
    t = 0
    rows: list[tuple[dict[str, Any], int]] = []
    for _ in range(count):
        t += rng.choice(gaps)
        row = rowfn()
        rows.append((row, t))
        # Duplicate-heavy: sometimes repeat the identical row at the same
        # instant (bag semantics must preserve the multiplicity).
        if profile == "duplicate-heavy" and rng.random() < 0.5:
            rows.append((dict(row), t))
    return rows


def gen_streams(rng: random.Random) -> dict[str, list[tuple[dict, int]]]:
    profile = rng.choice(
        ["bursty", "zero-heavy", "sparse", "mixed", "duplicate-heavy"])
    obs = _gen_rows(
        rng,
        lambda: {"id": rng.randint(0, 2), "room": rng.choice(_ROOMS),
                 "temp": rng.choice(_TEMPS)},
        rng.randint(0, 10), profile)
    alerts = _gen_rows(
        rng,
        lambda: {"id": rng.randint(0, 2), "level": rng.randint(0, 3)},
        rng.randint(0, 5), profile)
    return {"Obs": obs, "Alerts": alerts}


def gen_case(rng: random.Random, seed: int | None = None) -> Case:
    return Case(query=gen_query(rng), streams=gen_streams(rng), seed=seed)


# ---------------------------------------------------------------------------
# Core-window cases (window kinds CQL cannot express)
# ---------------------------------------------------------------------------


def gen_core_window(rng: random.Random) -> Any:
    size = rng.randint(1, 9)
    slide = rng.randint(1, 9)
    offset = rng.randint(0, 9)
    return rng.choice([
        TumblingWindow(size, offset),
        SlidingWindow(size, slide, offset),
        RangeWindow(size),
        SteppedRangeWindow(size, slide),
        NowWindow(),
        UnboundedWindow(),
        LandmarkWindow(rng.randint(0, 6)),
        SessionWindow(rng.randint(1, 5)),
    ])


def gen_core_window_case(rng: random.Random,
                         seed: int | None = None) -> CoreWindowCase:
    rows = _gen_rows(
        rng,
        lambda: {"id": rng.randint(0, 2), "v": rng.randint(0, 4)},
        rng.randint(0, 8),
        rng.choice(["bursty", "zero-heavy", "sparse", "mixed"]))
    return CoreWindowCase(window=gen_core_window(rng), rows=rows, seed=seed)
