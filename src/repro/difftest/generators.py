"""Seeded generators for differential-testing cases.

Two kinds of cases are generated:

* :class:`Case` — a CQL query text plus raw ``(row, timestamp)`` pairs per
  input stream.  Kept as plain JSON-able data so the shrinker can slice it
  and the repro emitter can embed it literally in a pytest file.
* :class:`CoreWindowCase` — a window object from ``core/windows.py`` plus a
  record stream, for the sparse-vs-dense S2R leg that covers the window
  kinds CQL's surface syntax cannot express (tumbling, sliding, landmark,
  session).

Stream profiles deliberately stress the executor's weak spots: bursty
same-instant ties, duplicate-heavy rows, zero-timestamp pile-ups and
NULL-heavy values.  Timestamps are always ``>= 0`` — the semantics layer
rejects negative time, and the oracle separately asserts all three
evaluators agree on that rejection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core import Schema, Stream
from repro.core.windows import (
    LandmarkWindow,
    NowWindow,
    RangeWindow,
    SessionWindow,
    SlidingWindow,
    SteppedRangeWindow,
    TumblingWindow,
    UnboundedWindow,
)
from repro.cql import CQLEngine

OBS_SCHEMA = Schema(["id", "room", "temp"])
ALERTS_SCHEMA = Schema(["id", "level"])
ROOMS_SCHEMA = Schema(["room", "floor"])
ROOMS_ROWS = ({"room": "a", "floor": 1}, {"room": "b", "floor": 2})

#: (stream row-domain) — small domains so joins and duplicates hit often.
_ROOMS = ("a", "b")
_TEMPS = (None, None, 0, 1, 5, 30)


@dataclass
class Case:
    """One CQL differential case: a query plus raw stream contents."""

    query: str
    streams: dict[str, list[tuple[dict[str, Any], int]]]
    seed: int | None = None

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.streams.values())


@dataclass
class CoreWindowCase:
    """One core S2R case: a window assigner plus raw stream contents."""

    window: Any
    rows: list[tuple[dict[str, Any], int]] = field(default_factory=list)
    seed: int | None = None


def build_engine() -> CQLEngine:
    """A CQL engine with the fixed difftest catalog registered."""
    engine = CQLEngine()
    engine.register_stream("Obs", OBS_SCHEMA)
    engine.register_stream("Alerts", ALERTS_SCHEMA)
    engine.register_relation("Rooms", ROOMS_SCHEMA, ROOMS_ROWS)
    return engine


def build_streams(case: Case) -> dict[str, Stream]:
    """Materialise a case's raw pairs as event-time streams."""
    schemas = {"Obs": OBS_SCHEMA, "Alerts": ALERTS_SCHEMA}
    return {name: Stream.of_records(schemas[name], rows)
            for name, rows in case.streams.items()}


# ---------------------------------------------------------------------------
# Query generation
# ---------------------------------------------------------------------------


def _window(rng: random.Random, partition_ok: bool = True) -> str:
    r = rng.randint(1, 10)
    s = rng.randint(1, 10)
    options = [
        "",                              # unbounded
        "[Now]",
        f"[Range {r}]",
        f"[Range {r} Slide {s}]",
        f"[Rows {rng.randint(1, 4)}]",
    ]
    if partition_ok:
        options.append(f"[Partition By room Rows {rng.randint(1, 3)}]")
    return rng.choice(options)


def _r2s(rng: random.Random) -> str:
    return rng.choice(["", "ISTREAM ", "DSTREAM ", "RSTREAM "])


def _aggregate(rng: random.Random) -> str:
    return rng.choice([
        "COUNT(*) AS n", "COUNT(temp) AS n", "SUM(temp) AS n",
        "AVG(temp) AS n", "MIN(temp) AS n", "MAX(temp) AS n",
    ])


def gen_query(rng: random.Random) -> str:
    """One random CQL query over the fixed catalog.

    Shapes cover projection with scalar expressions, filters, all
    ``AggregateKind``s (global, grouped, HAVING, DISTINCT), stream-stream
    and stream-relation joins, every set operation, and all three R2S
    operators — the surface the oracle must agree on.
    """
    shape = rng.randrange(9)
    w1 = _window(rng)
    w2 = _window(rng, partition_ok=False)
    r2s = _r2s(rng)
    agg = _aggregate(rng)
    if shape == 0:
        return f"SELECT {r2s}id, temp FROM Obs {w1}"
    if shape == 1:
        # The dialect has no IS NULL; COALESCE sentinels and 3VL NOT probe
        # the same NULL paths through the shared expression compiler.
        predicate = rng.choice(
            ["temp > 1", "COALESCE(temp, 0 - 1) < 0",
             "COALESCE(temp, 0 - 1) >= 0", "NOT temp > 1",
             "room = 'a'", "temp + 1 >= 2"])
        return f"SELECT {r2s}id, room FROM Obs {w1} WHERE {predicate}"
    if shape == 2:
        expr = rng.choice(
            ["temp + 1 AS t1", "temp * 2 AS t1", "COALESCE(temp, 0) AS t1",
             "ABS(temp - 5) AS t1"])
        return f"SELECT {r2s}id, {expr} FROM Obs {w1}"
    if shape == 3:
        return f"SELECT {r2s}{agg} FROM Obs {w1}"
    if shape == 4:
        having = (" HAVING COUNT(*) >= 2" if rng.random() < 0.5 else "")
        return (f"SELECT {r2s}room, {agg} FROM Obs {w1} "
                f"GROUP BY room{having}")
    if shape == 5:
        return (f"SELECT {r2s}O.id, A.level FROM Obs O {w1}, "
                f"Alerts A {w2} WHERE O.id = A.id")
    if shape == 6:
        return (f"SELECT {r2s}O.id, R.floor FROM Obs O {w1}, "
                f"Rooms R WHERE O.room = R.room")
    if shape == 7:
        kind = rng.choice(["UNION ALL", "EXCEPT ALL", "INTERSECT ALL",
                           "UNION", "EXCEPT", "INTERSECT"])
        left = f"SELECT id FROM Obs {w1}"
        right = f"SELECT id FROM Alerts {w2}"
        if r2s:
            return f"{r2s.strip()} ({left} {kind} {right})"
        return f"{left} {kind} {right}"
    return f"SELECT {r2s}DISTINCT room, temp FROM Obs {w1}"


# ---------------------------------------------------------------------------
# Stream generation
# ---------------------------------------------------------------------------


def _gen_rows(rng: random.Random, rowfn, count: int,
              profile: str) -> list[tuple[dict[str, Any], int]]:
    if profile == "bursty":
        gaps = [0, 0, 0, 0, 1, 1, 2, 9]
    elif profile == "zero-heavy":
        gaps = [0, 0, 0, 0, 0, 0, 1, 3]
    elif profile == "sparse":
        gaps = [1, 2, 3, 5, 7, 11]
    else:  # mixed
        gaps = [0, 0, 1, 1, 2, 5, 9]
    t = 0
    rows: list[tuple[dict[str, Any], int]] = []
    for _ in range(count):
        t += rng.choice(gaps)
        row = rowfn()
        rows.append((row, t))
        # Duplicate-heavy: sometimes repeat the identical row at the same
        # instant (bag semantics must preserve the multiplicity).
        if profile == "duplicate-heavy" and rng.random() < 0.5:
            rows.append((dict(row), t))
    return rows


def gen_streams(rng: random.Random) -> dict[str, list[tuple[dict, int]]]:
    profile = rng.choice(
        ["bursty", "zero-heavy", "sparse", "mixed", "duplicate-heavy"])
    obs = _gen_rows(
        rng,
        lambda: {"id": rng.randint(0, 2), "room": rng.choice(_ROOMS),
                 "temp": rng.choice(_TEMPS)},
        rng.randint(0, 10), profile)
    alerts = _gen_rows(
        rng,
        lambda: {"id": rng.randint(0, 2), "level": rng.randint(0, 3)},
        rng.randint(0, 5), profile)
    return {"Obs": obs, "Alerts": alerts}


def gen_case(rng: random.Random, seed: int | None = None) -> Case:
    return Case(query=gen_query(rng), streams=gen_streams(rng), seed=seed)


# ---------------------------------------------------------------------------
# Core-window cases (window kinds CQL cannot express)
# ---------------------------------------------------------------------------


def gen_core_window(rng: random.Random) -> Any:
    size = rng.randint(1, 9)
    slide = rng.randint(1, 9)
    offset = rng.randint(0, 9)
    return rng.choice([
        TumblingWindow(size, offset),
        SlidingWindow(size, slide, offset),
        RangeWindow(size),
        SteppedRangeWindow(size, slide),
        NowWindow(),
        UnboundedWindow(),
        LandmarkWindow(rng.randint(0, 6)),
        SessionWindow(rng.randint(1, 5)),
    ])


def gen_core_window_case(rng: random.Random,
                         seed: int | None = None) -> CoreWindowCase:
    rows = _gen_rows(
        rng,
        lambda: {"id": rng.randint(0, 2), "v": rng.randint(0, 4)},
        rng.randint(0, 8),
        rng.choice(["bursty", "zero-heavy", "sparse", "mixed"]))
    return CoreWindowCase(window=gen_core_window(rng), rows=rows, seed=seed)


# ---------------------------------------------------------------------------
# Dynamic-table cases (kernel-views leg)
# ---------------------------------------------------------------------------

#: Base tables for view cases.  All columns hold small ints (or NULL), so
#: any generated predicate, join key or aggregate argument is type-safe.
FACT_SCHEMA = Schema(["k", "g", "v"])
DIM_SCHEMA = Schema(["g", "w"])
VIEW_BASES: dict[str, Schema] = {"fact": FACT_SCHEMA, "dim": DIM_SCHEMA}

_VIEW_SHAPES = ("filter", "project", "aggregate", "distinct", "join",
                "setop")
_VIEW_AGGS = ("COUNT", "SUM", "AVG", "MIN", "MAX")
_SETOP_KINDS = ("union", "difference", "intersection")


@dataclass
class ViewCase:
    """One dynamic-table differential case.

    ``views`` are plain-data specs (see :func:`build_view_ir`) forming a
    multi-level DAG over the two fixed base tables; ``events`` is a script
    of ``apply`` / ``tick`` / ``refresh`` / ``suspend`` / ``resume`` /
    ``crash`` steps.  Everything is JSON-able so a failing case embeds
    literally in a repro file.
    """

    views: list[dict[str, Any]]
    initial: dict[str, list[dict[str, Any]]]
    events: list[list[Any]]
    seed: int | None = None


def build_view_ir(spec: dict[str, Any], schemas: dict[str, Schema]):
    """Reconstruct the logical plan a view spec describes.

    Deterministic: the oracle and the service both call this, in DAG
    order, so both sides agree on every view's definition.  The root is
    always a Project renaming outputs to ``c0..cn`` — downstream views
    then scan a flat, unambiguous schema.
    """
    from repro.core.operators import AggregateKind
    from repro.plan.exprs import Binary, BinOp, Column, Literal
    from repro.plan.ir import (
        Aggregate,
        AggregateExpr,
        Distinct,
        Filter,
        Join,
        Project,
        SetOp,
    )
    from repro.views import make_scan

    shape = spec["shape"]
    params = spec["params"]
    sources = spec["sources"]

    def scan(name: str, alias: str):
        return make_scan(name, alias, schemas[name])

    if shape == "filter":
        core = Filter(scan(sources[0], "s"),
                      Binary(BinOp.GT, Column(f"s.{params['col']}"),
                             Literal(params["cutoff"])))
    elif shape == "project":
        exprs = [Column(f"s.{c}") for c in params["cols"]]
        names = [f"p{i}" for i in range(len(exprs))]
        if params.get("bump") is not None:
            exprs.append(Binary(BinOp.ADD, Column(f"s.{params['bump']}"),
                                Literal(1)))
            names.append(f"p{len(exprs) - 1}")
        core = Project(scan(sources[0], "s"), tuple(exprs), tuple(names))
    elif shape == "aggregate":
        group = params["group"]
        aggregates = tuple(
            AggregateExpr(AggregateKind[kind],
                          None if col is None else Column(f"s.{col}"),
                          f"a{i}")
            for i, (kind, col) in enumerate(params["aggs"]))
        core = Aggregate(scan(sources[0], "s"),
                         () if group is None else (f"s.{group}",),
                         () if group is None else ("g0",),
                         aggregates)
    elif shape == "distinct":
        exprs = tuple(Column(f"s.{c}") for c in params["cols"])
        names = tuple(f"d{i}" for i in range(len(exprs)))
        core = Distinct(Project(scan(sources[0], "s"), exprs, names))
    elif shape == "join":
        core = Join(scan(sources[0], "l"), scan(sources[1], "r"),
                    left_keys=(f"l.{params['left_key']}",),
                    right_keys=(f"r.{params['right_key']}",))
    elif shape == "setop":
        arity = len(params["left_cols"])
        names = tuple(f"x{i}" for i in range(arity))
        left = Project(scan(sources[0], "l"),
                       tuple(Column(f"l.{c}") for c in params["left_cols"]),
                       names)
        right = Project(scan(sources[1], "r"),
                        tuple(Column(f"r.{c}")
                              for c in params["right_cols"]),
                        names)
        core = SetOp(params["kind"], left, right)
    else:
        raise ValueError(f"unknown view shape {shape!r}")

    fields = core.schema.fields
    return Project(core, tuple(Column(f) for f in fields),
                   tuple(f"c{i}" for i in range(len(fields))))


def build_view_plans(case: ViewCase) -> dict[str, Any]:
    """All view plans of a case, in definition order, plus their schemas."""
    schemas = dict(VIEW_BASES)
    plans: dict[str, Any] = {}
    for spec in case.views:
        plan = build_view_ir(spec, schemas)
        plans[spec["name"]] = plan
        schemas[spec["name"]] = plan.schema
    return plans


def _gen_view_spec(rng: random.Random, name: str, pool: list[str],
                   must_use: str | None,
                   schemas: dict[str, Schema]) -> dict[str, Any]:
    shape = rng.choice(_VIEW_SHAPES)
    first = must_use if must_use is not None else rng.choice(pool)
    cols = list(schemas[first].fields)
    params: dict[str, Any]
    sources = [first]
    if shape == "filter":
        params = {"col": rng.choice(cols), "cutoff": rng.randint(-1, 3)}
    elif shape == "project":
        keep = rng.sample(cols, rng.randint(1, len(cols)))
        params = {"cols": keep,
                  "bump": rng.choice(cols) if rng.random() < 0.5 else None}
    elif shape == "aggregate":
        group = rng.choice(cols) if rng.random() < 0.7 else None
        aggs = []
        for _ in range(rng.randint(1, 2)):
            kind = rng.choice(_VIEW_AGGS)
            col = (None if kind == "COUNT" and rng.random() < 0.5
                   else rng.choice(cols))
            aggs.append([kind, col])
        params = {"group": group, "aggs": aggs}
    elif shape == "distinct":
        params = {"cols": rng.sample(cols, rng.randint(1, len(cols)))}
    elif shape == "join":
        second = rng.choice(pool)
        sources.append(second)
        params = {"left_key": rng.choice(cols),
                  "right_key": rng.choice(list(schemas[second].fields))}
    else:  # setop
        second = rng.choice(pool)
        sources.append(second)
        other = list(schemas[second].fields)
        arity = rng.randint(1, min(2, len(cols), len(other)))
        params = {"kind": rng.choice(_SETOP_KINDS),
                  "left_cols": rng.sample(cols, arity),
                  "right_cols": rng.sample(other, arity)}
    lag = rng.choice([0, 1, 2, "downstream"])
    return {"name": name, "lag": lag, "shape": shape,
            "sources": sources, "params": params}


def _fact_row(rng: random.Random) -> dict[str, Any]:
    return {"k": rng.randint(0, 4), "g": rng.randint(0, 2),
            "v": rng.choice([None, 0, 1, 2, 3])}


def _dim_row(rng: random.Random) -> dict[str, Any]:
    return {"g": rng.choice([None, 0, 1, 2]), "w": rng.randint(0, 3)}


_VIEW_ROWFN = {"fact": _fact_row, "dim": _dim_row}


def gen_view_case(rng: random.Random,
                  seed: int | None = None) -> ViewCase:
    """A seeded multi-level view DAG plus a refresh/mutation script.

    Level 2 always consumes a level-1 view and level 3 a level-2 view,
    so every case exercises a genuinely cascading (3-deep) refresh.
    """
    schemas = dict(VIEW_BASES)
    views: list[dict[str, Any]] = []
    pool = list(VIEW_BASES)
    counter = 0
    levels: list[list[str]] = []
    for level in range(3):
        level_names = []
        for _ in range(1 if level == 2 else rng.randint(1, 2)):
            counter += 1
            name = f"v{counter}"
            must_use = rng.choice(levels[level - 1]) if level else None
            spec = _gen_view_spec(rng, name, pool, must_use, schemas)
            schemas[name] = build_view_ir(spec, schemas).schema
            views.append(spec)
            pool.append(name)
            level_names.append(name)
        levels.append(level_names)

    initial = {name: [_VIEW_ROWFN[name](rng)
                      for _ in range(rng.randint(0, 4))]
               for name in VIEW_BASES}

    contents = {name: [dict(row) for row in initial[name]]
                for name in VIEW_BASES}
    view_names = [spec["name"] for spec in views]
    suspended: set[str] = set()
    events: list[list[Any]] = []
    steps = rng.randint(8, 14)
    crash_at = rng.randrange(steps) if rng.random() < 0.35 else None
    for step in range(steps):
        if step == crash_at:
            events.append(["crash", rng.choice(view_names),
                           rng.randrange(8)])
            continue
        roll = rng.random()
        if roll < 0.55:
            table = rng.choice(list(VIEW_BASES))
            inserts = [_VIEW_ROWFN[table](rng)
                       for _ in range(rng.randint(0, 3))]
            deletes = []
            rows = contents[table]
            if rows and rng.random() < 0.5:
                picked = rng.sample(range(len(rows)),
                                    rng.randint(1, min(2, len(rows))))
                deletes = [rows[i] for i in picked]
                contents[table] = [row for i, row in enumerate(rows)
                                   if i not in picked]
            if not inserts and not deletes:
                inserts = [_VIEW_ROWFN[table](rng)]
            contents[table].extend(dict(row) for row in inserts)
            events.append(["apply", table, inserts, deletes])
        elif roll < 0.80:
            events.append(["tick"])
        elif roll < 0.90:
            events.append(["refresh", rng.choice(view_names)])
        else:
            if suspended and rng.random() < 0.6:
                name = rng.choice(sorted(suspended))
                suspended.discard(name)
                events.append(["resume", name])
            else:
                name = rng.choice(view_names)
                suspended.add(name)
                events.append(["suspend", name])
    # Leave no view suspended at the end: the final tick must be able to
    # bring the whole DAG to the clock.
    for name in sorted(suspended):
        events.append(["resume", name])
    events.append(["tick"])
    return ViewCase(views=views, initial=initial, events=events, seed=seed)
