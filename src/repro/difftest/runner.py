"""Fuzz campaign driver for the differential oracle.

``fuzz`` runs a seeded campaign over CQL cases and core-window cases,
optionally shrinking any divergence and emitting repro files.  Timing and
throughput go into the standard ``BENCH_<name>.json`` payload via the
bench harness, so fuzz runs are tracked like any other benchmark.
"""

from __future__ import annotations

import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.bench.harness import bench_result, write_bench_json

from repro.difftest.generators import (
    Case,
    CoreWindowCase,
    ViewCase,
    gen_case,
    gen_core_window_case,
    gen_view_case,
)
from repro.difftest.oracle import (
    Divergence,
    check_negative_timestamp_rejection,
    run_case,
    run_core_window_case,
    run_rescale_case,
    run_view_case,
)
from repro.difftest import shrinker


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int | None
    cases: int
    core_cases: int
    view_cases: int = 0
    rescale_cases: int = 0
    failures: list[tuple[Case, Divergence]] = field(default_factory=list)
    core_failures: list[tuple[CoreWindowCase, Divergence]] = \
        field(default_factory=list)
    view_failures: list[tuple[ViewCase, Divergence]] = \
        field(default_factory=list)
    rescale_failures: list[tuple[Case, Divergence]] = \
        field(default_factory=list)
    consistency_problems: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    repro_paths: list[pathlib.Path] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (not self.failures and not self.core_failures
                and not self.view_failures and not self.rescale_failures
                and not self.consistency_problems)

    def summary(self) -> str:
        status = "clean" if self.clean else (
            f"{len(self.failures)} CQL + {len(self.core_failures)} core "
            f"+ {len(self.view_failures)} view "
            f"+ {len(self.rescale_failures)} rescale divergences, "
            f"{len(self.consistency_problems)} consistency problems")
        return (f"difftest: {self.cases} CQL cases, {self.core_cases} core "
                f"cases, {self.view_cases} view cases, "
                f"{self.rescale_cases} rescale cases in "
                f"{self.elapsed_seconds:.1f}s — {status}")


def fuzz(seed: int | None = 0, cases: int = 500, core_cases: int = 200,
         view_cases: int = 100, rescale_cases: int = 0,
         shrink: bool = True, max_failures: int = 5,
         repro_dir: str | pathlib.Path | None = None,
         bench_dir: str | pathlib.Path | None = None,
         bench_name: str = "difftest_fuzz") -> FuzzReport:
    """Run one fuzz campaign.

    ``seed=None`` draws fresh system entropy (the long-run mode behind
    ``make fuzz``); any integer gives a fully deterministic campaign.
    Stops early after ``max_failures`` divergences.  ``rescale_cases``
    runs *additional* cases through only the live-rescale leg (every
    regular case already runs it as one of its legs) — the targeted
    campaign behind ``--rescale-cases`` and ``make bench-rescale``.
    """
    rng = random.Random(seed)
    report = FuzzReport(seed=seed, cases=cases, core_cases=core_cases,
                        view_cases=view_cases,
                        rescale_cases=rescale_cases)
    started = time.perf_counter()

    report.consistency_problems = check_negative_timestamp_rejection()

    for index in range(cases):
        if len(report.failures) >= max_failures:
            break
        case = gen_case(rng, seed=index)
        divergence = run_case(case)
        if divergence is None:
            continue
        if shrink:
            case, divergence = shrinker.shrink_case(case, divergence)
        report.failures.append((case, divergence))
        if repro_dir is not None:
            path = pathlib.Path(repro_dir) / f"test_repro_cql_{index}.py"
            report.repro_paths.append(
                shrinker.emit_repro(case, divergence, path))

    for index in range(core_cases):
        if len(report.core_failures) >= max_failures:
            break
        case = gen_core_window_case(rng, seed=index)
        divergence = run_core_window_case(case)
        if divergence is None:
            continue
        if shrink:
            case, divergence = shrinker.shrink_core_case(case, divergence)
        report.core_failures.append((case, divergence))
        if repro_dir is not None:
            path = pathlib.Path(repro_dir) / f"test_repro_core_{index}.py"
            report.repro_paths.append(
                shrinker.emit_core_repro(case, divergence, path))

    for index in range(view_cases):
        if len(report.view_failures) >= max_failures:
            break
        case = gen_view_case(rng, seed=index)
        divergence = run_view_case(case)
        if divergence is None:
            continue
        # View cases are not shrunk: the event script's meaning depends on
        # DAG order, so slicing it produces mostly-invalid cases.  The
        # repro embeds the full case instead.
        report.view_failures.append((case, divergence))
        if repro_dir is not None:
            path = pathlib.Path(repro_dir) / f"test_repro_views_{index}.py"
            report.repro_paths.append(
                shrinker.emit_view_repro(case, divergence, path))

    for index in range(rescale_cases):
        if len(report.rescale_failures) >= max_failures:
            break
        case = gen_case(rng, seed=index)
        divergence = run_rescale_case(case)
        if divergence is None:
            continue
        if shrink:
            case, divergence = shrinker.shrink_case(
                case, divergence, oracle=run_rescale_case)
        report.rescale_failures.append((case, divergence))
        if repro_dir is not None:
            path = pathlib.Path(repro_dir) / f"test_repro_rescale_{index}.py"
            report.repro_paths.append(
                shrinker.emit_repro(case, divergence, path))

    report.elapsed_seconds = time.perf_counter() - started

    if bench_dir is not None:
        write_bench_json(_bench_payload(report, bench_name), bench_dir)
    return report


def _bench_payload(report: FuzzReport, name: str) -> dict[str, Any]:
    total = (report.cases + report.core_cases + report.view_cases
             + report.rescale_cases)
    rate = total / report.elapsed_seconds if report.elapsed_seconds else 0.0
    return bench_result(
        name,
        seed=report.seed,
        cql_cases=report.cases,
        core_cases=report.core_cases,
        view_cases=report.view_cases,
        rescale_cases=report.rescale_cases,
        failures=(len(report.failures) + len(report.core_failures)
                  + len(report.view_failures)
                  + len(report.rescale_failures)),
        consistency_problems=list(report.consistency_problems),
        elapsed_seconds=round(report.elapsed_seconds, 3),
        cases_per_second=round(rate, 1),
    )
