"""Mutation smoke-check: seeded bugs the oracle must catch.

Each mutant monkeypatches one known bug class into a live layer and
restores the original on exit.  If the differential oracle cannot find a
divergence while a mutant is active, the oracle itself is broken — this
is the harness testing the harness.

The mutants cover the bug classes named by the issue:

* ``range-off-by-one``     — window bounds: plain ``[Range r]`` windows
  expire one tick late in the executor.
* ``dropped-expiry``       — the executor's event-time agenda silently
  drops scheduled instants, so windows never evict.
* ``null-counting-count``  — NULL handling: the incremental COUNT(expr)
  accumulator counts NULL values (SQL says it must not).
* ``sliding-expiry-capped``— the core sparse change-log caps a sliding
  window's expiry boundary at ``t + size``, losing the expiry of gappy
  ``slide > size`` windows (the historical bug, reintroduced).
* ``state-log-coalesce``   — ``as_relation`` pops the change-log tail on
  same-instant batches, corrupting earlier instants (the historical DSMS
  divergence, reintroduced).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from repro.core import windows as core_windows
from repro.core.relation import TimeVaryingRelation
from repro.cql import executor as cql_executor
from repro.cql.ast import WindowSpecKind


@contextlib.contextmanager
def range_off_by_one() -> Iterator[None]:
    """Plain [Range r] windows expire at ``t + r + 1`` in the executor."""
    original = cql_executor.StreamSourceOp.stage

    def mutated(self, record, t):
        kind = self.spec.kind
        if kind is WindowSpecKind.RANGE and not self.spec.slide:
            self._arrived = True
            self._staged.append(record)
            expiry = t + self.spec.range_ + 1
            self._expiries[expiry].append(record)
            self._agenda.schedule(expiry)
            return
        original(self, record, t)

    cql_executor.StreamSourceOp.stage = mutated
    try:
        yield
    finally:
        cql_executor.StreamSourceOp.stage = original


@contextlib.contextmanager
def dropped_expiry() -> Iterator[None]:
    """The agenda forgets everything scheduled — no window ever closes."""
    original = cql_executor.Agenda.schedule

    def mutated(self, t):
        return None

    cql_executor.Agenda.schedule = mutated
    try:
        yield
    finally:
        cql_executor.Agenda.schedule = original


@contextlib.contextmanager
def null_counting_count() -> Iterator[None]:
    """COUNT(expr) counts NULL values in the incremental accumulator."""
    original = cql_executor.AggregateOp._fold
    AggregateKind = cql_executor.AggregateKind

    def mutated(self, group, record, mult):
        group.rows += mult
        for i, (kind, evaluator) in enumerate(
                zip(self._kinds, self._evaluators)):
            if evaluator is None:
                group.counts[i] += mult
                continue
            value = evaluator(record)
            if value is None:
                if kind is AggregateKind.COUNT:
                    group.counts[i] += mult  # the injected bug
                continue
            group.counts[i] += mult
            if kind in (AggregateKind.SUM, AggregateKind.AVG):
                group.sums[i] += value * mult
            elif kind in (AggregateKind.MIN, AggregateKind.MAX):
                if group.minmax[i] is None:
                    group.minmax[i] = cql_executor._MinMaxAccumulator()
                group.minmax[i].add(value, mult)

    cql_executor.AggregateOp._fold = mutated
    try:
        yield
    finally:
        cql_executor.AggregateOp._fold = original


@contextlib.contextmanager
def sliding_expiry_capped() -> Iterator[None]:
    """Reintroduce the gappy-window bug: expiry capped at ``t + size``."""
    original = core_windows.SlidingWindow.expiry_boundary

    def mutated(self, t):
        boundary = self.scope(t).start + self.slide
        # The historical bug never recorded a boundary beyond the window
        # extent; returning the arrival instant adds no new change point.
        return boundary if boundary <= t + self.size else t

    core_windows.SlidingWindow.expiry_boundary = mutated
    try:
        yield
    finally:
        core_windows.SlidingWindow.expiry_boundary = original


@contextlib.contextmanager
def state_log_coalesce() -> Iterator[None]:
    """Reintroduce the as_relation tail-pop corruption."""
    original = cql_executor.ContinuousQuery.as_relation

    def mutated(self):
        relation = TimeVaryingRelation(schema=self.output_schema)
        last_t = None
        for t, bag in self._log:
            if t == last_t:
                relation._times.pop()
                relation._states.pop()
            relation.set_at(t, bag)
            last_t = t
        return relation

    cql_executor.ContinuousQuery.as_relation = mutated
    try:
        yield
    finally:
        cql_executor.ContinuousQuery.as_relation = original


#: name -> (context manager, oracle leg: "cql" or "core")
MUTANTS: dict[str, tuple[Callable[[], contextlib.AbstractContextManager],
                         str]] = {
    "range-off-by-one": (range_off_by_one, "cql"),
    "dropped-expiry": (dropped_expiry, "cql"),
    "null-counting-count": (null_counting_count, "cql"),
    "sliding-expiry-capped": (sliding_expiry_capped, "core"),
    "state-log-coalesce": (state_log_coalesce, "cql"),
}


def apply_mutant(name: str) -> contextlib.AbstractContextManager:
    """Enter the named mutant's patch context."""
    factory, _leg = MUTANTS[name]
    return factory()
