"""The three-way differential oracle.

For one :class:`~repro.difftest.generators.Case` the oracle replays the
same inputs through every evaluator and compares results instant by
instant under bag equality:

* ``reference(naive plan)`` is the ground truth — the denotational
  evaluator over the unoptimised plan.
* ``reference(optimised plan)`` must agree: the optimiser may only apply
  equivalence-preserving rewrites.
* The incremental executor runs both plan variants via ``run_recorded``
  (exact per-instant batching).  R2S queries compare emitted streams;
  relation queries compare the maintained change-log.
* The DSMS engine services **one tuple at a time**, so several states can
  be appended at one instant; snapshot-reducibility demands only that the
  *final* state per instant equals the reference relation of the R2S
  child plan (intermediate same-instant states are an artifact of
  per-tuple scheduling, not a bug).

The core-window leg (:func:`run_core_window_case`) checks the sparse S2R
change-log against dense per-instant evaluation for the window kinds CQL
syntax cannot reach, and merge properties for session windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core import Schema, Stream
from repro.core.errors import ReproError
from repro.core.operators import stream_to_relation
from repro.core.relation import Bag
from repro.core.windows import (
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
    merge_sessions,
)
from repro.cql import reference_evaluate
from repro.dsms import DSMSEngine
from repro.dsms.shedding import NoShedding

from repro.difftest.generators import (
    ALERTS_SCHEMA,
    OBS_SCHEMA,
    Case,
    CoreWindowCase,
    build_engine,
    build_streams,
)

_R2S_OPS = ("istream", "dstream", "rstream")


@dataclass
class Divergence:
    """One disagreement between evaluators (or an evaluator crash)."""

    kind: str    # which leg diverged: optimizer | executor | executor-naive
                 # | kernel | kernel-naive | kernel-parallel
                 # | kernel-rescaled | kernel-crashed | dsms
                 # | kernel-batched | dsms-shared
                 # | kernel-views | core-sparse | core-assign | session
                 # | error
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


def _snapshot_list(relation) -> list[tuple[int, list]]:
    return [(t, sorted(bag, key=repr)) for t, bag in relation.snapshots()]


def _stream_list(stream) -> list[tuple[int, Any]]:
    return list(zip(stream.timestamps(), stream.values()))


def _diff_detail(label_a: str, a: Any, label_b: str, b: Any) -> str:
    return f"{label_a}={a!r} vs {label_b}={b!r}"


def run_case(case: Case) -> Divergence | None:
    """Replay one case through all evaluators; None means agreement."""
    streams = build_streams(case)
    engine = build_engine()
    try:
        plan_naive = engine.plan(case.query, optimize=False)
        plan_opt = engine.plan(case.query, optimize=True)
    except ReproError as exc:
        return Divergence("error", f"planning failed: {exc!r}")

    try:
        truth = reference_evaluate(plan_naive, engine.catalog, streams)
    except ReproError as exc:
        return Divergence("error", f"reference(naive) failed: {exc!r}")

    is_r2s = plan_naive.op_name in _R2S_OPS

    # Leg 1: the optimiser must preserve denotational semantics.
    try:
        ref_opt = reference_evaluate(plan_opt, engine.catalog, streams)
    except ReproError as exc:
        return Divergence("error", f"reference(optimized) failed: {exc!r}")
    if is_r2s:
        same = (truth.timestamps() == ref_opt.timestamps()
                and truth.values() == ref_opt.values())
        if not same:
            return Divergence("optimizer", _diff_detail(
                "naive", _stream_list(truth),
                "optimized", _stream_list(ref_opt)))
    elif not (truth == ref_opt):
        return Divergence("optimizer", _diff_detail(
            "naive", _snapshot_list(truth),
            "optimized", _snapshot_list(ref_opt)))

    # Legs 2-5: the incremental executor and the push-based kernel, each
    # with the rule optimiser toggled on and off — every generated query
    # runs both ways, and every instant of all four must match the
    # reference.
    for optimize, kernel, leg in ((True, False, "executor"),
                                  (False, False, "executor-naive"),
                                  (True, True, "kernel"),
                                  (False, True, "kernel-naive")):
        exec_engine = build_engine()
        try:
            query = exec_engine.register_query(case.query, optimize=optimize,
                                               kernel=kernel)
            query.run_recorded(
                {name: stream for name, stream in streams.items()
                 if name in query._stream_sources})
        except ReproError as exc:
            return Divergence(leg, f"executor crashed: {exc!r}")
        if is_r2s:
            produced = query.emitted_stream()
            same = (produced.timestamps() == truth.timestamps()
                    and produced.values() == truth.values())
            if not same:
                return Divergence(leg, _diff_detail(
                    "executor", _stream_list(produced),
                    "reference", _stream_list(truth)))
        elif not (query.as_relation() == truth):
            return Divergence(leg, _diff_detail(
                "executor", _snapshot_list(query.as_relation()),
                "reference", _snapshot_list(truth)))

    # Leg 6: key-partitioned execution.  When the planner proves the
    # plan partitionable, the same query runs as three key-routed
    # replicas; the merged change-log (or merged emitted stream) must
    # match the reference instant by instant.  Unpartitionable plans
    # skip — the planner's refusal is itself under test in tests/plan.
    divergence = _kernel_parallel_leg(case, streams, truth, is_r2s)
    if divergence is not None:
        return divergence

    # Leg 7: live rescale.  The same query starts serial, is live-migrated
    # 1→4→2 at one-third and two-thirds of its instants (checkpoint,
    # re-key by the target width, resume), and the output must still be
    # byte-identical to the never-rescaled reference.
    divergence = _kernel_rescaled_leg(case, streams, truth, is_r2s)
    if divergence is not None:
        return divergence

    # Leg 8: crash-consistent recovery.  The kernel plan re-runs once per
    # operator position; each run blows a fuse inside that operator
    # mid-stream (state mutated, output lost), rolls back to the newest
    # barrier-by-instant checkpoint, replays, and must still agree with
    # the reference instant by instant.
    divergence = _kernel_crashed_leg(case, streams, truth, is_r2s)
    if divergence is not None:
        return divergence

    # DSMS leg: the engine servicing one tuple per scheduling quantum.
    divergence = _dsms_leg(case, streams, plan_opt, engine)
    if divergence is not None:
        return divergence

    # Batched leg: the same engine draining micro-batches per quantum.
    # Batched vs per-element execution must agree instant by instant.
    divergence = _kernel_batched_leg(case, streams, plan_opt, engine)
    if divergence is not None:
        return divergence

    # Final leg: multi-query plan sharing.  The same query registered
    # twice in a sharing engine runs as one shared kernel plan; both
    # members must still match the reference instant by instant, and
    # must agree with each other emission for emission.
    return _dsms_shared_leg(case, streams, plan_opt, engine)


def _kernel_parallel_leg(case: Case, streams, truth,
                         is_r2s: bool) -> Divergence | None:
    """Run the query fissioned into 3 key-partitioned replicas.

    Exercises the whole §4.2 stack under fuzzing: the planner's
    partition-scheme proof, hash routing of every arrival, per-replica
    event-time frontiers (empty batches keep window expirations
    synchronised), and the disjoint-union merge at the sink.
    """
    from repro.cql.parallel import PartitionedQuery
    from repro.plan.parallel import partition_scheme

    exec_engine = build_engine()
    try:
        plan = exec_engine.plan(case.query, optimize=True)
    except ReproError as exc:
        return Divergence("kernel-parallel", f"planning failed: {exc!r}")
    if partition_scheme(plan) is None:
        return None
    try:
        query = PartitionedQuery(plan, exec_engine.catalog, parallelism=3)
        query.run_recorded(
            {name: stream for name, stream in streams.items()
             if name in query._stream_sources})
    except ReproError as exc:
        return Divergence("kernel-parallel",
                          f"partitioned run crashed: {exc!r}")
    if is_r2s:
        produced = query.emitted_stream()
        same = (produced.timestamps() == truth.timestamps()
                and produced.values() == truth.values())
        if not same:
            return Divergence("kernel-parallel", _diff_detail(
                "partitioned", _stream_list(produced),
                "reference", _stream_list(truth)))
    elif not (query.as_relation() == truth):
        return Divergence("kernel-parallel", _diff_detail(
            "partitioned", _snapshot_list(query.as_relation()),
            "reference", _snapshot_list(truth)))
    return None


def _kernel_rescaled_leg(case: Case, streams, truth,
                         is_r2s: bool) -> Divergence | None:
    """Live-rescale 1→4→2 mid-stream; output must not diverge.

    Exercises the elasticity stack under fuzzing: the barrier-by-instant
    checkpoint, per-operator state re-keying by ``default_hash``
    placement at the new width, driver-state reconstruction, and the
    log/emission seeding that keeps the merged change-log and emitted
    stream byte-identical to a never-rescaled run.  Unpartitionable
    plans skip, exactly like the kernel-parallel leg.
    """
    from collections import defaultdict

    from repro.cql.parallel import PartitionedQuery
    from repro.plan.parallel import partition_scheme

    exec_engine = build_engine()
    try:
        plan = exec_engine.plan(case.query, optimize=True)
    except ReproError as exc:
        return Divergence("kernel-rescaled", f"planning failed: {exc!r}")
    if partition_scheme(plan) is None:
        return None
    try:
        query = PartitionedQuery(plan, exec_engine.catalog, parallelism=1)
        arrivals: dict[int, dict[str, list]] = defaultdict(
            lambda: defaultdict(list))
        for name, stream in streams.items():
            if name not in query._stream_sources:
                continue
            for element in stream:
                arrivals[element.timestamp][name].append(element.value)
        instants = sorted(arrivals)
        first = max(1, len(instants) // 3)
        second = max(first + 1, 2 * len(instants) // 3)
        schedule = {first: 4, second: 2}
        query.start()
        for position, t in enumerate(instants):
            if position in schedule:
                query.rescale(schedule[position])
            query.push_batch(t, arrivals[t])
        for position in sorted(schedule):
            # Degenerate cases (≤ 2 instants): still exercise both
            # migrations, after the stream instead of inside it.
            if position >= len(instants):
                query.rescale(schedule[position])
        query.finish()
    except ReproError as exc:
        return Divergence("kernel-rescaled",
                          f"rescaled run crashed: {exc!r}")
    if query.parallelism != 2:
        return Divergence("kernel-rescaled",
                          f"expected final width 2, got "
                          f"{query.parallelism}")
    if is_r2s:
        produced = query.emitted_stream()
        same = (produced.timestamps() == truth.timestamps()
                and produced.values() == truth.values())
        if not same:
            return Divergence("kernel-rescaled", _diff_detail(
                "rescaled", _stream_list(produced),
                "reference", _stream_list(truth)))
    elif not (query.as_relation() == truth):
        return Divergence("kernel-rescaled", _diff_detail(
            "rescaled", _snapshot_list(query.as_relation()),
            "reference", _snapshot_list(truth)))
    return None


def run_rescale_case(case: Case) -> Divergence | None:
    """Run only the live-rescale leg of one case (targeted campaigns:
    ``--rescale-cases`` on the fuzz CLI and the rescale benchmark).
    Skipped (None) when the plan is not key-partitionable."""
    streams = build_streams(case)
    engine = build_engine()
    try:
        plan_naive = engine.plan(case.query, optimize=False)
        truth = reference_evaluate(plan_naive, engine.catalog, streams)
    except ReproError as exc:
        return Divergence("error", f"reference failed: {exc!r}")
    is_r2s = plan_naive.op_name in _R2S_OPS
    return _kernel_rescaled_leg(case, streams, truth, is_r2s)


def _kernel_crashed_leg(case: Case, streams, truth,
                        is_r2s: bool) -> Divergence | None:
    """Kill each kernel operator once mid-stream; recovery must erase it.

    One recovery run per operator position: a :class:`CrashFuse` is armed
    at half the case's instants, the crash fires after the operator has
    mutated its state but before its output lands (torn state), and
    :class:`RecoveryManager` rolls the query back to the newest
    checkpoint and replays.  Exactly-once means the final emissions and
    change-log are indistinguishable from the fault-free legs.
    """
    from repro.chaos import CrashFuse, install_crash
    from repro.chaos.recovery import RecoveryManager, run_query_with_recovery

    probe = build_engine()
    try:
        probe_query = probe.register_query(case.query, optimize=True,
                                           kernel=True)
    except ReproError as exc:
        return Divergence("kernel-crashed", f"registration failed: {exc!r}")
    operator_count = len(probe_query.operators())
    relevant = {name: stream for name, stream in streams.items()
                if name in probe_query._stream_sources}
    instants = {element.timestamp
                for stream in relevant.values() for element in stream}
    fuse_at = max(1, (len(instants) + 1) // 2)

    for position in range(operator_count):
        exec_engine = build_engine()
        query = exec_engine.register_query(case.query, optimize=True,
                                           kernel=True)
        fuse = CrashFuse(at=fuse_at)
        label = install_crash(query, position, fuse)
        manager = RecoveryManager(query, interval=2,
                                  sleep=lambda _delay: None,
                                  backoff_base=0.0, measure_bytes=False,
                                  label="kernel-crashed")
        try:
            run_query_with_recovery(query, relevant, manager)
        except ReproError as exc:
            return Divergence("kernel-crashed", (
                f"crash in {label} (operator {position}) not recovered: "
                f"{exc!r}"))
        # A fuse scheduled past the stream's end never fires; the run is
        # then just a fault-free kernel run and the comparison still holds.
        where = f"crashed {label} (operator {position}, fired {fuse.fired})"
        if is_r2s:
            produced = query.emitted_stream()
            same = (produced.timestamps() == truth.timestamps()
                    and produced.values() == truth.values())
            if not same:
                return Divergence("kernel-crashed", f"{where}: " + _diff_detail(
                    "recovered", _stream_list(produced),
                    "reference", _stream_list(truth)))
        elif not (query.as_relation() == truth):
            return Divergence("kernel-crashed", f"{where}: " + _diff_detail(
                "recovered", _snapshot_list(query.as_relation()),
                "reference", _snapshot_list(truth)))
    return None


def _dsms_leg(case: Case, streams, plan_opt, engine) -> Divergence | None:
    dsms = DSMSEngine(queue_capacity=1_000_000)
    dsms.register_stream("Obs", OBS_SCHEMA)
    dsms.register_stream("Alerts", ALERTS_SCHEMA)
    from repro.difftest.generators import ROOMS_ROWS, ROOMS_SCHEMA
    dsms.register_relation("Rooms", ROOMS_SCHEMA, ROOMS_ROWS)
    try:
        handle = dsms.register_query("q", case.query, shedder=NoShedding())
    except ReproError as exc:
        return Divergence("dsms", f"registration failed: {exc!r}")
    arrivals: list[tuple[int, str, Any]] = []
    for name, stream in streams.items():
        if not handle.reads_stream(name):
            continue
        for element in stream:
            arrivals.append((element.timestamp, name, element.value))
    arrivals.sort(key=lambda item: item[0])  # stable: preserves gen order
    try:
        for t, name, record in arrivals:
            dsms.ingest(name, record, t)
            dsms.run_until_idle()
        handle.query.finish()
    except ReproError as exc:
        return Divergence("dsms", f"servicing crashed: {exc!r}")

    # Snapshot-reducibility: the maintained state per instant must equal
    # the reference relation of the R2S child (the relation the stream
    # operator samples from).
    state_plan = (plan_opt.child if plan_opt.op_name in _R2S_OPS
                  else plan_opt)
    ref_state = reference_evaluate(state_plan, engine.catalog, streams)
    got = handle.query.as_relation()
    if not (got == ref_state):
        return Divergence("dsms", _diff_detail(
            "dsms", _snapshot_list(got),
            "reference", _snapshot_list(ref_state)))
    return None


def _kernel_batched_leg(case: Case, streams, plan_opt,
                        engine) -> Divergence | None:
    """The tenth leg: vectorized micro-batch execution under fuzzing.

    The whole arrival log is ingested up front and drained with
    ``batch_size=8`` quanta, so same-instant tuples actually coalesce
    into one ``push_batch`` → one batched kernel instant.  The batch
    size is an *explicit* per-query override — the planner's
    emission-safety clamp is deliberately bypassed so aggregate, join
    and windowed plans run batched too — which makes the state log the
    comparison surface: snapshot-reducibility demands the maintained
    relation per instant equals the reference relation of the R2S child
    plan, exactly as the per-element DSMS leg is judged.
    """
    dsms = DSMSEngine(queue_capacity=1_000_000)
    dsms.register_stream("Obs", OBS_SCHEMA)
    dsms.register_stream("Alerts", ALERTS_SCHEMA)
    from repro.difftest.generators import ROOMS_ROWS, ROOMS_SCHEMA
    dsms.register_relation("Rooms", ROOMS_SCHEMA, ROOMS_ROWS)
    try:
        handle = dsms.register_query("q", case.query, shedder=NoShedding(),
                                     batch_size=8)
    except ReproError as exc:
        return Divergence("kernel-batched", f"registration failed: {exc!r}")
    arrivals: list[tuple[int, str, Any]] = []
    for name, stream in streams.items():
        if not handle.reads_stream(name):
            continue
        for element in stream:
            arrivals.append((element.timestamp, name, element.value))
    arrivals.sort(key=lambda item: item[0])  # stable: preserves gen order
    try:
        for t, name, record in arrivals:
            dsms.ingest(name, record, t)
        dsms.run_until_idle()
        handle.query.finish()
    except ReproError as exc:
        return Divergence("kernel-batched", f"servicing crashed: {exc!r}")

    state_plan = (plan_opt.child if plan_opt.op_name in _R2S_OPS
                  else plan_opt)
    ref_state = reference_evaluate(state_plan, engine.catalog, streams)
    got = handle.query.as_relation()
    if not (got == ref_state):
        return Divergence("kernel-batched", _diff_detail(
            "batched", _snapshot_list(got),
            "reference", _snapshot_list(ref_state)))
    return None


def _dsms_shared_leg(case: Case, streams, plan_opt,
                     engine) -> Divergence | None:
    dsms = DSMSEngine(queue_capacity=1_000_000, sharing=True)
    dsms.register_stream("Obs", OBS_SCHEMA)
    dsms.register_stream("Alerts", ALERTS_SCHEMA)
    from repro.difftest.generators import ROOMS_ROWS, ROOMS_SCHEMA
    dsms.register_relation("Rooms", ROOMS_SCHEMA, ROOMS_ROWS)
    try:
        first = dsms.register_query("q1", case.query)
        second = dsms.register_query("q2", case.query)
    except ReproError as exc:
        return Divergence("dsms-shared", f"registration failed: {exc!r}")
    arrivals: list[tuple[int, str, Any]] = []
    for name, stream in streams.items():
        if not first.reads_stream(name):
            continue
        for element in stream:
            arrivals.append((element.timestamp, name, element.value))
    arrivals.sort(key=lambda item: item[0])  # stable: preserves gen order
    try:
        for t, name, record in arrivals:
            dsms.ingest(name, record, t)
            dsms.run_until_idle()
        first.query.finish()
    except ReproError as exc:
        return Divergence("dsms-shared", f"servicing crashed: {exc!r}")

    state_plan = (plan_opt.child if plan_opt.op_name in _R2S_OPS
                  else plan_opt)
    ref_state = reference_evaluate(state_plan, engine.catalog, streams)
    for handle in (first, second):
        got = handle.query.as_relation()
        if not (got == ref_state):
            return Divergence("dsms-shared", _diff_detail(
                f"shared:{handle.name}", _snapshot_list(got),
                "reference", _snapshot_list(ref_state)))
    if first.emissions() != second.emissions():
        return Divergence("dsms-shared", _diff_detail(
            "q1", first.emissions(), "q2", second.emissions()))
    return None


# ---------------------------------------------------------------------------
# Core-window leg
# ---------------------------------------------------------------------------

_CORE_SCHEMA = Schema(["id", "v"])


def run_core_window_case(case: CoreWindowCase) -> Divergence | None:
    """Sparse change-log vs dense evaluation (plus session properties)."""
    stream = Stream.of_records(_CORE_SCHEMA, case.rows)
    window = case.window
    if isinstance(window, SessionWindow):
        return _check_sessions(window, stream)
    horizon = (stream.max_timestamp or 0) + 4 * _window_extent(window) + 4
    sparse = stream_to_relation(stream, window)
    dense = stream_to_relation(stream, window, instants=range(horizon))
    bad = [t for t in range(horizon) if sparse.at(t) != dense.at(t)]
    if bad:
        t = bad[0]
        return Divergence("core-sparse", (
            f"{window!r}: change-log diverges from dense evaluation at "
            f"t={t}: sparse={sorted(sparse.at(t), key=repr)} "
            f"dense={sorted(dense.at(t), key=repr)} (and {len(bad) - 1} "
            f"more instants)"))
    if isinstance(window, (TumblingWindow, SlidingWindow)):
        return _check_assign_scope(window, stream, horizon)
    return None


def _window_extent(window: Any) -> int:
    for attribute in ("size", "range", "range_", "slide", "gap"):
        value = getattr(window, attribute, None)
        if isinstance(value, int) and value > 0:
            return value
    return 8


def _check_assign_scope(window: Any, stream: Stream,
                        horizon: int) -> Divergence | None:
    """``assign`` (per-element windows) and ``scope`` (window in force)
    must describe the same visibility: an element is visible at τ exactly
    when one of its assigned windows *is* the window in force."""
    for tau in range(horizon):
        in_force = window.scope(tau)
        scope_view = Bag(e.value for e in stream.up_to(tau)
                         if e.timestamp in in_force)
        assign_view = Bag(e.value for e in stream.up_to(tau)
                          if any(w == in_force
                                 for w in window.assign(e.timestamp)))
        if scope_view != assign_view:
            return Divergence("core-assign", (
                f"{window!r} at tau={tau}: scope view "
                f"{sorted(scope_view, key=repr)} != assign view "
                f"{sorted(assign_view, key=repr)}"))
    return None


def _check_sessions(window: SessionWindow,
                    stream: Stream) -> Divergence | None:
    """Merged sessions must be maximal, disjoint and gap-separated, and
    incremental merging must agree with batch merging."""
    protos = [w for e in stream for w in window.assign(e.timestamp)]
    merged = merge_sessions(protos)
    for left, right in zip(merged, merged[1:]):
        if right.start - left.end < 0:
            return Divergence(
                "session", f"{window!r}: overlapping sessions {left} {right}")
    for proto in protos:
        if not any(s.start <= proto.start and proto.end <= s.end
                   for s in merged):
            return Divergence(
                "session", f"{window!r}: element window {proto} not covered")
    incremental: list = []
    for proto in protos:
        incremental = merge_sessions(incremental + [proto])
    if incremental != merged:
        return Divergence(
            "session", f"{window!r}: incremental merge {incremental} != "
            f"batch merge {merged}")
    return None


# ---------------------------------------------------------------------------
# Negative-timestamp agreement
# ---------------------------------------------------------------------------


def check_negative_timestamp_rejection() -> list[str]:
    """All three evaluators must reject pre-epoch timestamps alike.

    Returns a list of human-readable problems (empty = agreement).  The
    reference path rejects at stream construction; the executor rejects at
    ``push_batch``; the DSMS rejects at ``ingest``.
    """
    from repro.core.errors import TimeError

    problems: list[str] = []
    row = {"id": 0, "room": "a", "temp": 1}
    try:
        Stream.of_records(OBS_SCHEMA, [(row, -1)])
        problems.append("Stream accepted a negative timestamp")
    except TimeError:
        pass
    engine = build_engine()
    query = engine.register_query("SELECT id FROM Obs [Range 2]")
    query.start()
    try:
        query.push("Obs", row, -1)
        problems.append("executor accepted a negative timestamp")
    except TimeError:
        pass
    dsms = DSMSEngine()
    dsms.register_stream("Obs", OBS_SCHEMA)
    dsms.register_query("q", "SELECT id FROM Obs [Range 2]")
    try:
        dsms.ingest("Obs", row, -1)
        problems.append("DSMS accepted a negative timestamp")
    except TimeError:
        pass
    return problems


# ---------------------------------------------------------------------------
# Dynamic-table leg (kernel-views)
# ---------------------------------------------------------------------------


def run_view_case(case) -> Divergence | None:
    """The eleventh leg: every dynamic table vs recompute-from-base.

    The case's view DAG is installed in a :class:`DynamicTableService`
    and its event script replayed.  After **every** event, each view's
    materialisation must equal a full recompute of its (unabsorbed,
    unoptimised) definition over the base tables *as of the view's own
    version* — the oracle keeps its own per-version base history, so the
    reference never reads service state.  Suspension must block exactly
    the refreshes the DAG says it blocks; a ``crash`` event tears one
    operator mid-refresh and recovery must converge to the same
    contents; at the end, every retained snapshot version must replay.
    """
    from repro.chaos import CrashFuse
    from repro.chaos.injection import InjectedCrash
    from repro.core.errors import StateError
    from repro.core.records import Record
    from repro.views import DynamicTableService, recompute

    from repro.difftest.generators import (
        VIEW_BASES,
        ViewCase,
        build_view_plans,
    )
    assert isinstance(case, ViewCase)

    plans = build_view_plans(case)
    sources = {spec["name"]: tuple(sorted(set(spec["sources"])))
               for spec in case.views}
    upstreams = dict(sources)

    service = DynamicTableService()
    for table, schema in VIEW_BASES.items():
        service.create_table(table, schema)

    # Oracle-side base history: (version, Bag) after every commit,
    # maintained from the raw event rows — independent of service state.
    base_bags = {name: Bag() for name in VIEW_BASES}
    base_history: dict[str, list[tuple[int, Bag]]] = \
        {name: [] for name in VIEW_BASES}

    def commit(table: str, inserts, deletes) -> int:
        version = service.apply(table, inserts, deletes,
                                at=service.clock + 1)
        record_commit(table, inserts, deletes, version)
        return version

    def record_commit(table: str, inserts, deletes, version: int) -> None:
        schema = VIEW_BASES[table]
        for row in inserts:
            base_bags[table].add(Record.from_mapping(schema, row))
        for row in deletes:
            base_bags[table].discard(Record.from_mapping(schema, row))
        base_history[table].append((version, base_bags[table].copy()))

    def reference(name: str, version: int, cache: dict) -> Bag:
        key = (name, version)
        if key not in cache:
            if name in VIEW_BASES:
                chosen = Bag()
                for recorded, bag in base_history[name]:
                    if recorded <= version:
                        chosen = bag
                    else:
                        break
                cache[key] = chosen
            else:
                cache[key] = recompute(plans[name], {
                    src: reference(src, version, cache)
                    for src in sources[name]})
        return cache[key]

    def bag_key(bag: Bag):
        return sorted(bag.items(), key=repr)

    def check(where: str) -> Divergence | None:
        cache: dict = {}
        for spec in case.views:
            name = spec["name"]
            view = service.view(name)
            got = service.read(name)
            want = reference(name, view.version, cache)
            if bag_key(got) != bag_key(want):
                return Divergence("kernel-views", (
                    f"{where}: view {name} (version {view.version}, clock "
                    f"{service.clock}): maintained={bag_key(got)} vs "
                    f"recompute-from-base={bag_key(want)}"))
        return None

    try:
        if any(case.initial.values()):
            commit_rows = {t: rows for t, rows in case.initial.items()}
            version = service.clock + 1
            for table, rows in commit_rows.items():
                service.apply(table, rows, at=version)
                record_commit(table, rows, (), version)
        for spec in case.views:
            service.create_from_plan(spec["name"],
                                     plans[spec["name"]],
                                     target_lag=spec["lag"])
    except ReproError as exc:
        return Divergence("kernel-views", f"installation failed: {exc!r}")

    divergence = check("after install")
    if divergence is not None:
        return divergence

    view_sources = {name: tuple(s for s in srcs if s not in VIEW_BASES)
                    for name, srcs in sources.items()}

    def advance_blocked(name: str, target: int) -> bool:
        # Mirrors _refresh_to: a suspended view only blocks when the
        # refresh actually needs to advance through it.
        view = service.view(name)
        if view.version >= target:
            return False
        for src in view_sources[name]:
            if service.view(src).suspended or advance_blocked(src, target):
                return True
        return False

    def refresh_blocked(name: str) -> bool:
        return (service.view(name).suspended
                or advance_blocked(name, service.clock))

    for index, event in enumerate(case.events):
        kind = event[0]
        where = f"event {index} {event!r}"
        try:
            if kind == "apply":
                _, table, inserts, deletes = event
                commit(table, inserts, deletes)
            elif kind == "tick":
                service.tick()
            elif kind == "refresh":
                name = event[1]
                expected = refresh_blocked(name)
                try:
                    service.refresh(name)
                except StateError:
                    if not expected:
                        return Divergence("kernel-views", (
                            f"{where}: refresh refused but no suspended "
                            f"ancestor needed to advance"))
                else:
                    if expected:
                        return Divergence("kernel-views", (
                            f"{where}: refresh succeeded through a "
                            f"suspended view"))
            elif kind == "suspend":
                service.suspend(event[1])
            elif kind == "resume":
                service.resume(event[1])
            elif kind == "crash":
                divergence = _view_crash_event(
                    event, where, service, record_commit,
                    refresh_blocked, advance_blocked,
                    CrashFuse, InjectedCrash, StateError)
                if divergence is not None:
                    return divergence
            else:
                return Divergence("kernel-views",
                                  f"{where}: unknown event kind")
        except ReproError as exc:
            return Divergence("kernel-views", f"{where}: crashed: {exc!r}")
        divergence = check(where)
        if divergence is not None:
            return divergence

    # Snapshot-isolated reads: every retained version must replay against
    # recompute-from-base at that version.
    cache: dict = {}
    for spec in case.views:
        name = spec["name"]
        for version, _contents in service.view(name).history:
            got = service.read(name, version=version)
            want = reference(name, version, cache)
            if bag_key(got) != bag_key(want):
                return Divergence("kernel-views", (
                    f"snapshot read: view {name} at version {version}: "
                    f"retained={bag_key(got)} vs "
                    f"recompute-from-base={bag_key(want)}"))
    return None


_CRASH_ROW = {"k": 4, "g": 1, "v": 2}


def _view_crash_event(event, where, service, record_commit,
                      refresh_blocked, advance_blocked,
                      CrashFuse, InjectedCrash,
                      StateError) -> Divergence | None:
    """Tear one operator mid-refresh; recovery must erase the damage."""
    _, name, op_index = event
    if service.view(name).suspended or advance_blocked(name,
                                                       service.clock + 1):
        # The commit below would make the refresh need a suspended
        # ancestor; skip the crash machinery and just pin the error path.
        version = service.clock + 1
        service.apply("fact", [_CRASH_ROW], at=version)
        record_commit("fact", [_CRASH_ROW], (), version)
        try:
            service.refresh(name)
        except StateError:
            return None
        return Divergence("kernel-views", (
            f"{where}: refresh succeeded through a suspended view"))

    snap = service.snapshot()
    handle = service.view(name).handle
    names = handle.operator_names()
    target_op = handle.operator(names[op_index % len(names)])
    fuse = CrashFuse(at=1)
    original = target_op.process_batch

    def wrapped(*args, **kwargs):
        result = original(*args, **kwargs)
        if fuse.record(1):
            raise InjectedCrash(
                f"difftest fuse in view {name!r} operator "
                f"{names[op_index % len(names)]!r}")
        return result

    target_op.process_batch = wrapped
    version = service.clock + 1
    crashed = False
    try:
        service.apply("fact", [_CRASH_ROW], at=version)
        try:
            service.refresh(name)
        except InjectedCrash:
            crashed = True
    finally:
        del target_op.process_batch
    if crashed:
        service.restore(snap)
        service.apply("fact", [_CRASH_ROW], at=version)
        service.refresh(name)
    # Whether the fuse fired or not, exactly one commit stands in the end;
    # mirror it into the oracle's base history once the dust settles.
    record_commit("fact", [_CRASH_ROW], (), version)
    return None
