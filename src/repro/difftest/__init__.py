"""Differential correctness harness across the three evaluators.

The paper defines continuous semantics by re-execution (Section 3.1): the
incremental executor is correct only if it agrees with the denotational
reference evaluator at every instant — Krämer & Seeger's
*snapshot-reducibility*, made machine-checkable.  This package fuzzes
random (query, stream) pairs through

* ``repro.cql.reference`` — the denotational ground truth,
* ``repro.cql.executor`` — the incremental delta executor (both the
  optimised and the naive plan),
* ``repro.dsms`` — the full DSMS engine servicing one tuple at a time,

plus a core-layer leg comparing the sparse S2R change-log against dense
per-instant evaluation for every window class.  Any divergence is shrunk
with delta debugging to a minimal repro and emitted as a standalone pytest
file.  A mutation smoke-check injects known bug classes to prove the
oracle actually catches them.
"""

from repro.difftest.generators import (
    ALERTS_SCHEMA,
    OBS_SCHEMA,
    ROOMS_ROWS,
    ROOMS_SCHEMA,
    Case,
    CoreWindowCase,
    ViewCase,
    build_engine,
    build_streams,
    build_view_plans,
    gen_case,
    gen_core_window_case,
    gen_view_case,
)
from repro.difftest.oracle import (
    Divergence,
    check_negative_timestamp_rejection,
    run_case,
    run_core_window_case,
    run_view_case,
)
from repro.difftest.runner import FuzzReport, fuzz
from repro.difftest.shrinker import (
    emit_core_repro,
    emit_repro,
    emit_view_repro,
    shrink_case,
    shrink_core_case,
)
from repro.difftest.mutations import MUTANTS, apply_mutant

__all__ = [
    "ALERTS_SCHEMA",
    "OBS_SCHEMA",
    "ROOMS_ROWS",
    "ROOMS_SCHEMA",
    "Case",
    "CoreWindowCase",
    "Divergence",
    "ViewCase",
    "FuzzReport",
    "MUTANTS",
    "apply_mutant",
    "build_engine",
    "build_streams",
    "check_negative_timestamp_rejection",
    "build_view_plans",
    "emit_core_repro",
    "emit_repro",
    "emit_view_repro",
    "fuzz",
    "gen_view_case",
    "run_view_case",
    "shrink_core_case",
    "gen_case",
    "gen_core_window_case",
    "run_case",
    "run_core_window_case",
    "shrink_case",
]
