"""Triggers and accumulation modes (paper Section 4.1.1).

"Windows determine where in event time data are grouped; triggers determine
when in processing time the results of groupings are emitted."  A trigger
watches one (key, window) pane and decides, on each stimulus, whether to
fire.  Stimuli are element arrival, processing-time progress, and the
event-time watermark passing the end of the window.

Implemented triggers: the Dataflow default (:class:`AfterWatermark`, with
optional early/late firings), :class:`AfterCount`,
:class:`AfterProcessingTime`, :class:`Repeatedly`, :class:`AfterAny`, and
:class:`Never`.  The :class:`AccumulationMode` decides whether a firing
pane discards or accumulates previously emitted contents — the
correctness/latency/cost trade-off knob the paper highlights.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.core.time import Timestamp
from repro.core.windows import Window


class AccumulationMode(enum.Enum):
    """What happens to pane contents after a firing."""

    DISCARDING = "discarding"
    ACCUMULATING = "accumulating"


class PaneTiming(enum.Enum):
    """Where a firing sits relative to the watermark."""

    EARLY = "early"
    ON_TIME = "on_time"
    LATE = "late"


class Trigger:
    """Per-(key, window) firing logic.

    Triggers are *prototypes*: :meth:`new_state` creates the mutable
    per-pane state, and the ``should_fire_*`` hooks inspect/update it.
    """

    def new_state(self) -> Any:
        return None

    def on_element(self, state: Any, arrival_index: int) -> bool:
        """Stimulus: one element arrived (before the watermark passes)."""
        return False

    def on_watermark(self, state: Any, window: Window,
                     watermark: Timestamp) -> bool:
        """Stimulus: the watermark advanced to ``watermark``."""
        return False

    def on_fire(self, state: Any) -> None:
        """Reset hook invoked after the pane fires."""

    def allows_late_firings(self) -> bool:
        return False


class Never(Trigger):
    """Fires only when the runner finalises the window (end of input)."""


class AfterCount(Trigger):
    """Fire whenever ``count`` elements accumulated since the last fire."""

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = count

    def new_state(self) -> dict:
        return {"pending": 0}

    def on_element(self, state: dict, arrival_index: int) -> bool:
        state["pending"] += 1
        return state["pending"] >= self.count

    def on_fire(self, state: dict) -> None:
        state["pending"] = 0

    def __repr__(self) -> str:
        return f"AfterCount({self.count})"


class AfterProcessingTime(Trigger):
    """Fire ``delay`` processing-time ticks after the first element.

    The direct runner's processing clock ticks once per arrival, so the
    delay is measured in arrivals — deterministic and sufficient to show
    the latency/cost trade-off.
    """

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def new_state(self) -> dict:
        return {"first_arrival": None, "pending": 0}

    def on_element(self, state: dict, arrival_index: int) -> bool:
        if state["first_arrival"] is None:
            state["first_arrival"] = arrival_index
        state["pending"] += 1
        return arrival_index >= state["first_arrival"] + self.delay

    def on_fire(self, state: dict) -> None:
        state["first_arrival"] = None
        state["pending"] = 0

    def __repr__(self) -> str:
        return f"AfterProcessingTime({self.delay})"


class Repeatedly(Trigger):
    """Restart ``inner`` after every firing, forever."""

    def __init__(self, inner: Trigger) -> None:
        self.inner = inner

    def new_state(self) -> Any:
        return self.inner.new_state()

    def on_element(self, state: Any, arrival_index: int) -> bool:
        return self.inner.on_element(state, arrival_index)

    def on_watermark(self, state: Any, window: Window,
                     watermark: Timestamp) -> bool:
        return self.inner.on_watermark(state, window, watermark)

    def on_fire(self, state: Any) -> None:
        self.inner.on_fire(state)

    def allows_late_firings(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Repeatedly({self.inner!r})"


class AfterAny(Trigger):
    """Fire when any sub-trigger fires."""

    def __init__(self, *triggers: Trigger) -> None:
        if not triggers:
            raise ValueError("AfterAny needs at least one trigger")
        self.triggers = triggers

    def new_state(self) -> list:
        return [t.new_state() for t in self.triggers]

    def on_element(self, state: list, arrival_index: int) -> bool:
        fired = False
        for trigger, sub_state in zip(self.triggers, state):
            if trigger.on_element(sub_state, arrival_index):
                fired = True
        return fired

    def on_watermark(self, state: list, window: Window,
                     watermark: Timestamp) -> bool:
        fired = False
        for trigger, sub_state in zip(self.triggers, state):
            if trigger.on_watermark(sub_state, window, watermark):
                fired = True
        return fired

    def on_fire(self, state: list) -> None:
        for trigger, sub_state in zip(self.triggers, state):
            trigger.on_fire(sub_state)

    def __repr__(self) -> str:
        return f"AfterAny{self.triggers!r}"


class AfterWatermark(Trigger):
    """The Dataflow default: fire once when the watermark passes the end
    of the window; optionally fire ``early`` panes before and ``late``
    panes after (per late arrival or per ``late`` sub-trigger)."""

    def __init__(self, early: Trigger | None = None,
                 late: Trigger | None = None) -> None:
        self.early = early
        self.late = late

    def new_state(self) -> dict:
        return {
            "on_time_fired": False,
            "early": self.early.new_state() if self.early else None,
            "late": self.late.new_state() if self.late else None,
            "fired_early": False,
        }

    def on_element(self, state: dict, arrival_index: int) -> bool:
        if state["on_time_fired"]:
            if self.late is None:
                return True  # fire a late pane per late arrival
            return self.late.on_element(state["late"], arrival_index)
        if self.early is not None:
            if self.early.on_element(state["early"], arrival_index):
                state["fired_early"] = True
                return True
        return False

    def on_watermark(self, state: dict, window: Window,
                     watermark: Timestamp) -> bool:
        if not state["on_time_fired"] and watermark >= window.end - 1:
            state["on_time_fired"] = True
            return True
        return False

    def on_fire(self, state: dict) -> None:
        if not state["on_time_fired"] and self.early is not None:
            self.early.on_fire(state["early"])
        if state["on_time_fired"] and self.late is not None:
            self.late.on_fire(state["late"])

    def allows_late_firings(self) -> bool:
        return True

    def __repr__(self) -> str:
        parts = []
        if self.early:
            parts.append(f"early={self.early!r}")
        if self.late:
            parts.append(f"late={self.late!r}")
        return f"AfterWatermark({', '.join(parts)})"


DEFAULT_TRIGGER = AfterWatermark()
