"""Windowed values and pane metadata for the Dataflow model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.time import Timestamp
from repro.core.windows import Window
from repro.dataflow.triggers import PaneTiming


@dataclass(frozen=True)
class PaneInfo:
    """Which firing of a window produced a value."""

    timing: PaneTiming
    index: int

    @property
    def is_early(self) -> bool:
        return self.timing is PaneTiming.EARLY

    @property
    def is_on_time(self) -> bool:
        return self.timing is PaneTiming.ON_TIME

    @property
    def is_late(self) -> bool:
        return self.timing is PaneTiming.LATE


@dataclass(frozen=True)
class WindowedValue:
    """An element with its event timestamp, windows and pane provenance."""

    value: Any
    timestamp: Timestamp
    windows: tuple[Window, ...] = ()
    pane: PaneInfo | None = None

    def with_value(self, value: Any) -> "WindowedValue":
        return WindowedValue(value, self.timestamp, self.windows, self.pane)

    def exploded(self) -> list["WindowedValue"]:
        """One copy per window (how multi-window elements enter GBK)."""
        if len(self.windows) <= 1:
            return [self]
        return [WindowedValue(self.value, self.timestamp, (w,), self.pane)
                for w in self.windows]
