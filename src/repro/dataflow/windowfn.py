"""Window functions for the Dataflow model (paper Section 4.1.1).

The Dataflow model separates *where in event time* data is grouped
(windowing) from *when in processing time* results are emitted (triggers).
This module provides the windowing half: per-element window assignment and
window merging (sessions), over the shared :class:`~repro.core.windows`
interval vocabulary.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import WindowError
from repro.core.time import MAX_TIMESTAMP, Timestamp
from repro.core.windows import (
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
    Window,
    merge_sessions,
)


class WindowFn:
    """Assigns windows to elements; merging window fns override merge."""

    def assign(self, timestamp: Timestamp) -> list[Window]:
        raise NotImplementedError

    @property
    def is_merging(self) -> bool:
        return False

    def merge(self, windows: Sequence[Window]) -> list[Window]:
        """Coalesce the given windows (merging window fns only)."""
        return list(windows)


class GlobalWindows(WindowFn):
    """Everything in one window covering all of time."""

    WINDOW = Window(0, MAX_TIMESTAMP)

    def assign(self, timestamp: Timestamp) -> list[Window]:
        return [self.WINDOW]

    def __repr__(self) -> str:
        return "GlobalWindows()"


class FixedWindows(WindowFn):
    """Beam's FixedWindows == tumbling windows."""

    def __init__(self, size: Timestamp, offset: Timestamp = 0) -> None:
        self._inner = TumblingWindow(size, offset)
        self.size = size

    def assign(self, timestamp: Timestamp) -> list[Window]:
        return self._inner.assign(timestamp)

    def __repr__(self) -> str:
        return f"FixedWindows(size={self.size})"


class SlidingWindows(WindowFn):
    """Beam's SlidingWindows == hopping windows."""

    def __init__(self, size: Timestamp, period: Timestamp) -> None:
        self._inner = SlidingWindow(size, period)
        self.size = size
        self.period = period

    def assign(self, timestamp: Timestamp) -> list[Window]:
        return self._inner.assign(timestamp)

    def __repr__(self) -> str:
        return f"SlidingWindows(size={self.size}, period={self.period})"


class Sessions(WindowFn):
    """Merging session windows with a fixed gap."""

    def __init__(self, gap: Timestamp) -> None:
        if gap <= 0:
            raise WindowError(f"session gap must be positive, got {gap}")
        self._inner = SessionWindow(gap)
        self.gap = gap

    def assign(self, timestamp: Timestamp) -> list[Window]:
        return self._inner.assign(timestamp)

    @property
    def is_merging(self) -> bool:
        return True

    def merge(self, windows: Sequence[Window]) -> list[Window]:
        return merge_sessions(windows)

    def __repr__(self) -> str:
        return f"Sessions(gap={self.gap})"
