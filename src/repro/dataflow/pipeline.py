"""Pipelines, PCollections and the direct runner (paper Section 4.1.1).

The Dataflow model's two primitives are **ParDo** (element-wise parallel
processing) and **GroupByKey** (collect per key before reduction); windows
say *where* in event time data is grouped, triggers say *when* in
processing time results are emitted, and the accumulation mode says *how*
refinements relate.  This module implements all four axes over a
deterministic single-process runner whose inputs can arrive out of order —
which is the entire point: the C5 benchmark sweeps watermark slack and
trigger choices against lateness.

Usage::

    p = Pipeline()
    events = p.create([("a", 3), ("b", 1), ("a", 12)],
                      watermark=BoundedOutOfOrderness(2))
    counts = (events
              .map(lambda v: (v, 1))
              .window_into(FixedWindows(10))
              .group_by_key()
              .combine_values(sum)
              .collect("counts"))
    result = p.run()
    result["counts"]          # [WindowedValue(("a", 1), ...), ...]
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import repro.obs as obs
from repro.core.errors import PlanError
from repro.core.punctuation import AscendingWatermarks, WatermarkGenerator
from repro.core.time import MAX_TIMESTAMP, Timestamp
from repro.core.windows import Window
from repro.dataflow.pvalue import PaneInfo, WindowedValue
from repro.dataflow.triggers import (
    DEFAULT_TRIGGER,
    AccumulationMode,
    AfterAny,
    AfterProcessingTime,
    AfterWatermark,
    PaneTiming,
    Repeatedly,
    Trigger,
)
from repro.dataflow.windowfn import GlobalWindows, WindowFn
from repro.exec import Operator, Plan, fission


@dataclass
class WindowingStrategy:
    """The full where/when/how specification attached to a PCollection."""

    window_fn: WindowFn = field(default_factory=GlobalWindows)
    trigger: Trigger = DEFAULT_TRIGGER
    accumulation: AccumulationMode = AccumulationMode.DISCARDING
    allowed_lateness: Timestamp = 0


class PCollection:
    """A node in the pipeline DAG.  Transforms return new PCollections."""

    def __init__(self, pipeline: "Pipeline", kind: str,
                 parent: "PCollection | None" = None, **spec: Any) -> None:
        self.pipeline = pipeline
        self.kind = kind
        self.parent = parent
        self.spec = spec
        self.children: list[PCollection] = []
        self.windowing: WindowingStrategy = (
            parent.windowing if parent is not None else WindowingStrategy())
        if parent is not None:
            parent.children.append(self)
        pipeline._nodes.append(self)

    # -- element-wise transforms (ParDo family) --------------------------------

    def par_do(self, fn: Callable[[Any], Iterable[Any]],
               _op: str = "flat_map") -> "PCollection":
        """The generic element-wise primitive: zero or more outputs per
        input (the paper's ParDo)."""
        return PCollection(self.pipeline, "pardo", self, fn=fn, op=_op)

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "PCollection":
        return self.par_do(fn)

    def map(self, fn: Callable[[Any], Any]) -> "PCollection":
        return self.par_do(lambda v: (fn(v),), _op="map")

    def filter(self, predicate: Callable[[Any], bool]) -> "PCollection":
        return self.par_do(lambda v: (v,) if predicate(v) else (),
                           _op="filter")

    # -- windowing --------------------------------------------------------------

    def window_into(self, window_fn: WindowFn,
                    trigger: Trigger | None = None,
                    accumulation: AccumulationMode =
                    AccumulationMode.DISCARDING,
                    allowed_lateness: Timestamp = 0) -> "PCollection":
        node = PCollection(self.pipeline, "window", self)
        node.windowing = WindowingStrategy(
            window_fn, trigger or DEFAULT_TRIGGER, accumulation,
            allowed_lateness)
        return node

    # -- grouping ---------------------------------------------------------------

    def group_by_key(self) -> "PCollection":
        """The GroupByKey primitive: input must be (key, value) pairs.

        Emits ``(key, [values])`` panes according to the windowing
        strategy's trigger and accumulation mode."""
        return PCollection(self.pipeline, "gbk", self, combiner=None)

    def combine_per_key(self, combiner: Callable[[list], Any],
                        ) -> "PCollection":
        """GroupByKey fused with a per-pane combiner over the value list."""
        return PCollection(self.pipeline, "gbk", self, combiner=combiner)

    def combine_values(self, combiner: Callable[[list], Any],
                       ) -> "PCollection":
        """Apply ``combiner`` to the value list of (key, [values]) pairs."""
        return self.map(lambda kv: (kv[0], combiner(kv[1])))

    # -- outputs ----------------------------------------------------------------

    def collect(self, label: str) -> "PCollection":
        """Mark this collection as a pipeline output under ``label``."""
        node = PCollection(self.pipeline, "sink", self, label=label)
        return node


class PipelineResult:
    """Outputs plus runner statistics."""

    def __init__(self) -> None:
        self.outputs: dict[str, list[WindowedValue]] = defaultdict(list)
        self.dropped_late = 0
        self.panes_by_timing: dict[PaneTiming, int] = defaultdict(int)

    def __getitem__(self, label: str) -> list[WindowedValue]:
        return self.outputs[label]

    def values(self, label: str) -> list[Any]:
        return [wv.value for wv in self.outputs[label]]


class _PaneState:
    """Runner state for one (key, window) pane of one GBK node."""

    __slots__ = ("buffer", "retained", "trigger_state", "pane_index",
                 "on_time_fired", "had_data")

    def __init__(self, trigger: Trigger) -> None:
        self.buffer: list[Any] = []
        self.retained: list[Any] = []
        self.trigger_state = trigger.new_state()
        self.pane_index = 0
        self.on_time_fired = False
        self.had_data = False


class _GBKState:
    """Runner state for one GroupByKey node."""

    def __init__(self, node: PCollection) -> None:
        self.node = node
        self.panes: dict[tuple[Any, Window], _PaneState] = {}
        self.merged_away: set[tuple[Any, Window]] = set()

    def pane(self, key: Any, window: Window) -> _PaneState:
        state = self.panes.get((key, window))
        if state is None:
            state = _PaneState(self.node.windowing.trigger)
            self.panes[(key, window)] = state
        return state


class Pipeline:
    """A Dataflow pipeline with a deterministic direct runner."""

    def __init__(self) -> None:
        self._nodes: list[PCollection] = []
        self._sources: list[PCollection] = []

    def create(self, elements: Iterable[tuple[Any, Timestamp]],
               watermark: WatermarkGenerator | None = None) -> PCollection:
        """A source.  ``elements`` are (value, event timestamp) pairs in
        *arrival* order — which may differ from event-time order; the
        watermark generator (default: ascending) decides how much
        out-of-orderness the pipeline tolerates."""
        node = PCollection(self, "source", None,
                           elements=list(elements),
                           watermark=watermark or AscendingWatermarks())
        self._sources.append(node)
        return node

    # -- planning -----------------------------------------------------------------

    def logical_plan(self):
        """The pipeline DAG lowered onto the unified logical IR.

        Dataflow transforms carry arbitrary user code, so they lower to
        :class:`~repro.plan.ir.OpaqueOp`/``OpaqueSource`` nodes whose
        ``kind`` is the monotonicity-relevant operator name — enough for
        :mod:`repro.plan.monotone`, :func:`repro.plan.signature.plan_signature`
        and EXPLAIN to work without interpreting the payloads.
        """
        from repro.plan.ir import OpaqueOp, OpaqueSource

        plans: dict[int, Any] = {}
        roots: list[Any] = []
        for index, node in enumerate(self._nodes):
            if node.kind == "source":
                generator = node.spec["watermark"]
                plan = OpaqueSource(
                    "stream_scan",
                    f"create#{index}[{type(generator).__name__}]",
                    payload=node)
            else:
                child = plans[id(node.parent)]
                kind, tag = _logical_label(node)
                plan = OpaqueOp(kind, tag, (child,), payload=node)
            plans[id(node)] = plan
            if not node.children:
                roots.append(plan)
        if not roots:
            raise PlanError("empty pipeline has no logical plan")
        out = roots[0]
        for other in roots[1:]:
            out = OpaqueOp("union", "outputs", (out, other))
        return out

    def explain(self) -> str:
        """EXPLAIN: the lowered IR tree with strategy annotations."""
        from repro.plan.explain import explain_logical
        return explain_logical(self.logical_plan())

    # -- execution ----------------------------------------------------------------

    def run(self, kernel: bool = True,
            parallelism: int = 1,
            bundle_size: int = 1) -> PipelineResult:
        """Execute the pipeline.

        By default the DAG is lowered onto the shared execution kernel
        (:mod:`repro.exec`); ``kernel=False`` keeps the legacy direct
        runner for benchmark comparisons.  Both produce identical output.

        ``parallelism=N`` fissions every GroupByKey into N key-routed
        replicas behind an Exchange (GBK is keyed by construction, so
        partitioning is always sound here).  Panes are identical to the
        serial run; within one watermark firing their order across keys
        may differ, since each replica drains its own keys.

        ``bundle_size=N`` groups consecutive source elements into kernel
        micro-batches (Beam's bundles).  Bundles always flush before a
        watermark advances, so pane contents and firing decisions are
        identical to the per-element run — except under
        :class:`~repro.dataflow.triggers.AfterProcessingTime`, whose
        processing clock is the arrival index read at insert; pipelines
        using it (anywhere in a composite trigger) are clamped back to
        ``bundle_size=1``.
        """
        if parallelism > 1 and not kernel:
            raise PlanError(
                "the legacy direct runner is single-threaded; "
                "parallelism needs the kernel (kernel=True)")
        if bundle_size > 1 and not kernel:
            raise PlanError(
                "the legacy direct runner is per-element; "
                "bundles need the kernel (kernel=True)")
        runner = (_KernelRunner(self, parallelism=parallelism,
                                bundle_size=bundle_size)
                  if kernel else _DirectRunner(self))
        return runner.run()


def _logical_label(node: PCollection) -> tuple[str, str]:
    """(IR kind, display tag) for a non-source pipeline node."""
    if node.kind == "pardo":
        fn = node.spec["fn"]
        return (node.spec.get("op", "flat_map"),
                getattr(fn, "__name__", "<fn>"))
    if node.kind == "window":
        return "window", type(node.windowing.window_fn).__name__
    if node.kind == "gbk":
        tag = ("combine_per_key" if node.spec.get("combiner")
               else "group_by_key")
        return "group_aggregate", tag
    if node.kind == "sink":
        return "sink", node.spec["label"]
    raise PlanError(f"unexpected node kind {node.kind}")


class _GBKEngine:
    """The GroupByKey pane machinery: insert, merge, fire, finalise.

    One engine per GBK node, shared by the legacy direct runner and the
    kernel lowering so both produce identical panes.  Output leaves
    through the host-supplied ``out(windowed_value, watermark)`` callback;
    ``arrival_index`` reads the host's arrival counter (processing-time
    triggers count arrivals, not elements per node).
    """

    def __init__(self, node: PCollection, result: PipelineResult,
                 arrival_index: Callable[[], int],
                 out: Callable[[WindowedValue, Timestamp], None]) -> None:
        self.node = node
        self.state = _GBKState(node)
        self.result = result
        self._arrival_index = arrival_index
        self._out = out
        self._obs = obs.is_enabled()
        self._registry = obs.get_registry() if self._obs else None

    def insert(self, wv: WindowedValue, watermark: Timestamp) -> None:
        strategy = self.node.windowing
        state = self.state
        try:
            key, value = wv.value
        except (TypeError, ValueError):
            raise PlanError(
                "GroupByKey input must be (key, value) pairs; got "
                f"{wv.value!r}") from None
        for piece in wv.exploded():
            (window,) = piece.windows
            # Lateness: beyond allowed lateness the element is dropped.
            if watermark >= window.end - 1 + strategy.allowed_lateness \
                    and watermark >= window.end - 1:
                self.result.dropped_late += 1
                if self._obs:
                    self._registry.counter("dataflow.dropped_late").inc()
                continue
            if strategy.window_fn.is_merging:
                window = self._merge_into(key, window, strategy)
            pane = state.pane(key, window)
            pane.buffer.append(value)
            pane.had_data = True
            fire = strategy.trigger.on_element(
                pane.trigger_state, self._arrival_index())
            if fire:
                timing = (PaneTiming.LATE if pane.on_time_fired
                          else PaneTiming.EARLY)
                self._fire(key, window, timing, watermark)

    def _merge_into(self, key: Any, window: Window,
                    strategy: WindowingStrategy) -> Window:
        """Session merging: coalesce the new proto-window with the key's
        active windows, transplanting buffered state."""
        state = self.state
        active = [w for (k, w) in state.panes if k == key
                  and (k, w) not in state.merged_away]
        merged = strategy.window_fn.merge(active + [window])
        # Find the merged window that swallowed the new proto-window.
        target = next(w for w in merged if w.overlaps(window)
                      or w == window)
        if target not in active:
            absorbed = [w for w in active if w.overlaps(target)]
            fresh = _PaneState(strategy.trigger)
            for old in absorbed:
                old_pane = state.panes.pop((key, old))
                state.merged_away.add((key, old))
                fresh.buffer.extend(old_pane.buffer)
                fresh.retained.extend(old_pane.retained)
                fresh.pane_index = max(fresh.pane_index,
                                       old_pane.pane_index)
                fresh.on_time_fired |= old_pane.on_time_fired
                fresh.had_data |= old_pane.had_data
            # Replay the combined buffer into a fresh trigger state.
            for i in range(len(fresh.buffer)):
                strategy.trigger.on_element(fresh.trigger_state,
                                            self._arrival_index())
            state.panes[(key, target)] = fresh
        return target

    def on_watermark(self, watermark: Timestamp) -> None:
        state = self.state
        strategy = self.node.windowing
        for (key, window) in sorted(
                state.panes, key=lambda kw: (kw[1], repr(kw[0]))):
            pane = state.panes[(key, window)]
            if strategy.trigger.on_watermark(
                    pane.trigger_state, window, watermark):
                if pane.had_data:
                    self._fire(key, window, PaneTiming.ON_TIME, watermark)
                pane.on_time_fired = True

    def finalize(self) -> None:
        """Drain: force-fire panes whose trigger never did (e.g. Never).

        Fired as ON_TIME — finalisation is the moment the watermark
        conceptually passes the end of every window.
        """
        state = self.state
        for (key, window) in sorted(
                state.panes, key=lambda kw: (kw[1], repr(kw[0]))):
            pane = state.panes[(key, window)]
            if not pane.on_time_fired and pane.buffer:
                self._fire(key, window, PaneTiming.ON_TIME, MAX_TIMESTAMP)
                pane.on_time_fired = True

    def _fire(self, key: Any, window: Window, timing: PaneTiming,
              watermark: Timestamp) -> None:
        strategy = self.node.windowing
        pane = self.state.panes[(key, window)]
        if strategy.accumulation is AccumulationMode.ACCUMULATING:
            contents = pane.retained + pane.buffer
            pane.retained = contents
        else:
            contents = pane.buffer
        pane.buffer = []
        if not contents:
            return
        strategy.trigger.on_fire(pane.trigger_state)
        info = PaneInfo(timing, pane.pane_index)
        pane.pane_index += 1
        if timing is PaneTiming.ON_TIME:
            pane.on_time_fired = True
        self.result.panes_by_timing[timing] += 1
        if self._obs:
            self._registry.counter("dataflow.trigger.firings",
                                   timing=timing.name).inc()
        combiner = self.node.spec.get("combiner")
        payload = combiner(list(contents)) if combiner else list(contents)
        out = WindowedValue((key, payload),
                            min(window.end - 1, MAX_TIMESTAMP - 1),
                            (window,), info)
        self._out(out, watermark)


class _DirectRunner:
    """Single-threaded legacy evaluation: arrival order in, panes out."""

    def __init__(self, pipeline: Pipeline) -> None:
        self.pipeline = pipeline
        self.result = PipelineResult()
        self._arrival_index = 0
        self._engines: dict[int, _GBKEngine] = {}
        for node in pipeline._nodes:
            if node.kind == "gbk":
                self._engines[id(node)] = _GBKEngine(
                    node, self.result, lambda: self._arrival_index,
                    lambda wv, watermark, node=node:
                    self._push(node, wv, watermark))

    def run(self) -> PipelineResult:
        tracer = obs.get_tracer() if obs.is_enabled() else obs.NoopTracer()
        with tracer.span("dataflow.pipeline.run") as root:
            for index, source in enumerate(self.pipeline._sources):
                generator: WatermarkGenerator = source.spec["watermark"]
                with tracer.span("dataflow.source", index=index) as span:
                    for value, timestamp in source.spec["elements"]:
                        self._arrival_index += 1
                        wv = WindowedValue(value, timestamp,
                                           (GlobalWindows.WINDOW,))
                        self._push(source, wv, generator.current().value)
                        mark = generator.observe(timestamp)
                        if mark is not None:
                            self._advance_watermark(source, mark.value)
                    span.add(elements=len(source.spec["elements"]))
                self._advance_watermark(source, MAX_TIMESTAMP)
            for node in self.pipeline._nodes:
                if node.kind == "gbk":
                    self._engines[id(node)].finalize()
            root.add(dropped_late=self.result.dropped_late)
        return self.result

    # -- element propagation --------------------------------------------------

    def _push(self, node: PCollection, wv: WindowedValue,
              watermark: Timestamp) -> None:
        for child in node.children:
            self._apply(child, wv, watermark)

    def _apply(self, node: PCollection, wv: WindowedValue,
               watermark: Timestamp) -> None:
        if node.kind == "pardo":
            for value in node.spec["fn"](wv.value):
                self._push(node, wv.with_value(value), watermark)
        elif node.kind == "window":
            windows = tuple(
                node.windowing.window_fn.assign(wv.timestamp))
            self._push(node, WindowedValue(wv.value, wv.timestamp,
                                           windows, wv.pane), watermark)
        elif node.kind == "gbk":
            self._engines[id(node)].insert(wv, watermark)
        elif node.kind == "sink":
            self.result.outputs[node.spec["label"]].append(wv)
            self._push(node, wv, watermark)
        else:
            raise PlanError(f"unexpected node kind {node.kind}")

    def _advance_watermark(self, source: PCollection,
                           watermark: Timestamp) -> None:
        for node in self.pipeline._nodes:
            if node.kind != "gbk" or not self._downstream_of(source, node):
                continue
            self._engines[id(node)].on_watermark(watermark)

    def _downstream_of(self, source: PCollection,
                       node: PCollection) -> bool:
        current = node
        while current.parent is not None:
            current = current.parent
        return current is source


# ---------------------------------------------------------------------------
# Kernel lowering
# ---------------------------------------------------------------------------


class _ParDoOp(Operator):
    """ParDo as a kernel operator (stateless, fusible)."""

    fusible = True

    def __init__(self, fn: Callable[[Any], Iterable[Any]]) -> None:
        self._fn = fn

    def process_element(self, wv: WindowedValue,
                        input_index: int = 0) -> None:
        for value in self._fn(wv.value):
            self.emit(wv.with_value(value))

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        fn = self._fn
        out = [wv.with_value(value) for wv in batch for value in fn(wv.value)]
        if out:
            self.emit_batch(out)


class _WindowOp(Operator):
    """Window assignment as a kernel operator (stateless, fusible)."""

    fusible = True

    def __init__(self, window_fn: WindowFn) -> None:
        self._window_fn = window_fn

    def process_element(self, wv: WindowedValue,
                        input_index: int = 0) -> None:
        windows = tuple(self._window_fn.assign(wv.timestamp))
        self.emit(WindowedValue(wv.value, wv.timestamp, windows, wv.pane))

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        assign = self._window_fn.assign
        self.emit_batch([
            WindowedValue(wv.value, wv.timestamp,
                          tuple(assign(wv.timestamp)), wv.pane)
            for wv in batch])


class _GBKOp(Operator):
    """GroupByKey as a kernel operator.

    The pane machinery lives in the shared :class:`_GBKEngine`; the
    operator supplies the kernel's tracked watermark to inserts, fires on
    ``process_watermark``, and force-drains on ``close`` — so lateness and
    trigger decisions match the legacy runner decision-for-decision.
    """

    def __init__(self) -> None:
        self.engine: _GBKEngine | None = None

    def open(self, ctx) -> None:
        super().open(ctx)
        self._insert = self.engine.insert
        self._watermark = ctx.watermark

    def process_element(self, wv: WindowedValue,
                        input_index: int = 0) -> None:
        self._insert(wv, self._watermark())

    def process_watermark(self, watermark: Timestamp,
                          input_index: int = 0) -> None:
        self.engine.on_watermark(watermark)

    def close(self) -> None:
        self.engine.finalize()


def _gbk_key(wv: WindowedValue) -> Any:
    """Partition key for a fissioned GroupByKey: the pair's key."""
    try:
        key, _ = wv.value
    except (TypeError, ValueError):
        raise PlanError(
            "GroupByKey input must be (key, value) pairs; got "
            f"{wv.value!r}") from None
    return key


class _SinkOp(Operator):
    """Records outputs under a label; passes elements through."""

    fusible = True

    def __init__(self, label: str, result: PipelineResult) -> None:
        self._label = label
        self._result = result

    def process_element(self, wv: WindowedValue,
                        input_index: int = 0) -> None:
        self._result.outputs[self._label].append(wv)
        self.emit(wv)

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        self._result.outputs[self._label].extend(batch)
        self.emit_batch(batch)


def _arrival_sensitive(trigger: Trigger) -> bool:
    """Does ``trigger`` read the arrival-index processing clock?

    Bundling delivers a whole batch before GBK inserts run, so every
    element in the bundle observes the post-bundle arrival index —
    invisible to count- and watermark-based triggers, but it shifts
    :class:`AfterProcessingTime`'s delay windows.  Composite triggers
    are sensitive if any nested part is.
    """
    if isinstance(trigger, AfterProcessingTime):
        return True
    if isinstance(trigger, Repeatedly):
        return _arrival_sensitive(trigger.inner)
    if isinstance(trigger, AfterAny):
        return any(_arrival_sensitive(t) for t in trigger.triggers)
    if isinstance(trigger, AfterWatermark):
        return any(_arrival_sensitive(t)
                   for t in (trigger.early, trigger.late) if t is not None)
    return False


class _KernelRunner:
    """Lowers the pipeline DAG onto a :class:`repro.exec.Plan`.

    Sources become plan channels whose initial watermark matches the
    generator's pre-observation value; the per-element driver loop is
    identical to the legacy runner's, but element routing, watermark
    propagation and per-operator counters all come from the kernel.
    """

    def __init__(self, pipeline: Pipeline, parallelism: int = 1,
                 bundle_size: int = 1) -> None:
        self.pipeline = pipeline
        self.parallelism = parallelism
        self.bundle_size = max(1, bundle_size)
        if self.bundle_size > 1 and any(
                node.kind == "gbk"
                and _arrival_sensitive(node.windowing.trigger)
                for node in pipeline._nodes):
            # AfterProcessingTime's clock is the arrival index at insert;
            # bundles would shift it, so the run degrades per-element.
            self.bundle_size = 1
        self.result = PipelineResult()
        self._arrival_index = 0
        self.plan = Plan()
        names: dict[int, str] = {}
        for index, node in enumerate(pipeline._nodes):
            name = f"{node.kind}{index}"
            names[id(node)] = name
            if node.kind == "source":
                generator: WatermarkGenerator = node.spec["watermark"]
                self.plan.add_source(
                    name, initial_watermark=generator.current().value)
                continue
            parent_name = names[id(node.parent)]
            if node.kind == "pardo":
                op: Operator = _ParDoOp(node.spec["fn"])
            elif node.kind == "gbk":
                if parallelism > 1:
                    # Fission: GBK state is per (key, window), so key
                    # routing keeps every pane whole on one replica.
                    names[id(node)] = fission(
                        self.plan, parent_name, name, parallelism,
                        _gbk_key, lambda i, node=node: self._make_gbk(node))
                    continue
                op = self._make_gbk(node)
            elif node.kind == "window":
                op = _WindowOp(node.windowing.window_fn)
            elif node.kind == "sink":
                op = _SinkOp(node.spec["label"], self.result)
            else:
                raise PlanError(f"unexpected node kind {node.kind}")
            self.plan.add_operator(name, op, [parent_name])
        self._source_channels = {
            id(source): names[id(source)]
            for source in pipeline._sources}
        self.plan.fuse()

    def _make_gbk(self, node: PCollection) -> "_GBKOp":
        """A fresh GBK operator with its own pane engine (replicas own
        disjoint keys and must not share pane state)."""
        gbk = _GBKOp()
        gbk.engine = _GBKEngine(
            node, self.result, lambda: self._arrival_index,
            lambda wv, watermark, op=gbk: op.emit(wv))
        return gbk

    def run(self) -> PipelineResult:
        tracer = obs.get_tracer() if obs.is_enabled() else obs.NoopTracer()
        self.plan.open(layer="dataflow")
        with tracer.span("dataflow.pipeline.run") as root:
            bundle_size = self.bundle_size
            for index, source in enumerate(self.pipeline._sources):
                channel = self._source_channels[id(source)]
                generator: WatermarkGenerator = source.spec["watermark"]
                with tracer.span("dataflow.source", index=index) as span:
                    bundle: list[WindowedValue] = []
                    for value, timestamp in source.spec["elements"]:
                        self._arrival_index += 1
                        wv = WindowedValue(value, timestamp,
                                           (GlobalWindows.WINDOW,))
                        mark = generator.observe(timestamp)
                        if bundle_size > 1:
                            bundle.append(wv)
                            # A bundle must drain before event time moves:
                            # pane firing decisions read the watermark.
                            if mark is not None \
                                    or len(bundle) >= bundle_size:
                                self.plan.push_batch(channel, bundle)
                                bundle = []
                        else:
                            self.plan.push(channel, wv)
                        if mark is not None:
                            self.plan.advance_watermark(channel, mark.value)
                    if bundle:
                        self.plan.push_batch(channel, bundle)
                    span.add(elements=len(source.spec["elements"]))
                self.plan.advance_watermark(channel, MAX_TIMESTAMP)
            self.plan.close()
            root.add(dropped_late=self.result.dropped_late)
        return self.result
