"""dataflow — the Google Dataflow model (paper Section 4.1.1).

ParDo + GroupByKey over event-time windows, with triggers deciding when
panes are emitted, accumulation modes deciding how refinements relate,
watermarks tracking event-time progress, and allowed lateness bounding the
wait for stragglers.
"""

from repro.dataflow.pipeline import (
    PCollection,
    Pipeline,
    PipelineResult,
    WindowingStrategy,
)
from repro.dataflow.pvalue import PaneInfo, WindowedValue
from repro.dataflow.triggers import (
    DEFAULT_TRIGGER,
    AccumulationMode,
    AfterAny,
    AfterCount,
    AfterProcessingTime,
    AfterWatermark,
    Never,
    PaneTiming,
    Repeatedly,
    Trigger,
)
from repro.dataflow.windowfn import (
    FixedWindows,
    GlobalWindows,
    Sessions,
    SlidingWindows,
    WindowFn,
)

__all__ = [
    "Pipeline", "PCollection", "PipelineResult", "WindowingStrategy",
    "WindowedValue", "PaneInfo",
    "Trigger", "AfterWatermark", "AfterCount", "AfterProcessingTime",
    "Repeatedly", "AfterAny", "Never", "DEFAULT_TRIGGER",
    "AccumulationMode", "PaneTiming",
    "WindowFn", "GlobalWindows", "FixedWindows", "SlidingWindows",
    "Sessions",
]
