"""Kernel operators for incremental view maintenance over CDC deltas.

Each operator consumes and emits :class:`~repro.views.delta.Delta`
z-set entries (signed, weighted rows) and implements the standard delta
rules of incremental view maintenance:

* filter / project — stateless, weight-preserving (and fusible, so a
  ``σ → π`` prefix collapses into one kernel node);
* aggregate — the *affected-keys* strategy (Elghandour et al.): a batch
  of deltas is grouped by key first, and only the touched groups are
  re-emitted as a retract + insert pair.  Group state reuses the
  viewmaint :class:`~repro.viewmaint.strategies._Accumulator` behind a
  kernel :class:`~repro.exec.state.StateBackend`;
* distinct — per-row multiplicity with emission only on 0↔positive
  support transitions;
* set ops — per-row (left, right) multiplicity pairs: union adds,
  difference is the monus, intersection the minimum — one operator, all
  three kinds, fully incremental under deletes;
* join — per-side key-indexed multiplicity maps; a delta on one side
  joins the other side's *current* index, which yields exactly
  Δ(A⋈B) = ΔA⋈B + (A+ΔA)⋈ΔB when the sides process sequentially.

Every operator implements ``snapshot()``/``restore()`` (chaos recovery)
and ``initial_output()`` — the deltas its output contains over *empty*
input.  Only the global aggregate is non-trivial there: SQL says an
ungrouped aggregate over an empty relation is the single empty-aggregate
row (COUNT = 0), so view plans are *primed* sink-first at open time (see
:mod:`repro.views.compile`).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.errors import PlanError, StateError
from repro.core.operators import AggregateKind
from repro.core.records import Record, Schema
from repro.exec.operator import Operator, OperatorContext
from repro.exec.state import StateBackend
from repro.viewmaint.strategies import _Accumulator
from repro.views.delta import Delta


def spec_output(kind: AggregateKind, acc: _Accumulator) -> Any:
    """One aggregate column's value from its accumulator.

    NULL semantics match the core reference evaluator: COUNT counts the
    non-null values fed to the accumulator; SUM/AVG/MIN/MAX over zero
    non-null values are NULL.
    """
    if kind is AggregateKind.COUNT:
        return acc.count
    if not acc.count:
        return None
    if kind is AggregateKind.SUM:
        return acc.total
    if kind is AggregateKind.AVG:
        return acc.total / acc.count
    if kind is AggregateKind.MIN:
        return min(acc.values)
    if kind is AggregateKind.MAX:
        return max(acc.values)
    raise PlanError(f"unknown aggregate kind {kind}")


class DeltaOperator(Operator):
    """Base: a kernel operator over :class:`Delta` elements."""

    def initial_output(self) -> list[Delta]:
        """This operator's output over empty input (priming deltas)."""
        return []


class DeltaFilterOp(DeltaOperator):
    """σ over deltas: forward when the predicate holds for the row."""

    fusible = True

    def __init__(self, predicate: Callable[[Record], bool]) -> None:
        self._predicate = predicate

    def process_element(self, value: Any, input_index: int = 0) -> None:
        if self._predicate(value.row):
            self.emit(value)


class DeltaProjectOp(DeltaOperator):
    """π over deltas: rewrite the row, keep the weight."""

    fusible = True

    def __init__(self, evaluators: list[Callable[[Record], Any]],
                 out_schema: Schema) -> None:
        self._evaluators = evaluators
        self._schema = out_schema

    def process_element(self, value: Any, input_index: int = 0) -> None:
        row = value.row
        projected = Record(self._schema,
                           tuple(e(row) for e in self._evaluators),
                           validate=False)
        self.emit(Delta(projected, value.weight))


class DeltaAggregateOp(DeltaOperator):
    """Grouped aggregation with affected-keys incremental refresh.

    State per group: base-row count plus one viewmaint accumulator per
    aggregate spec.  A batch touches only the groups its deltas mention;
    each touched group emits (old row retract, new row insert), skipping
    the pair entirely when the aggregate landed on the same value.

    A group disappears when its base-row count reaches zero — except the
    global ``()`` group of an ungrouped aggregate, whose output is then
    the SQL empty-aggregate row (COUNT = 0, other aggregates NULL).
    """

    def __init__(self, group_indexes: list[int],
                 evaluators: list[Callable[[Record], Any] | None],
                 kinds: list[AggregateKind], out_schema: Schema) -> None:
        self._group_indexes = group_indexes
        self._evaluators = evaluators  # None = COUNT(*)
        self._kinds = kinds
        self._schema = out_schema
        self._state: StateBackend | None = None

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self._state = ctx.new_state()

    def initial_output(self) -> list[Delta]:
        if self._group_indexes:
            return []
        return [Delta(self._output_row((), 0, self._fresh_accs()), 1)]

    def _fresh_accs(self) -> list[_Accumulator]:
        return [_Accumulator() for _ in self._kinds]

    def _output_row(self, key: tuple, rows: int,
                    accs: list[_Accumulator]) -> Record:
        values = list(key)
        for kind, acc in zip(self._kinds, accs):
            values.append(spec_output(kind, acc))
        return Record(self._schema, values, validate=False)

    def _current_row(self, key: tuple) -> Record | None:
        entry = self._state.get(key)
        if entry is not None:
            rows, accs = entry
            return self._output_row(key, rows, accs)
        if not self._group_indexes:
            # The global group always has an output row (SQL's empty
            # aggregate), even before any input arrived.
            return self._output_row((), 0, self._fresh_accs())
        return None

    def process_element(self, value: Any, input_index: int = 0) -> None:
        self.process_batch([value], input_index)

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        # Affected-keys scoping: bucket the batch by group key; only the
        # touched groups are folded and re-emitted.
        affected: dict[tuple, list[Delta]] = {}
        for delta in batch:
            row = delta.row
            key = tuple(row[i] for i in self._group_indexes)
            affected.setdefault(key, []).append(delta)
        out: list[Delta] = []
        for key, deltas in affected.items():
            old_row = self._current_row(key)
            entry = self._state.get(key)
            if entry is None:
                entry = (0, self._fresh_accs())
            rows, accs = entry
            for delta in deltas:
                weight = delta.weight
                rows += weight
                for acc, evaluator in zip(accs, self._evaluators):
                    value = (1 if evaluator is None
                             else evaluator(delta.row))
                    if value is None:
                        continue
                    if weight > 0:
                        acc.add(value, weight)
                    else:
                        acc.remove(value, -weight)
            if rows < 0:
                raise StateError(
                    f"aggregate group {key!r} driven below zero rows")
            if rows:
                self._state.put(key, (rows, accs))
                new_row = self._output_row(key, rows, accs)
            else:
                self._state.delete(key)
                new_row = (self._output_row((), 0, self._fresh_accs())
                           if not self._group_indexes else None)
            if old_row == new_row:
                continue
            if old_row is not None:
                out.append(Delta(old_row, -1))
            if new_row is not None:
                out.append(Delta(new_row, 1))
        if out:
            self.emit_batch(out)

    def snapshot(self) -> Any:
        return [(key, rows, [acc.to_state() for acc in accs])
                for key, (rows, accs) in self._state.items()]

    def restore(self, state: Any) -> None:
        self._state = self.ctx.new_state()
        self._state.put_many(
            (key, (rows, [_Accumulator.from_state(s) for s in accs]))
            for key, rows, accs in state)


class DeltaDistinctOp(DeltaOperator):
    """δ over deltas: emit only on 0 ↔ positive support transitions."""

    def __init__(self) -> None:
        self._state: StateBackend | None = None

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self._state = ctx.new_state()

    def process_element(self, value: Any, input_index: int = 0) -> None:
        row = value.row
        old = self._state.get(row, 0)
        new = old + value.weight
        if new < 0:
            raise StateError(f"distinct support of {row!r} below zero")
        if new:
            self._state.put(row, new)
        else:
            self._state.delete(row)
        if old == 0 and new > 0:
            self.emit(Delta(row, 1))
        elif old > 0 and new == 0:
            self.emit(Delta(row, -1))

    def snapshot(self) -> Any:
        return list(self._state.items())

    def restore(self, state: Any) -> None:
        self._state = self.ctx.new_state()
        self._state.put_many(state)


class DeltaSetOp(DeltaOperator):
    """Bag union / difference / intersection over two delta inputs.

    State per row: its (left, right) multiplicities.  The output
    multiplicity is a pure function of that pair — sum, monus, or min —
    so any input delta emits exactly the signed change of that function.
    Right-side rows are relabelled to the left schema (positional
    correspondence, as in SQL set operations).
    """

    _FUNCS = {
        "union": lambda l, r: l + r,
        "difference": lambda l, r: max(0, l - r),
        "intersection": lambda l, r: min(l, r),
    }

    def __init__(self, kind: str, left_schema: Schema) -> None:
        if kind not in self._FUNCS:
            raise PlanError(f"bad set-op kind {kind!r}")
        self.kind = kind
        self._fn = self._FUNCS[kind]
        self._schema = left_schema
        self._state: StateBackend | None = None

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self._state = ctx.new_state()

    def process_element(self, value: Any, input_index: int = 0) -> None:
        row = (value.row if input_index == 0
               else value.row.with_schema(self._schema))
        left, right = self._state.get(row, (0, 0))
        old_out = self._fn(left, right)
        if input_index == 0:
            left += value.weight
        else:
            right += value.weight
        if left < 0 or right < 0:
            raise StateError(f"set-op multiplicity of {row!r} below zero")
        if left or right:
            self._state.put(row, (left, right))
        else:
            self._state.delete(row)
        change = self._fn(left, right) - old_out
        if change:
            self.emit(Delta(row, change))

    def snapshot(self) -> Any:
        return list(self._state.items())

    def restore(self, state: Any) -> None:
        self._state = self.ctx.new_state()
        self._state.put_many(state)


class DeltaJoinOp(DeltaOperator):
    """Incremental equi/cross join over two delta inputs.

    Each side keeps a key → {row: multiplicity} index.  A delta joins
    the *other* side's current index (emitting weight × multiplicity per
    match), then lands in its own index — processing the two sides
    sequentially yields exactly the delta of the join.  Equi-joins skip
    NULL keys, matching the core reference semantics.
    """

    def __init__(self, left_key_indexes: list[int],
                 right_key_indexes: list[int],
                 residual: Callable[[Record], bool] | None = None) -> None:
        if len(left_key_indexes) != len(right_key_indexes):
            raise PlanError("join key arity mismatch")
        self._key_indexes = (left_key_indexes, right_key_indexes)
        self._equi = bool(left_key_indexes)
        self._residual = residual
        self._indexes: tuple[StateBackend, StateBackend] | None = None

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self._indexes = (ctx.new_state(), ctx.new_state())

    def process_element(self, value: Any, input_index: int = 0) -> None:
        row = value.row
        key = tuple(row[i] for i in self._key_indexes[input_index])
        if self._equi and any(k is None for k in key):
            # NULL never equals NULL: the row can't join, but it still
            # lands in no index (it could never be matched either).
            return
        own = self._indexes[input_index]
        other = self._indexes[1 - input_index]
        matches = other.get(key)
        if matches:
            out = []
            for other_row, multiplicity in matches.items():
                joined = (row.concat(other_row) if input_index == 0
                          else other_row.concat(row))
                if self._residual is not None and \
                        not self._residual(joined):
                    continue
                out.append(Delta(joined, value.weight * multiplicity))
            if out:
                self.emit_batch(out)
        entry = own.get(key)
        if entry is None:
            entry = {}
        count = entry.get(row, 0) + value.weight
        if count < 0:
            raise StateError(f"join index multiplicity of {row!r} below "
                             f"zero")
        if count:
            entry[row] = count
        else:
            entry.pop(row, None)
        if entry:
            own.put(key, entry)
        else:
            own.delete(key)

    def snapshot(self) -> Any:
        return [[(key, dict(rows)) for key, rows in side.items()]
                for side in self._indexes]

    def restore(self, state: Any) -> None:
        self._indexes = (self.ctx.new_state(), self.ctx.new_state())
        for side, entries in zip(self._indexes, state):
            side.put_many((key, dict(rows)) for key, rows in entries)
