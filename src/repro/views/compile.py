"""Compile a logical plan into a kernel delta plan for view refresh.

``compile_view_plan`` lowers a :class:`~repro.plan.ir.LogicalOp` tree —
the same IR every frontend produces — into an :class:`~repro.exec.plan.Plan`
whose operators all speak :class:`~repro.views.delta.Delta`.  Each
:class:`~repro.plan.ir.RelationScan` leaf becomes a named source channel
bound to a base table or upstream view; a terminal sink collects the
output deltas of one refresh.

View plans are *relational*: stream scans, windows and R2S roots have no
place in a materialised table's definition and are rejected at compile
time.  ``fuse()`` runs before ``open()`` so σ/π prefixes collapse into
single kernel nodes, exactly as in the standing-query path.

Priming: a freshly-opened plan does not represent the view of an empty
database until operators with non-trivial output-over-empty-input (the
global aggregate's COUNT = 0 row) have spoken.  ``prime()`` walks the
operators sinks-first, emitting each ``initial_output()`` downstream, so
inner operators fold their upstreams' primer rows into already-seeded
state; the sink's drain is the view's initial contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.errors import PlanError
from repro.core.records import Record, Schema
from repro.cql.expressions import compile_expr, compile_predicate
from repro.exec.plan import Plan
from repro.exec.state import StateBackend
from repro.plan.exprs import EmitMode
from repro.plan.ir import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    RelationScan,
    SetOp,
    WindowAggregate,
)
from repro.views.delta import Delta
from repro.views.operators import (
    DeltaAggregateOp,
    DeltaDistinctOp,
    DeltaFilterOp,
    DeltaJoinOp,
    DeltaOperator,
    DeltaProjectOp,
    DeltaSetOp,
)


@dataclass(frozen=True)
class SourceBinding:
    """One plan source channel fed by a named base table or view.

    ``schema`` is the (alias-qualified) scan schema; pushed rows are
    relabelled to it so self-joins and aliased scans resolve columns
    correctly.
    """

    channel: str
    table: str
    schema: Schema


class _SinkOp(DeltaOperator):
    """Terminal collector: buffers the plan's output deltas per refresh."""

    def __init__(self) -> None:
        self.collected: list[Delta] = []

    def process_element(self, value: Any, input_index: int = 0) -> None:
        self.collected.append(value)

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        self.collected.extend(batch)

    def drain(self) -> list[Delta]:
        out, self.collected = self.collected, []
        return out

    def restore(self, state: Any) -> None:
        # Output buffered mid-refresh dies with the crash; the refresh
        # that failed re-runs from the restored operator state.
        self.collected = []


class ViewPlanHandle:
    """A compiled, openable kernel plan maintaining one view."""

    def __init__(self, plan: Plan, bindings: list[SourceBinding],
                 sink: _SinkOp, out_schema: Schema,
                 operator_names: list[str]) -> None:
        self.plan = plan
        self.bindings = bindings
        self.out_schema = out_schema
        self._sink = sink
        self._names = operator_names
        self._opened = False

    # -- lifecycle --------------------------------------------------------------

    def open(self, state_factory: Callable[[], StateBackend] | None = None,
             **labels: str) -> list[Delta]:
        """Fuse, open and prime; returns the view-of-empty-base deltas."""
        if self._opened:
            raise PlanError("view plan already opened")
        self._opened = True
        self.plan.fuse()
        if state_factory is not None:
            self.plan.open(state_factory=state_factory, **labels)
        else:
            self.plan.open(**labels)
        return self._prime()

    def _prime(self) -> list[Delta]:
        # Sinks-first: a downstream operator seeds its own empty-input
        # output before any upstream primer row flows through it, so the
        # retract half of its first refresh pair lands on a row the sink
        # has already seen.
        for name in reversed(self.plan.node_names()):
            op = self.plan.operator(name)
            for primer in _initial_output(op):
                op.emit(primer)
        return self._sink.drain()

    def sources(self) -> list[str]:
        return [binding.table for binding in self.bindings]

    def operator_names(self) -> list[str]:
        """Post-fusion kernel node names (crash-injection targets)."""
        return self.plan.node_names()

    def operator(self, name: str) -> Any:
        return self.plan.operator(name)

    # -- refresh ----------------------------------------------------------------

    def push_deltas(self, deltas_by_table: Mapping[str, list[Delta]],
                    ) -> list[Delta]:
        """Push one refresh's input deltas; returns the output deltas.

        Each binding of a mentioned table receives the batch with rows
        relabelled to the scan's qualified schema (a table scanned twice
        — a self-join — feeds both channels).
        """
        for binding in self.bindings:
            incoming = deltas_by_table.get(binding.table)
            if not incoming:
                continue
            batch = [Delta(delta.row.with_schema(binding.schema),
                           delta.weight) for delta in incoming]
            self.plan.push_batch(binding.channel, batch)
        return self._sink.drain()

    # -- checkpointing ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return self.plan.snapshot()

    def restore(self, state: dict[str, Any]) -> None:
        self.plan.restore(state)
        self._sink.collected = []


def _initial_output(op: Any) -> list[Delta]:
    """``initial_output`` across fusion boundaries.

    A fused chain primes member-by-member: a member's primer rows flow
    through the chain *suffix* only, which is exactly the sinks-first
    discipline applied inside the chain.
    """
    from repro.exec.operator import FusedOperator

    if isinstance(op, FusedOperator):
        out: list[Delta] = []
        for position in range(len(op.members) - 1, -1, -1):
            member = op.members[position]
            for primer in _initial_output(member):
                member.emit(primer)
                # Member emitters feed the next member synchronously and
                # the tail writes to the chain's downstream, so nothing
                # to collect here.
        return out
    if isinstance(op, DeltaOperator):
        return op.initial_output()
    return []


class _Compiler:
    def __init__(self) -> None:
        self.plan = Plan()
        self.bindings: list[SourceBinding] = []
        self.names: list[str] = []
        self._counter = 0

    def _channel(self, label: str) -> str:
        self._counter += 1
        return f"{label}#{self._counter}"

    def lower(self, node: LogicalOp) -> str:
        if isinstance(node, RelationScan):
            channel = self.plan.add_source(
                self._channel(f"scan:{node.name}"))
            self.bindings.append(
                SourceBinding(channel, node.name, node.relation_schema))
            return channel
        if isinstance(node, Filter):
            child = self.lower(node.child)
            predicate = compile_predicate(node.predicate,
                                          node.child.schema)
            return self._add("filter", DeltaFilterOp(predicate), [child])
        if isinstance(node, Project):
            child = self.lower(node.child)
            evaluators = [compile_expr(expr, node.child.schema)
                          for expr in node.exprs]
            return self._add("project",
                             DeltaProjectOp(evaluators, node.schema),
                             [child])
        if isinstance(node, (Aggregate, WindowAggregate)):
            return self._lower_aggregate(node)
        if isinstance(node, Distinct):
            child = self.lower(node.child)
            return self._add("distinct", DeltaDistinctOp(), [child])
        if isinstance(node, SetOp):
            left = self.lower(node.left)
            right = self.lower(node.right)
            return self._add(node.kind,
                             DeltaSetOp(node.kind, node.left.schema),
                             [left, right])
        if isinstance(node, Join):
            return self._lower_join(node)
        raise PlanError(
            f"{node.op_name} cannot appear in a dynamic-table plan; view "
            f"definitions are relational (scans of tables/views, σ, π, γ, "
            f"δ, ∪/−/∩, ⋈)")

    def _add(self, label: str, op: DeltaOperator,
             inputs: list[str]) -> str:
        channel = self._channel(label)
        self.plan.add_operator(channel, op, inputs)
        self.names.append(channel)
        return channel

    def _lower_aggregate(self, node: Aggregate | WindowAggregate) -> str:
        if isinstance(node, WindowAggregate):
            if node.window is not None:
                raise PlanError(
                    "group windows cannot appear in a dynamic-table plan; "
                    "a view materialises a running (changelog) aggregate")
            if node.emit is not EmitMode.CHANGES:
                raise PlanError(
                    f"EMIT {node.emit.value.upper()} is meaningless for a "
                    f"dynamic table; views always materialise changes")
        child = self.lower(node.child)
        child_schema = node.child.schema
        group_indexes = [child_schema.index_of(name)
                         for name in node.group_by]
        evaluators = [None if agg.arg is None
                      else compile_expr(agg.arg, child_schema)
                      for agg in node.aggregates]
        kinds = [agg.kind for agg in node.aggregates]
        op = DeltaAggregateOp(group_indexes, evaluators, kinds, node.schema)
        return self._add("aggregate", op, [child])

    def _lower_join(self, node: Join) -> str:
        left = self.lower(node.left)
        right = self.lower(node.right)
        left_schema = node.left.schema
        right_schema = node.right.schema
        left_indexes = [left_schema.index_of(k) for k in node.left_keys]
        right_indexes = [right_schema.index_of(k) for k in node.right_keys]
        residual = (compile_predicate(node.residual, node.schema)
                    if node.residual is not None else None)
        op = DeltaJoinOp(left_indexes, right_indexes, residual)
        return self._add("join", op, [left, right])


def compile_view_plan(logical: LogicalOp) -> ViewPlanHandle:
    """Lower a relational logical plan into a kernel delta plan."""
    compiler = _Compiler()
    root = compiler.lower(logical)
    if not compiler.bindings:
        raise PlanError("a dynamic table must scan at least one source")
    sink = _SinkOp()
    compiler.plan.add_operator("sink", sink, [root])
    return ViewPlanHandle(compiler.plan, compiler.bindings, sink,
                          logical.schema, compiler.names)


def make_scan(name: str, alias: str | None, schema: Schema) -> RelationScan:
    """A RelationScan over ``name`` with the alias-qualified schema."""
    alias = alias or name
    return RelationScan(name, alias, schema.qualify(alias))
