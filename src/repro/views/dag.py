"""Dependency-DAG helpers for cascading dynamic tables.

Pure functions over the view dependency graph — ``upstreams`` maps each
view name to the names it scans (base tables and/or other views; base
tables appear as upstream names but never as keys).  The service keeps
the graph; these helpers answer the scheduling questions: refresh order,
DAG depth (obs), effective target lag under ``downstream`` propagation,
and which views sit below a suspended ancestor.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.errors import PlanError

#: target_lag sentinel: derive this view's lag from its consumers.
DOWNSTREAM = "downstream"


def topo_order(upstreams: Mapping[str, Sequence[str]]) -> list[str]:
    """View names in dependency order (upstream views first).

    Raises :class:`PlanError` on a cycle — a view DAG must be acyclic.
    """
    order: list[str] = []
    state: dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(name: str, stack: tuple[str, ...]) -> None:
        mark = state.get(name)
        if mark == 2:
            return
        if mark == 1:
            cycle = " -> ".join(stack[stack.index(name):] + (name,))
            raise PlanError(f"view dependency cycle: {cycle}")
        state[name] = 1
        for upstream in upstreams.get(name, ()):
            if upstream in upstreams:
                visit(upstream, stack + (name,))
        state[name] = 2
        order.append(name)

    for name in upstreams:
        visit(name, ())
    return order


def depth_map(upstreams: Mapping[str, Sequence[str]]) -> dict[str, int]:
    """DAG depth per view: base tables are depth 0, a view is
    1 + max(depth of its sources)."""
    depths: dict[str, int] = {}
    for name in topo_order(upstreams):
        depths[name] = 1 + max(
            (depths.get(up, 0) for up in upstreams[name]), default=0)
    return depths


def consumers_of(upstreams: Mapping[str, Sequence[str]],
                 ) -> dict[str, list[str]]:
    """Invert the graph: source name → views that scan it."""
    out: dict[str, list[str]] = {}
    for name, sources in upstreams.items():
        for source in sources:
            out.setdefault(source, []).append(name)
    return out


def effective_lags(upstreams: Mapping[str, Sequence[str]],
                   lags: Mapping[str, int | str],
                   ) -> dict[str, int | None]:
    """Resolve ``downstream`` lags against consumer demands.

    A ``downstream`` view inherits the tightest effective lag among the
    views that consume it — it must be at least as fresh as anything
    built on it demands.  A ``downstream`` view nobody consumes resolves
    to ``None``: no freshness obligation, refresh on demand only.
    """
    consumers = consumers_of(upstreams)
    resolved: dict[str, int | None] = {}
    # Reverse dependency order: consumers resolve before their sources.
    for name in reversed(topo_order(upstreams)):
        lag = lags[name]
        if lag != DOWNSTREAM:
            resolved[name] = lag
            continue
        demands = [resolved[consumer] for consumer in consumers.get(name, ())
                   if resolved.get(consumer) is not None]
        resolved[name] = min(demands) if demands else None
    return resolved


def below_suspended(upstreams: Mapping[str, Sequence[str]],
                    suspended: set[str]) -> set[str]:
    """Views with a suspended (transitive) ancestor view.

    Refreshing them would read a stale frozen source, so the scheduler
    holds them where they are until the ancestor resumes.
    """
    blocked: set[str] = set()
    for name in topo_order(upstreams):
        for upstream in upstreams[name]:
            if upstream in suspended or upstream in blocked:
                blocked.add(name)
                break
    return blocked
