"""The dynamic-table service: a cascading materialized-view DAG.

Snowflake-style dynamic tables (paper §5.1's streaming-database pillar):
each view is a standing relational query *materialised* into a table
other queries can scan.  The service owns

* **base tables** — insert/delete via :meth:`DynamicTableService.apply`,
  every commit stamped with a monotone version and logged as CDC deltas;
* **views** — defined in streaming SQL (``CREATE DYNAMIC TABLE``),
  through the unified planner (so the :class:`~repro.plan.SubplanMemo`
  rewrites a new view's subtrees onto already-installed views), compiled
  to kernel delta plans (:mod:`repro.views.compile`);
* **the refresh scheduler** — topologically-ordered incremental refresh:
  a view catches up by pulling exactly the changelog slice
  ``(its version, target version]`` from each source and pushing it
  through its plan (Elghandour et al.'s delta-driven refresh with
  affected-keys scoping inside the aggregate operator);
* **target lag** — ``target_lag=n`` means "never more than n ticks
  stale"; ``target_lag="downstream"`` derives the obligation from
  consumers; suspend/resume freezes a view (and holds everything built
  on it);
* **snapshot-isolated reads** — every refresh files the new
  materialisation under its version in a bounded history, so
  ``read(name, version=v)`` sees the exact contents as of version v.

The whole service implements ``snapshot()``/``restore()`` (the chaos
``RecoveryManager`` protocol), covering kernel operator state inside
every view plan — a mid-refresh crash rolls back to the last checkpoint
and the re-run refresh converges to the same contents.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import repro.obs as obs
from repro.core.errors import PlanError, StateError
from repro.core.records import Record, Schema
from repro.core.relation import Bag
from repro.cql.catalog import Catalog
from repro.plan.ir import LogicalOp, RelationScan, walk
from repro.plan.rules import optimize
from repro.plan.sharing import SubplanMemo, absorb_views, view_memo_key
from repro.views.compile import ViewPlanHandle, compile_view_plan
from repro.views.dag import (
    DOWNSTREAM,
    below_suspended,
    depth_map,
    effective_lags,
    topo_order,
)
from repro.views.delta import Changelog, Delta, apply_deltas, net

#: Materialisation versions retained per view for snapshot-isolated reads.
HISTORY_LIMIT = 8


class BaseTable:
    """A versioned base table: current contents plus its CDC changelog."""

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self.contents = Bag()
        self.changelog = Changelog()
        self.version = -1

    def coerce(self, row: Mapping[str, Any] | Record) -> Record:
        if isinstance(row, Record):
            return row.with_schema(self.schema)
        return Record.from_mapping(self.schema, row)


class DynamicTable:
    """One installed view: plan, kernel handle, refresh bookkeeping."""

    def __init__(self, name: str, plan: LogicalOp, handle: ViewPlanHandle,
                 target_lag: int | str | None) -> None:
        self.name = name
        self.plan = plan
        self.handle = handle
        self.target_lag = target_lag
        self.schema = handle.out_schema
        self.sources = sorted(set(handle.sources()))
        self.materialized = Bag()
        self.changelog = Changelog()
        self.version = -1
        self.suspended = False
        self.refreshes = 0
        #: bounded (version, contents) history for snapshot reads
        self.history: list[tuple[int, Bag]] = []

    def record_version(self, version: int) -> None:
        self.history.append((version, self.materialized.copy()))
        if len(self.history) > HISTORY_LIMIT:
            del self.history[0]

    def at_version(self, version: int) -> Bag:
        chosen: Bag | None = None
        for recorded, contents in self.history:
            if recorded <= version:
                chosen = contents
            else:
                break
        if chosen is None:
            raise StateError(
                f"view {self.name!r} has no retained materialisation at "
                f"version {version} (history starts at "
                f"{self.history[0][0] if self.history else 'never'})")
        return chosen.copy()


class DynamicTableService:
    """Base tables + dynamic tables + the cascading refresh scheduler."""

    def __init__(self) -> None:
        self.clock = 0
        self.catalog = Catalog()  # schema registry for SQL lowering
        self.memo = SubplanMemo()
        self._tables: dict[str, BaseTable] = {}
        self._views: dict[str, DynamicTable] = {}
        self._upstreams: dict[str, tuple[str, ...]] = {}

    # -- registration -----------------------------------------------------------

    def create_table(self, name: str,
                     schema: Schema | Sequence[str]) -> BaseTable:
        """Register a base table (insert/delete via :meth:`apply`)."""
        if not isinstance(schema, Schema):
            schema = Schema(tuple(schema))
        self.catalog.register_relation(name, schema)  # rejects duplicates
        table = BaseTable(name, schema)
        self._tables[name] = table
        return table

    def execute(self, text: str) -> DynamicTable:
        """Run a ``CREATE DYNAMIC TABLE ... [TARGET_LAG ...] AS SELECT``."""
        from repro.sql.ast import CreateDynamicTable
        from repro.sql.lower import lower_statement
        from repro.sql.parser import parse_statement

        statement = parse_statement(text)
        if not isinstance(statement, CreateDynamicTable):
            raise PlanError(
                "execute() takes CREATE DYNAMIC TABLE statements; use "
                "apply()/read() for data access")
        logical = lower_statement(statement.select, self.catalog)
        target_lag = (statement.target_lag
                      if statement.target_lag is not None else 0)
        return self.create_from_plan(statement.name, logical,
                                     target_lag=target_lag)

    def create_from_plan(self, name: str, plan: LogicalOp,
                         target_lag: int | str | None = 0) -> DynamicTable:
        """Install a view from a logical plan (any frontend's lowering)."""
        if target_lag is not None and target_lag != DOWNSTREAM and (
                not isinstance(target_lag, int) or target_lag < 0):
            raise PlanError(f"bad target_lag {target_lag!r}: integer >= 0, "
                            f"{DOWNSTREAM!r} or None")
        optimized = optimize(plan)
        # Route the definition through the sharing memo: any subtree that
        # matches an installed view's plan becomes a scan of that view,
        # so cascades share materialised work instead of recomputing it.
        self.memo.start_compile()
        absorbed = absorb_views(optimized, self.memo)
        for node in walk(absorbed):
            if isinstance(node, RelationScan) and \
                    node.name not in self._tables and \
                    node.name not in self._views:
                raise PlanError(f"view {name!r} scans unknown table "
                                f"{node.name!r}")
        handle = compile_view_plan(absorbed)
        self.catalog.register_relation(name, handle.out_schema)
        self.memo.publish(view_memo_key(optimized),
                          (name, handle.out_schema))
        self.memo.publish(view_memo_key(absorbed),
                          (name, handle.out_schema))
        self.memo.finish_compile()

        view = DynamicTable(name, absorbed, handle, target_lag)
        initial = net(handle.open(view=name))
        apply_deltas(view.materialized, initial)
        if initial:
            # The primed output (e.g. a global aggregate's empty-input
            # row) must reach future downstream views through the
            # changelog too — their first catch-up pulls (-1, clock], so
            # stamp it at version 0 and it replays exactly once.
            view.changelog.append(0, initial)
        self._views[name] = view
        self._upstreams[name] = tuple(view.sources)
        depths = depth_map(self._upstreams)
        obs.get_registry().gauge("views.dag.depth", view=name).set(
            depths[name])
        # Catch up to the present: the freshly-primed plan replays every
        # committed delta, which doubles as the initial full computation.
        self.refresh(name)
        return view

    # -- base-table writes ------------------------------------------------------

    def apply(self, name: str,
              inserts: Iterable[Mapping[str, Any] | Record] = (),
              deletes: Iterable[Mapping[str, Any] | Record] = (),
              at: int | None = None) -> int:
        """Commit a batch of inserts/deletes; returns the commit version.

        The commit version is ``at`` when given (must not precede the
        clock) or the current clock; the service clock advances to it.
        """
        table = self._tables.get(name)
        if table is None:
            raise StateError(f"unknown base table {name!r}"
                             + (" (views are refreshed, not written)"
                                if name in self._views else ""))
        version = self.clock if at is None else at
        if version < self.clock:
            raise StateError(f"commit at version {version} precedes the "
                             f"service clock {self.clock}")
        deltas = [Delta(table.coerce(row), 1) for row in inserts]
        deltas += [Delta(table.coerce(row), -1) for row in deletes]
        netted = net(deltas)
        for delta in netted:
            if delta.weight < 0 and \
                    table.contents.count(delta.row) < -delta.weight:
                raise StateError(
                    f"deleting {-delta.weight} × {delta.row!r} from "
                    f"{name!r} but only "
                    f"{table.contents.count(delta.row)} present")
        apply_deltas(table.contents, netted)
        table.changelog.append(version, netted)
        table.version = version
        self.clock = version
        return version

    # -- refresh ----------------------------------------------------------------

    def refresh(self, name: str, to: int | None = None) -> int:
        """Bring ``name`` (and, recursively, its upstream views) up to
        version ``to`` (default: the service clock).  Returns the rows
        changed in the view's materialisation."""
        view = self._require_view(name)
        if view.suspended:
            raise StateError(f"view {name!r} is suspended")
        target = self.clock if to is None else to
        return self._refresh_to(view, target)

    def _refresh_to(self, view: DynamicTable, target: int) -> int:
        if view.version >= target:
            return 0
        for source in view.sources:
            upstream = self._views.get(source)
            if upstream is None:
                continue
            if upstream.suspended:
                raise StateError(
                    f"view {view.name!r} reads suspended view "
                    f"{upstream.name!r}; resume it first")
            self._refresh_to(upstream, target)
        incoming: dict[str, list[Delta]] = {}
        for source in view.sources:
            log = (self._tables[source].changelog
                   if source in self._tables
                   else self._views[source].changelog)
            slice_ = log.between(view.version, target)
            if slice_:
                incoming[source] = slice_
        lag = target - view.version
        changed = 0
        if incoming:
            out = net(view.handle.push_deltas(incoming))
            apply_deltas(view.materialized, out)
            view.changelog.append(target, out)
            changed = sum(abs(delta.weight) for delta in out)
        view.version = target
        view.refreshes += 1
        view.record_version(target)
        registry = obs.get_registry()
        registry.gauge("views.refresh.lag", view=view.name).set(lag)
        registry.counter("views.refresh.rows", view=view.name).inc(changed)
        return changed

    def tick(self, to: int | None = None) -> list[str]:
        """Advance the clock and refresh every view whose target lag is
        (or would fall) overdue; returns the views refreshed, in
        dependency order.  Suspended views — and views anywhere below a
        suspended ancestor — hold their current version."""
        self.clock = self.clock + 1 if to is None else to
        lags = self.effective_lags()
        blocked = below_suspended(
            self._upstreams,
            {name for name, view in self._views.items() if view.suspended})
        refreshed = []
        for name in topo_order(self._upstreams):
            view = self._views[name]
            if view.suspended or name in blocked:
                continue
            lag = lags[name]
            if lag is None:
                continue  # no freshness obligation: on-demand only
            if self.clock - view.version >= lag:
                self._refresh_to(view, self.clock)
                refreshed.append(name)
        self.gc()
        return refreshed

    def gc(self) -> dict[str, int]:
        """Reclaim changelog history no consumer can pull again.

        Each source's low-water mark is the minimum consumed version
        across the views reading it (a suspended consumer holds the mark
        down, so its catch-up slice survives); a source with no consumers
        uses the clock.  Entries at or below the mark are netted into one
        version-0 batch (see :meth:`Changelog.gc`), which keeps the
        primed-replay invariant for views attached later.  Returns the
        entries reclaimed per table/view name.
        """
        marks: dict[str, int] = {}
        for view in self._views.values():
            for source in view.sources:
                marks[source] = min(marks.get(source, view.version),
                                    view.version)
        reclaimed: dict[str, int] = {}
        logs = [(name, table.changelog)
                for name, table in self._tables.items()]
        logs += [(name, view.changelog)
                 for name, view in self._views.items()]
        for name, log in logs:
            count = log.gc(marks.get(name, self.clock))
            if count:
                reclaimed[name] = count
        return reclaimed

    def effective_lags(self) -> dict[str, int | None]:
        """Per-view lag obligations after ``downstream`` propagation."""
        return effective_lags(
            self._upstreams,
            {name: view.target_lag for name, view in self._views.items()})

    # -- suspend / resume -------------------------------------------------------

    def suspend(self, name: str) -> None:
        self._require_view(name).suspended = True

    def resume(self, name: str) -> None:
        self._require_view(name).suspended = False

    # -- reads ------------------------------------------------------------------

    def read(self, name: str, version: int | None = None) -> Bag:
        """The contents of a table or view.

        For a view, ``version`` selects a snapshot-isolated read at a
        past refresh version (within the retained history); the default
        is the latest materialisation — *as of the view's own version*,
        which may lag the clock by up to its target lag.
        """
        if name in self._tables:
            if version is not None:
                raise StateError("base tables expose current contents "
                                 "only; views retain version history")
            return self._tables[name].contents.copy()
        view = self._require_view(name)
        if version is None:
            return view.materialized.copy()
        return view.at_version(version)

    def view(self, name: str) -> DynamicTable:
        return self._require_view(name)

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def view_names(self) -> list[str]:
        return sorted(self._views)

    def upstreams(self) -> dict[str, tuple[str, ...]]:
        return dict(self._upstreams)

    def _require_view(self, name: str) -> DynamicTable:
        view = self._views.get(name)
        if view is None:
            raise StateError(f"unknown view {name!r}")
        return view

    # -- checkpointing (chaos RecoveryManager protocol) -------------------------

    def snapshot(self) -> dict[str, Any]:
        """Whole-service image: clock, tables, views *and* the kernel
        operator state inside every view plan, so recovery covers a
        mid-refresh crash."""
        return {
            "clock": self.clock,
            "tables": {
                name: {
                    "contents": list(table.contents.items()),
                    "changelog": table.changelog.snapshot(),
                    "version": table.version,
                } for name, table in self._tables.items()},
            "views": {
                name: {
                    "materialized": list(view.materialized.items()),
                    "changelog": view.changelog.snapshot(),
                    "version": view.version,
                    "suspended": view.suspended,
                    "refreshes": view.refreshes,
                    "history": [(v, list(bag.items()))
                                for v, bag in view.history],
                    "plan": view.handle.snapshot(),
                } for name, view in self._views.items()},
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot into the *same* registered definitions —
        plans are code, the snapshot carries only their state."""
        missing = [name for name in state["tables"]
                   if name not in self._tables]
        missing += [name for name in state["views"]
                    if name not in self._views]
        if missing:
            raise StateError(f"snapshot references unregistered tables or "
                             f"views {sorted(missing)}")
        self.clock = state["clock"]
        for name, image in state["tables"].items():
            table = self._tables[name]
            table.contents = Bag.from_counts(dict(image["contents"]))
            table.changelog.restore(image["changelog"])
            table.version = image["version"]
        for name, image in state["views"].items():
            view = self._views[name]
            view.materialized = Bag.from_counts(dict(image["materialized"]))
            view.changelog.restore(image["changelog"])
            view.version = image["version"]
            view.suspended = image["suspended"]
            view.refreshes = image["refreshes"]
            view.history = [(v, Bag.from_counts(dict(items)))
                            for v, items in image["history"]]
            view.handle.restore(image["plan"])
