"""repro.views — dynamic tables: a cascading materialized-view DAG.

The streaming-database pillar (paper §5.1): standing relational queries
materialised into tables other queries can scan, organised into a
dependency DAG with topologically-ordered incremental refresh driven by
CDC deltas, per-view ``target_lag`` (including ``downstream``
propagation), suspend/resume, and snapshot-isolated reads.

Module map:

* :mod:`repro.views.delta` — z-set deltas and version-stamped changelogs
* :mod:`repro.views.operators` — kernel delta operators (σ π γ δ ∪−∩ ⋈)
* :mod:`repro.views.compile` — logical plan → kernel delta plan
* :mod:`repro.views.reference` — full-recompute reference evaluator
* :mod:`repro.views.dag` — dependency-graph scheduling helpers
* :mod:`repro.views.service` — tables, views, the refresh scheduler
"""

from repro.views.compile import (
    SourceBinding,
    ViewPlanHandle,
    compile_view_plan,
    make_scan,
)
from repro.views.dag import (
    DOWNSTREAM,
    below_suspended,
    consumers_of,
    depth_map,
    effective_lags,
    topo_order,
)
from repro.views.delta import Changelog, Delta, apply_deltas, net
from repro.views.reference import recompute
from repro.views.service import (
    BaseTable,
    DynamicTable,
    DynamicTableService,
    HISTORY_LIMIT,
)

__all__ = [
    "BaseTable", "Changelog", "DOWNSTREAM", "Delta", "DynamicTable",
    "DynamicTableService", "HISTORY_LIMIT", "SourceBinding",
    "ViewPlanHandle", "apply_deltas", "below_suspended", "compile_view_plan",
    "consumers_of", "depth_map", "effective_lags", "make_scan", "net",
    "recompute", "topo_order",
]
