"""Reference evaluator: full recompute of a view plan from base contents.

The denotational counterpart of the incremental kernel path — evaluate
the logical plan bottom-up over complete :class:`~repro.core.relation.Bag`
contents, no deltas, no state.  The difftest ``kernel-views`` leg and the
dynamic-tables bench both pin the incremental refresh against this
function; the two paths deliberately share ``spec_output`` and the
viewmaint accumulator so any divergence is a *maintenance* bug, not a
semantics disagreement.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.errors import PlanError
from repro.core.records import Record
from repro.core.relation import Bag
from repro.cql.expressions import compile_expr, compile_predicate
from repro.plan.ir import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    RelationScan,
    SetOp,
    WindowAggregate,
)
from repro.viewmaint.strategies import _Accumulator
from repro.views.operators import spec_output


def recompute(plan: LogicalOp, contents: Mapping[str, Bag]) -> Bag:
    """Evaluate ``plan`` over full base contents (a bag per source name)."""
    if isinstance(plan, RelationScan):
        if plan.name not in contents:
            raise PlanError(f"no contents for scanned table {plan.name!r}")
        out = Bag()
        for row, count in contents[plan.name].items():
            out.add(row.with_schema(plan.relation_schema), count)
        return out
    if isinstance(plan, Filter):
        child = recompute(plan.child, contents)
        predicate = compile_predicate(plan.predicate, plan.child.schema)
        return child.filter(predicate)
    if isinstance(plan, Project):
        child = recompute(plan.child, contents)
        evaluators = [compile_expr(expr, plan.child.schema)
                      for expr in plan.exprs]
        schema = plan.schema
        return child.map(lambda row: Record(
            schema, tuple(e(row) for e in evaluators), validate=False))
    if isinstance(plan, (Aggregate, WindowAggregate)):
        if isinstance(plan, WindowAggregate) and plan.window is not None:
            raise PlanError("group windows have no recompute semantics "
                            "over a static relation")
        return _recompute_aggregate(plan, contents)
    if isinstance(plan, Distinct):
        return recompute(plan.child, contents).distinct()
    if isinstance(plan, SetOp):
        left = recompute(plan.left, contents)
        right_raw = recompute(plan.right, contents)
        right = Bag()
        schema = plan.left.schema
        for row, count in right_raw.items():
            right.add(row.with_schema(schema), count)
        if plan.kind == "union":
            return left.union(right)
        if plan.kind == "difference":
            return left.difference(right)
        return left.intersection(right)
    if isinstance(plan, Join):
        return _recompute_join(plan, contents)
    raise PlanError(f"{plan.op_name} cannot appear in a dynamic-table plan")


def _recompute_aggregate(plan: Aggregate | WindowAggregate,
                         contents: Mapping[str, Bag]) -> Bag:
    child = recompute(plan.child, contents)
    child_schema = plan.child.schema
    group_indexes = [child_schema.index_of(name) for name in plan.group_by]
    evaluators = [None if agg.arg is None
                  else compile_expr(agg.arg, child_schema)
                  for agg in plan.aggregates]
    groups: dict[tuple, list[_Accumulator]] = {}
    for row, count in child.items():
        key = tuple(row[i] for i in group_indexes)
        accs = groups.get(key)
        if accs is None:
            accs = [_Accumulator() for _ in plan.aggregates]
            groups[key] = accs
        for acc, evaluator in zip(accs, evaluators):
            value = 1 if evaluator is None else evaluator(row)
            if value is not None:
                acc.add(value, count)
    if not groups and not plan.group_by:
        # SQL: an ungrouped aggregate of an empty relation is one row.
        groups[()] = [_Accumulator() for _ in plan.aggregates]
    out = Bag()
    schema = plan.schema
    for key, accs in groups.items():
        values = list(key)
        for agg, acc in zip(plan.aggregates, accs):
            values.append(spec_output(agg.kind, acc))
        out.add(Record(schema, values, validate=False))
    return out


def _recompute_join(plan: Join, contents: Mapping[str, Bag]) -> Bag:
    left = recompute(plan.left, contents)
    right = recompute(plan.right, contents)
    left_schema = plan.left.schema
    right_schema = plan.right.schema
    left_indexes = [left_schema.index_of(k) for k in plan.left_keys]
    right_indexes = [right_schema.index_of(k) for k in plan.right_keys]
    residual = (compile_predicate(plan.residual, plan.schema)
                if plan.residual is not None else None)
    out = Bag()
    for left_row, left_count in left.items():
        left_key = tuple(left_row[i] for i in left_indexes)
        if left_indexes and any(k is None for k in left_key):
            continue
        for right_row, right_count in right.items():
            right_key = tuple(right_row[i] for i in right_indexes)
            if right_indexes and any(k is None for k in right_key):
                continue
            if left_key != right_key:
                continue
            joined = left_row.concat(right_row)
            if residual is not None and not residual(joined):
                continue
            out.add(joined, left_count * right_count)
    return out
