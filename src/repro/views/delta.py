"""CDC deltas and version-stamped changelogs for dynamic tables.

A :class:`Delta` is one z-set entry — a record with a signed weight
(+n inserts, −n deletes), the carrier of incremental view maintenance
(Elghandour et al.'s delta-driven refresh).  A :class:`Changelog` is the
append-only log of a table's committed deltas, stamped with the refresh
version (an integer instant) at which they took effect; downstream views
pull exactly the slice ``(their version, target version]`` to catch up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.errors import StateError
from repro.core.records import Record
from repro.core.relation import Bag


@dataclass(frozen=True)
class Delta:
    """One signed change: ``weight`` copies of ``row`` added (or removed)."""

    row: Record
    weight: int

    def __post_init__(self) -> None:
        if self.weight == 0:
            raise StateError("a delta must have non-zero weight")


def net(deltas: Iterable[Delta]) -> list[Delta]:
    """Collapse deltas row-wise: weights sum, zero-weight rows vanish.

    Keeps changelogs tight — an affected-keys refresh emits a retract +
    insert per touched group, and when the pair cancels (the group's
    aggregate landed back on the same value) nothing is logged.
    """
    weights: dict[Record, int] = {}
    for delta in deltas:
        weights[delta.row] = weights.get(delta.row, 0) + delta.weight
    return [Delta(row, weight) for row, weight in weights.items() if weight]


def apply_deltas(bag: Bag, deltas: Iterable[Delta]) -> None:
    """Apply deltas to a materialised bag in place.

    Raises :class:`StateError` when a retract exceeds the bag's
    multiplicity — that is a torn changelog, never a valid refresh.
    """
    for delta in deltas:
        if delta.weight > 0:
            bag.add(delta.row, delta.weight)
        else:
            removed = bag.discard(delta.row, -delta.weight)
            if removed != -delta.weight:
                raise StateError(
                    f"retracting {-delta.weight} × {delta.row!r} but only "
                    f"{removed} present")


class Changelog:
    """An append-only, version-stamped log of committed deltas."""

    def __init__(self) -> None:
        self._versions: list[int] = []
        self._batches: list[tuple[Delta, ...]] = []

    def append(self, version: int, deltas: Iterable[Delta]) -> None:
        """Commit ``deltas`` at ``version`` (versions never decrease)."""
        batch = tuple(deltas)
        if not batch:
            return
        if self._versions and version < self._versions[-1]:
            raise StateError(
                f"changelog versions must not decrease: {version} after "
                f"{self._versions[-1]}")
        self._versions.append(version)
        self._batches.append(batch)

    def between(self, after: int, upto: int) -> list[Delta]:
        """All deltas committed at versions in ``(after, upto]``."""
        out: list[Delta] = []
        for version, batch in zip(self._versions, self._batches):
            if after < version <= upto:
                out.extend(batch)
        return out

    def latest_version(self) -> int | None:
        return self._versions[-1] if self._versions else None

    def entries(self) -> Iterator[tuple[int, tuple[Delta, ...]]]:
        return iter(zip(self._versions, self._batches))

    def __len__(self) -> int:
        return len(self._versions)

    def gc(self, below: int) -> int:
        """Compact entries committed at versions ``<= below`` into one
        netted batch stamped at version 0; returns entries reclaimed.

        Safe when every attached consumer has consumed past ``below``: a
        consumer at version ``v >= below`` only ever pulls ``(v, ...]``,
        which excludes version 0.  A consumer attached *later* starts at
        version -1 and pulls ``(-1, clock]`` — the compacted batch nets
        all reclaimed history (including any version-0 priming batch), so
        full replay still reconstructs the exact current contents.  That
        is why reclaimed history is netted and kept at version 0 rather
        than dropped.
        """
        from bisect import bisect_right

        cut = bisect_right(self._versions, below)
        if cut <= 1:
            return 0
        merged = net(delta for batch in self._batches[:cut]
                     for delta in batch)
        head_versions = [0] if merged else []
        head_batches = [tuple(merged)] if merged else []
        reclaimed = cut - len(head_versions)
        self._versions = head_versions + self._versions[cut:]
        self._batches = head_batches + self._batches[cut:]
        return reclaimed

    # -- checkpointing --------------------------------------------------------

    def snapshot(self) -> dict:
        return {"versions": list(self._versions),
                "batches": list(self._batches)}

    def restore(self, state: dict) -> None:
        self._versions = list(state["versions"])
        self._batches = list(state["batches"])
