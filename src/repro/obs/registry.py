"""The metrics registry: hierarchical names, labeled children, snapshots.

One :class:`MetricsRegistry` holds every metric the engine layers publish.
Metrics are addressed by a **hierarchical dotted name** plus an optional
label set, e.g.::

    registry.counter("cql.executor.join.rows", query="hot")
    registry.histogram("dsms.queue.wait", buckets=(1, 10, 100))

Repeated calls with the same name and labels return the same object, so
instrumented code can look a metric up once and keep the reference.  Tests
reset the whole registry through :func:`repro.obs.reset` (an autouse
fixture in the repo's ``conftest.py`` does this between tests).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, Metric

#: A metric's identity: (dotted name, sorted label items).
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, str]) -> MetricKey:
    if not name:
        raise ValueError("metric name must be non-empty")
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A flat store of metrics addressed by hierarchical name + labels."""

    def __init__(self) -> None:
        self._metrics: dict[MetricKey, Metric] = {}

    # -- metric factories ------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, buckets: Sequence[float] | None = None,
                  **labels: str) -> Histogram:
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, dict(key[1]), buckets=buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{type(metric).__name__}")
        return metric

    def _get_or_create(self, cls: type, name: str,
                       labels: Mapping[str, str]) -> Any:
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, dict(key[1]))
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{type(metric).__name__}")
        return metric

    # -- navigation ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def find(self, prefix: str) -> list[Metric]:
        """All metrics whose dotted name starts with ``prefix``."""
        return [m for m in self
                if m.name == prefix or m.name.startswith(prefix + ".")]

    def get(self, name: str, **labels: str) -> Metric | None:
        return self._metrics.get(_key(name, labels))

    def children(self, name: str) -> list[Metric]:
        """Every labeled child registered under exactly ``name``."""
        return [m for m in self if m.name == name]

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        self._metrics.clear()

    def snapshot(self) -> list[dict[str, Any]]:
        """A JSON-ready dump: one dict per metric, sorted by identity."""
        return [{"name": m.name, "kind": m.kind, "labels": m.labels,
                 **m.as_dict()} for m in self]
