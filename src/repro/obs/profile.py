"""Continuous EXPLAIN ANALYZE: per-operator profiling and introspection.

The profiling layer the adaptivity loop and serving tier sit on (ROADMAP
items 4 and 5): where :mod:`repro.obs` gives raw counters/gauges, this
module attributes *cost* to individual operators and renders it back onto
plans as a live EXPLAIN ANALYZE.  Four pieces:

* **Per-operator collectors** — :class:`OperatorProfile` records flowing
  in/out (live selectivity), busy wall-time via *sampled* self-time
  timing (1 in ``sample_every`` element flows is timed; nesting is
  untangled with a child-time stack so shares sum to ~100%), plus
  pull-based state-size and watermark-lag estimates.  The kernel
  (:mod:`repro.exec.plan`) wires these at ``open()`` time **only when**
  :func:`enable` has been called — the disabled hot path does zero
  profiling work (no collector allocation, no timing calls), which the
  tier-1 guard test pins.
* **Backpressure telemetry** — queue peak/pressure tracking lives on
  :class:`repro.dsms.queues.InputQueue` and the runtime mailboxes;
  :class:`StallDetector` spots sources that stopped producing while the
  rest of the engine advances.
* **Flight recorder** — :class:`FlightRecorder`, a bounded ring of recent
  structured events (element batches, watermark advances, checkpoint
  barriers, recovery attempts, queue pressure), dumpable on demand or on
  crash (:func:`dump_on_crash`).
* **Introspection surface** — :func:`explain_analyze` annotates a plan
  with live stats, :func:`render_top` is the ``python -m repro.obs top``
  console view, and :func:`write_snapshot` is the JSONL endpoint.

Import discipline: this module imports only the standard library at
module level (the execution layers import it on *their* hot paths, so it
must not import them back).  Everything from ``repro.*`` is imported
lazily inside functions.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import time
import weakref
from collections import deque
from typing import Any, Iterator, Mapping

#: Profiling master switch.  Hot paths read this module attribute
#: directly (one load + one truth test); it is flipped only through
#: :func:`enable` / :func:`disable` / :func:`reset`.
_ENABLED = False

#: Default sampling rate: 1 in N element flows through a plan is timed.
DEFAULT_SAMPLE_EVERY = 16

#: One in N plan pushes lands an ``element.push`` flight-recorder event.
FLIGHT_EVERY = 64

#: Queue occupancy fraction at which the pressure signal trips.
PRESSURE_THRESHOLD = 0.8

_sample_every = DEFAULT_SAMPLE_EVERY


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class FlightRecorder:
    """A bounded ring buffer of recent structured events.

    Everything interesting that happened lately — element batches,
    watermark advances, checkpoint barriers, recovery attempts, queue
    pressure crossings — lands here as a small dict; the ring keeps the
    newest ``capacity`` events and can be dumped as JSONL on demand or on
    crash.  Recording is an O(1) deque append, but call sites still gate
    on :data:`_ENABLED` so the disabled path pays nothing at all.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0

    def record(self, kind: str, **fields: Any) -> None:
        self._seq += 1
        self._events.append({"seq": self._seq, "kind": kind,
                             "wall": time.time(), **fields})

    def events(self) -> list[dict[str, Any]]:
        return list(self._events)

    def tail(self, n: int = 16) -> list[dict[str, Any]]:
        if n <= 0:
            return []
        return list(self._events)[-n:]

    @property
    def recorded(self) -> int:
        """Total events ever recorded (>= ``len`` once the ring wraps)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0

    def dump_jsonl(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write every retained event, one JSON object per line."""
        path = pathlib.Path(path)
        lines = [json.dumps(event, sort_keys=True, default=repr)
                 for event in self._events]
        path.write_text("\n".join(lines) + ("\n" if lines else ""),
                        encoding="utf-8")
        return path


_RECORDER = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return _RECORDER


@contextlib.contextmanager
def dump_on_crash(path: str | pathlib.Path) -> Iterator[FlightRecorder]:
    """Dump the flight recorder to ``path`` if the body raises."""
    try:
        yield _RECORDER
    except BaseException:
        _RECORDER.dump_jsonl(path)
        raise


# ---------------------------------------------------------------------------
# Per-operator collectors
# ---------------------------------------------------------------------------


class OperatorProfile:
    """Live cost collectors for one kernel plan node.

    ``records_in``/``records_out`` are exact; ``busy_seconds`` is the
    *sampled self-time* sum — only 1 in ``sample_every`` element flows is
    timed (``timed_in`` counts them), and nested downstream work is
    subtracted via the profiler's child-time stack, so busy shares across
    a plan sum to ~100% regardless of how deeply pushes nest.
    """

    __slots__ = ("name", "kind", "records_in", "records_out",
                 "busy_seconds", "timed_in", "batches_in", "batch_rows")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.records_in = 0
        self.records_out = 0
        self.busy_seconds = 0.0
        self.timed_in = 0
        #: batched deliveries (vectorized path); per-element pushes do
        #: not count here, so batches_in == 0 means the operator only
        #: ever saw the scalar protocol.
        self.batches_in = 0
        #: rows-per-batch histogram, power-of-two buckets (bucket 8
        #: counts batches of 5..8 rows).  Bounded: ~60 buckets max.
        self.batch_rows: dict[int, int] = {}

    def record_batch(self, rows: int) -> None:
        self.batches_in += 1
        bucket = 1 << (rows - 1).bit_length() if rows > 0 else 0
        self.batch_rows[bucket] = self.batch_rows.get(bucket, 0) + 1

    @property
    def selectivity(self) -> float | None:
        if not self.records_in:
            return None
        return self.records_out / self.records_in

    def as_dict(self) -> dict[str, Any]:
        return {"operator": self.name, "kind": self.kind,
                "records_in": self.records_in,
                "records_out": self.records_out,
                "selectivity": self.selectivity,
                "busy_seconds": self.busy_seconds,
                "timed_in": self.timed_in,
                "batches_in": self.batches_in,
                "rows_per_batch": dict(sorted(self.batch_rows.items()))}


#: Live plan profilers (weakly held; obs.reset() drops them eagerly).
_PROFILERS: "weakref.WeakSet[PlanProfiler]" = weakref.WeakSet()


class PlanProfiler:
    """Per-plan profiling state: collectors, sampling tick, timing stack.

    Created by :meth:`repro.exec.plan.Plan.open` **iff** profiling was
    enabled before the plan opened.  ``tick`` advances per plan-wide
    push/advance; ``timing`` is the per-flow sampling decision (set once
    per push so every operator in one element's synchronous flow is timed
    consistently).  ``stack`` holds one accumulated-child-time frame per
    in-flight timed call; the kernel subtracts it to get self-time.
    """

    def __init__(self, plan: Any, sample_every: int | None = None) -> None:
        self.plan = plan
        self.sample_every = max(1, sample_every
                                if sample_every is not None
                                else _sample_every)
        self.flight_every = FLIGHT_EVERY
        self.label = plan.labels.get("layer", "kernel") or "kernel"
        self.tick = 0
        self.timing = False
        self.stack: list[float] = []
        self.profiles: dict[str, OperatorProfile] = {}
        _PROFILERS.add(self)

    def register(self, name: str, op: Any) -> OperatorProfile:
        profile = OperatorProfile(name, type(op).__name__)
        self.profiles[name] = profile
        return profile

    # -- pull-based expensive stats (snapshot time only) ----------------------

    def _high_watermark(self) -> Any:
        marks = [src.watermark for src in self.plan._sources.values()]
        return max(marks) if marks else None

    def snapshot(self) -> dict[str, Any]:
        """Everything about the plan, pulled live (never on the hot path)."""
        high = self._high_watermark()
        total_busy = sum(p.busy_seconds for p in self.profiles.values())
        operators = []
        for node in self.plan._order:
            profile = self.profiles.get(node.name)
            if profile is None:  # registered after a fuse? defensive only
                continue
            entry = profile.as_dict()
            entry["busy_share"] = (profile.busy_seconds / total_busy
                                   if total_busy else None)
            combined = node.tracker.combined if node.tracker else None
            entry["watermark"] = combined
            entry["watermark_lag"] = (
                max(0, high - combined)
                if high is not None and combined is not None else None)
            entry["state_entries"] = state_entries(node.op)
            operators.append(entry)
        return {"label": self.label, "labels": dict(self.plan.labels),
                "sample_every": self.sample_every, "ticks": self.tick,
                "high_watermark": high,
                "total_busy_seconds": total_busy,
                "operators": operators}

    def publish(self, registry: Any) -> None:
        """Idempotent push of the collectors into a metrics registry."""
        labels = dict(self.plan.labels)
        for profile in self.profiles.values():
            tags = dict(labels, operator=profile.name)
            registry.gauge("exec.profile.records_in", **tags).set(
                profile.records_in)
            registry.gauge("exec.profile.records_out", **tags).set(
                profile.records_out)
            registry.gauge("exec.profile.busy_seconds", **tags).set(
                profile.busy_seconds)


# ---------------------------------------------------------------------------
# State-size estimation
# ---------------------------------------------------------------------------


def state_entries(op: Any) -> int | None:
    """Entries held by an operator's state, or None when unknowable.

    Pull-based and duck-typed: kernel operators keep a ``state``
    :class:`~repro.exec.state.StateBackend`, CQL adapters expose their
    wrapped physical operator's ``state_size``, fused chains sum their
    members.
    """
    from repro.exec.operator import FusedOperator
    from repro.exec.state import StateBackend

    if isinstance(op, FusedOperator):
        parts = [state_entries(member) for member in op.members]
        known = [p for p in parts if p is not None]
        return sum(known) if known else None
    phys = getattr(op, "phys", None)
    if phys is not None:
        size = getattr(phys, "state_size", None)
        return int(size) if size is not None else 0
    state = getattr(op, "state", None)
    if isinstance(state, StateBackend):
        return state.estimated_entries()
    size = getattr(op, "state_size", None)
    if isinstance(size, int):
        return size
    return None


def state_bytes(op: Any) -> int | None:
    """A cheap serialized-size estimate of an operator's state.

    Uses the backend's sampling estimator when there is one, else the
    repr length of the operator's own snapshot.  Only ever called from
    introspection surfaces (explain/snapshot), never on a hot path.
    """
    from repro.exec.state import StateBackend

    state = getattr(op, "state", None)
    if isinstance(state, StateBackend):
        return state.estimated_bytes()
    snapshot = getattr(op, "snapshot", None)
    if snapshot is None:
        return None
    try:
        return len(repr(snapshot()))
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Stall detection
# ---------------------------------------------------------------------------


class StallDetector:
    """Per-source stall detection over a shared arrival tick.

    Every arrival (on any stream) advances a global tick and stamps its
    stream; a stream whose gap to the tick exceeds ``threshold`` is
    *stalled* — the engine is making progress while this source is not.
    Streams registered before producing anything report the full tick as
    their gap, which is exactly the crash-recovered-source case.
    """

    def __init__(self, threshold: int = 256) -> None:
        self.threshold = threshold
        self.tick = 0
        self._last: dict[str, int] = {}

    def register(self, stream: str) -> None:
        self._last.setdefault(stream, 0)

    def note_arrival(self, stream: str) -> None:
        self.tick += 1
        self._last[stream] = self.tick

    def gaps(self) -> dict[str, int]:
        return {stream: self.tick - last
                for stream, last in sorted(self._last.items())}

    def stalled(self) -> dict[str, int]:
        """Streams currently behind by more than the threshold."""
        return {stream: gap for stream, gap in self.gaps().items()
                if gap > self.threshold}

    def snapshot(self) -> dict[str, Any]:
        return {"tick": self.tick, "threshold": self.threshold,
                "gaps": self.gaps(), "stalled": sorted(self.stalled())}


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


def enable(sample_every: int | None = None) -> None:
    """Turn profiling on.  Plans opened from now on grow collectors.

    ``sample_every`` tunes the timing sample rate (1 in N element flows;
    default :data:`DEFAULT_SAMPLE_EVERY`).  Already-open plans are not
    retrofitted — the profiling decision is taken once at ``open()`` so
    the disabled hot path stays untouched.
    """
    global _ENABLED, _sample_every
    if sample_every is not None:
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        _sample_every = sample_every
    _ENABLED = True


def disable() -> None:
    """Stop profiling; existing collectors stay readable until reset."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    return _ENABLED


def reset() -> None:
    """Back to cold: disabled, empty recorder, profilers dropped."""
    global _ENABLED, _sample_every
    _ENABLED = False
    _sample_every = DEFAULT_SAMPLE_EVERY
    _RECORDER.clear()
    _PROFILERS.clear()


# ---------------------------------------------------------------------------
# Snapshot endpoint (JSONL)
# ---------------------------------------------------------------------------


def profile_snapshot(include_metrics: bool = False) -> dict[str, Any]:
    """One JSON-ready dict of everything the profiling layer knows.

    The payload the future adaptivity loop / serving tier polls: every
    live plan profiler's operators, the flight-recorder tail, and
    (optionally) the full metrics registry.  Profiler collectors are also
    published into the global registry so exporters see them.
    """
    import repro.obs as obs

    registry = obs.get_registry()
    plans = []
    for profiler in sorted(_PROFILERS, key=lambda p: p.label):
        profiler.publish(registry)
        plans.append(profiler.snapshot())
    payload: dict[str, Any] = {
        "type": "profile",
        "profiling": _ENABLED,
        "plans": plans,
        "flight_recorder": {"capacity": _RECORDER.capacity,
                            "recorded": _RECORDER.recorded,
                            "retained": len(_RECORDER),
                            "tail": _RECORDER.tail(16)},
    }
    if include_metrics:
        payload["metrics"] = registry.snapshot()
    return payload


def write_snapshot(path: str | pathlib.Path,
                   include_metrics: bool = True) -> pathlib.Path:
    """Append one profile snapshot as a JSONL line (the poll endpoint)."""
    path = pathlib.Path(path)
    line = json.dumps(profile_snapshot(include_metrics=include_metrics),
                      sort_keys=True, default=repr)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(line + "\n")
    return path


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


def explain_analyze(target: Any) -> str:
    """Render ``target`` with its live execution statistics.

    Dispatches by duck type: a DSMS :class:`~repro.dsms.engine.QueryHandle`
    (queue + busy header, then its query), a
    :class:`~repro.cql.executor.ContinuousQuery` (the logical IR annotated
    per node), or an opened :class:`repro.exec.Plan` (the profiler's
    per-node table).
    """
    if hasattr(target, "query") and hasattr(target, "queue"):
        return _explain_handle(target)
    if hasattr(target, "_replicas") and hasattr(target, "plan"):
        return _explain_partitioned(target)
    if hasattr(target, "_root") and hasattr(target, "plan"):
        return _explain_continuous(target)
    if hasattr(target, "_order") and hasattr(target, "_sources"):
        return _explain_kernel_plan(target)
    raise TypeError(f"cannot explain_analyze {type(target).__name__}")


def analyze(target: Any) -> dict[str, Any]:
    """The structured (JSON-ready) form of :func:`explain_analyze`."""
    if hasattr(target, "query") and hasattr(target, "queue"):
        queue = target.queue
        out = {"query": target.name,
               "busy_seconds": getattr(target, "busy_seconds", 0.0),
               "queue": {"depth": len(queue), "capacity": queue.capacity,
                         "peak": queue.peak, "dropped": queue.dropped,
                         "pressure_events": queue.pressure_events},
               **analyze(target.query)}
        out["parallelism"] = getattr(target.query, "parallelism", 1)
        rescales = getattr(target, "rescales", None)
        if rescales:
            out["rescales"] = [
                {"from": r.parallelism_from, "to": r.parallelism_to,
                 "instant": r.instant,
                 "migrated_entries": r.migrated_entries,
                 "seconds": r.seconds} for r in rescales]
        autoscaler = getattr(target, "autoscaler", None)
        if autoscaler is not None:
            out["autoscale"] = autoscaler.as_dict()
        return out
    if hasattr(target, "_replicas") and hasattr(target, "plan"):
        return {
            "parallelism": target.parallelism,
            "deltas_processed": target.deltas_processed,
            "emissions": len(target.emissions()),
            "replicas": [analyze(replica)
                         for replica in target.replicas()],
        }
    if hasattr(target, "_root") and hasattr(target, "plan"):
        operators, total_busy = _continuous_operator_stats(target)
        return {"operators": operators,
                "total_busy_seconds": total_busy,
                "deltas_processed": target.deltas_processed,
                "emissions": len(target.emissions())}
    profiler = getattr(target, "_profiler", None)
    if profiler is not None:
        return profiler.snapshot()
    raise TypeError(f"cannot analyze {type(target).__name__}")


def _continuous_operator_stats(query: Any,
                               ) -> tuple[list[dict[str, Any]], float]:
    """Per-operator stats for a ContinuousQuery, shared ops counted once."""
    seen: set[int] = set()
    operators: list[dict[str, Any]] = []
    total_busy = 0.0
    for index, (label, op) in enumerate(query.operators()):
        if id(op) in seen:
            continue
        seen.add(id(op))
        total_busy += op.eval_seconds
        rows_in = (op.received if op.children
                   else getattr(op, "arrivals", op.received))
        entry: dict[str, Any] = {
            "operator": label, "index": index,
            "records_in": rows_in, "records_out": op.emitted,
            "selectivity": op.emitted / rows_in if rows_in else None,
            "busy_seconds": op.eval_seconds,
        }
        size = getattr(op, "state_size", None)
        if size is not None:
            entry["state_entries"] = size
            entry["state_bytes"] = state_bytes(op)
        operators.append(entry)
    for entry in operators:
        entry["busy_share"] = (entry["busy_seconds"] / total_busy
                               if total_busy else None)
    return operators, total_busy


def _continuous_node_stats(query: Any) -> dict[int, dict[str, Any]]:
    """Stats keyed by ``id(logical node)`` for the IR renderer."""
    phys_map: Mapping[int, Any] = getattr(query, "_phys_by_logical", {})
    distinct: dict[int, Any] = {}
    for op in phys_map.values():
        distinct[id(op)] = op
    total_busy = sum(op.eval_seconds for op in distinct.values())
    stats: dict[int, dict[str, Any]] = {}
    for node_id, op in phys_map.items():
        rows_in = (op.received if op.children
                   else getattr(op, "arrivals", op.received))
        entry: dict[str, Any] = {
            "rows_in": rows_in, "rows_out": op.emitted,
            "selectivity": op.emitted / rows_in if rows_in else None,
            "busy_seconds": op.eval_seconds,
            "busy_share": (op.eval_seconds / total_busy
                           if total_busy else None),
        }
        size = getattr(op, "state_size", None)
        if size is not None:
            entry["state_entries"] = size
            entry["state_bytes"] = state_bytes(op)
        stats[node_id] = entry
    # The R2S root is driver-level, not a physical operator: annotate it
    # with the driver's accounting so the tree has no bare lines.
    plan = query.plan
    if id(plan) not in stats:
        stats[id(plan)] = {"rows_in": query.deltas_processed,
                           "rows_out": len(query.emissions()),
                           "selectivity": None, "busy_seconds": None,
                           "busy_share": None}
    return stats


def _explain_continuous(query: Any) -> str:
    from repro.plan.explain import explain_analyzed

    stats = _continuous_node_stats(query)
    operators, total_busy = _continuous_operator_stats(query)
    lines = [explain_analyzed(query.plan, stats)]
    shares = [entry["busy_share"] for entry in operators
              if entry["busy_share"] is not None]
    if total_busy:
        lines.append(f"total busy: {total_busy:.6f}s over "
                     f"{len(operators)} operators "
                     f"(shares sum {sum(shares) * 100:.1f}%)")
    else:
        lines.append("total busy: 0s — enable timing with obs.enable() "
                     "before running the workload")
    lines.append(f"deltas processed: {query.deltas_processed}, "
                 f"emissions: {len(query.emissions())}")
    return "\n".join(lines)


def _explain_partitioned(query: Any) -> str:
    """Render a fissioned query: one plan tree, replica stats summed.

    Every replica compiles from the *same* logical plan object, so the
    per-node stats of all replicas key by the same logical ids and sum
    cleanly — the rendered tree shows the query's total work while the
    header keeps the width visible.
    """
    from repro.plan.explain import explain_analyzed

    merged: dict[int, dict[str, Any]] = {}
    for replica in query.replicas():
        for node_id, entry in _continuous_node_stats(replica).items():
            slot = merged.setdefault(node_id, {
                "rows_in": 0, "rows_out": 0, "busy_seconds": 0.0,
                "state_entries": None, "state_bytes": None})
            slot["rows_in"] += entry["rows_in"]
            slot["rows_out"] += entry["rows_out"]
            slot["busy_seconds"] += entry["busy_seconds"] or 0.0
            for key in ("state_entries", "state_bytes"):
                if entry.get(key) is not None:
                    slot[key] = (slot[key] or 0) + entry[key]
    total_busy = sum(entry["busy_seconds"] for entry in merged.values())
    for entry in merged.values():
        rows_in = entry["rows_in"]
        entry["selectivity"] = (entry["rows_out"] / rows_in
                                if rows_in else None)
        entry["busy_share"] = (entry["busy_seconds"] / total_busy
                               if total_busy else None)
        if entry["state_entries"] is None:
            del entry["state_entries"], entry["state_bytes"]
    lines = [f"fissioned x{query.parallelism} "
             f"(per-node stats summed across replicas)",
             explain_analyzed(query.plan, merged),
             f"deltas processed: {query.deltas_processed}, "
             f"emissions: {len(query.emissions())}"]
    return "\n".join(lines)


def _explain_handle(handle: Any) -> str:
    queue = handle.queue
    busy = getattr(handle, "busy_seconds", 0.0)
    lines = [
        f"query {handle.name!r}: processed={handle.metrics.processed} "
        f"emitted={handle.metrics.emitted} busy={busy:.6f}s",
        f"queue: depth={len(queue)}/{queue.capacity} peak={queue.peak} "
        f"dropped={queue.dropped} "
        f"pressure_events={queue.pressure_events}",
    ]
    rescales = getattr(handle, "rescales", None)
    if rescales:
        steps = " ".join(f"{r.parallelism_from}→{r.parallelism_to}"
                         f"@{r.instant}" for r in rescales)
        lines.append(f"rescales: {steps}")
    autoscaler = getattr(handle, "autoscaler", None)
    if autoscaler is not None:
        state = autoscaler.as_dict()
        last = state["last_decision"]
        lines.append(
            f"autoscale: polls={state['polls']} "
            f"rescales={state['rescales']} "
            + (f"last={last['action']}→{last['parallelism']} "
               f"({last['reason']})" if last else "last=-"))
    query = handle.query
    rendered = (_explain_partitioned(query)
                if hasattr(query, "_replicas")
                else _explain_continuous(query))
    return "\n".join(lines) + "\n" + rendered


def _format_cell(value: Any, fmt: str = "") -> str:
    if value is None:
        return "-"
    return format(value, fmt) if fmt else str(value)


def _explain_kernel_plan(plan: Any) -> str:
    profiler = getattr(plan, "_profiler", None)
    if profiler is None:
        from repro.plan.explain import explain_kernel
        return (explain_kernel(plan)
                + "\n(profiling disabled — call obs.enable(profile=True) "
                  "before the plan opens to collect live stats)")
    snapshot = profiler.snapshot()
    header = ["operator", "kind", "in", "out", "sel", "busy%", "state",
              "wm_lag"]
    rows = [[entry["operator"], entry["kind"],
             _format_cell(entry["records_in"]),
             _format_cell(entry["records_out"]),
             _format_cell(entry["selectivity"], ".3f"),
             _format_cell(None if entry["busy_share"] is None
                          else entry["busy_share"] * 100, ".1f"),
             _format_cell(entry["state_entries"]),
             _format_cell(entry["watermark_lag"])]
            for entry in snapshot["operators"]]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              if rows else len(header[i]) for i in range(len(header))]
    out = [f"kernel plan [{snapshot['label']}] "
           f"(sampled 1/{snapshot['sample_every']}, "
           f"ticks={snapshot['ticks']})"]
    out.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(" | ".join(cell.ljust(w) for cell, w in zip(row, widths))
               for row in rows)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# The `top` console view
# ---------------------------------------------------------------------------


def render_top(registry: Any = None, limit: int = 10) -> str:
    """Per-query / per-operator hot spots, refreshed from the registry.

    Two panes: standing queries ranked by busy time (DSMS attribution),
    and operators ranked by eval/busy seconds (CQL executor accounting
    plus any kernel plan profilers).
    """
    import repro.obs as obs

    registry = registry if registry is not None else obs.get_registry()
    for profiler in _PROFILERS:
        profiler.publish(registry)

    def table(title: str, header: list[str],
              rows: list[list[str]]) -> list[str]:
        widths = [max(len(header[i]), *(len(r[i]) for r in rows))
                  if rows else len(header[i]) for i in range(len(header))]
        out = [f"== {title} =="]
        out.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        out.append("-+-".join("-" * w for w in widths))
        out.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths))
                   for row in rows)
        return out

    # -- pane 1: queries ------------------------------------------------------
    queries: dict[str, dict[str, Any]] = {}
    for metric in registry.children("dsms.query.processed"):
        queries.setdefault(metric.labels.get("query", "?"), {})[
            "processed"] = metric.value
    for metric in registry.children("dsms.query.emitted"):
        queries.setdefault(metric.labels.get("query", "?"), {})[
            "emitted"] = metric.value
    for metric in registry.children("dsms.query.busy_seconds"):
        queries.setdefault(metric.labels.get("query", "?"), {})[
            "busy"] = metric.value
    for metric in registry.children("dsms.queue.peak_depth"):
        queries.setdefault(metric.labels.get("query", "?"), {})[
            "peak"] = metric.value
    query_rows = sorted(queries.items(),
                        key=lambda kv: kv[1].get("busy", 0.0),
                        reverse=True)[:limit]
    pane1 = table(
        "top queries", ["query", "busy_s", "processed", "emitted", "peak_q"],
        [[name,
          _format_cell(stats.get("busy"), ".6f"),
          _format_cell(stats.get("processed")),
          _format_cell(stats.get("emitted")),
          _format_cell(stats.get("peak"))]
         for name, stats in query_rows])

    # -- pane 2: operators ----------------------------------------------------
    operators: list[tuple[float, list[str]]] = []
    for metric in registry.children("exec.operator.eval_seconds"):
        labels = metric.labels
        tags = {k: v for k, v in labels.items()}
        ins = registry.get("exec.operator.records_in", **tags)
        outs = registry.get("exec.operator.records_out", **tags)
        operators.append((metric.value, [
            labels.get("operator", "?"),
            labels.get("query", labels.get("layer", "-")),
            f"{metric.value:.6f}",
            _format_cell(ins.value if ins else None),
            _format_cell(outs.value if outs else None)]))
    for metric in registry.children("exec.profile.busy_seconds"):
        labels = metric.labels
        tags = {k: v for k, v in labels.items()}
        ins = registry.get("exec.profile.records_in", **tags)
        outs = registry.get("exec.profile.records_out", **tags)
        operators.append((metric.value, [
            labels.get("operator", "?"),
            labels.get("layer", "-"),
            f"{metric.value:.6f}",
            _format_cell(int(ins.value) if ins else None),
            _format_cell(int(outs.value) if outs else None)]))
    operators.sort(key=lambda pair: pair[0], reverse=True)
    pane2 = table("hot operators",
                  ["operator", "query/layer", "busy_s", "in", "out"],
                  [row for _, row in operators[:limit]])

    # -- pane 3: pressure & stalls -------------------------------------------
    pressure_rows: list[list[str]] = []
    for metric in registry.children("dsms.queue.pressure_events"):
        if metric.value:
            pressure_rows.append([
                f"queue[{metric.labels.get('query', '?')}]",
                f"pressure_events={metric.value}"])
    for metric in registry.children("dsms.source.stalled"):
        if metric.value:
            pressure_rows.append([
                f"source[{metric.labels.get('stream', '?')}]", "STALLED"])
    lines = pane1 + [""] + pane2
    if pressure_rows:
        lines += [""] + table("backpressure", ["where", "signal"],
                              pressure_rows)
    return "\n".join(lines)
