"""Span-based tracing with a zero-cost no-op twin.

A :class:`Tracer` produces a navigable tree of :class:`Span` objects::

    with tracer.span("dsms.run", query="hot") as root:
        with tracer.span("dsms.service") as child:
            child.add(records=3)

Spans record wall time (``time.perf_counter``), arbitrary attributes, and
additive counts (record tallies).  Exceptions propagate but never corrupt
nesting: the span is closed and flagged before re-raising.

When observability is disabled the engine layers receive a
:class:`NoopTracer` whose single reusable :class:`NoopSpan` makes the
instrumented ``with`` blocks cost two trivial method calls — close enough
to free that hot paths keep their instrumentation unconditionally.
"""

from __future__ import annotations

import time
from typing import Any, Iterator


class Span:
    """One timed region of work; nests into a trace tree."""

    __slots__ = ("name", "attributes", "counts", "children", "parent",
                 "start", "end", "error")

    def __init__(self, name: str, parent: "Span | None" = None,
                 **attributes: Any) -> None:
        self.name = name
        self.parent = parent
        self.attributes = dict(attributes)
        self.counts: dict[str, int] = {}
        self.children: list[Span] = []
        self.start = time.perf_counter()
        self.end: float | None = None
        self.error: str | None = None
        if parent is not None:
            parent.children.append(self)

    # -- recording -------------------------------------------------------------

    def add(self, **counts: int) -> None:
        """Add to this span's named tallies (e.g. ``span.add(records=5)``)."""
        for key, amount in counts.items():
            self.counts[key] = self.counts.get(key, 0) + amount

    def annotate(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    # -- inspection ------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Wall-clock seconds; measured up to now for an open span."""
        return (self.end if self.end is not None
                else time.perf_counter()) - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.counts:
            data["counts"] = dict(self.counts)
        if self.error is not None:
            data["error"] = self.error
        if self.children:
            data["children"] = [c.as_dict() for c in self.children]
        return data

    def render(self, indent: int = 0) -> str:
        """A readable one-line-per-span tree."""
        counts = " ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        attrs = " ".join(f"{k}={v!r}"
                         for k, v in sorted(self.attributes.items()))
        parts = [f"{'  ' * indent}{self.name}",
                 f"{self.duration * 1e3:.3f}ms"]
        if counts:
            parts.append(counts)
        if attrs:
            parts.append(attrs)
        if self.error:
            parts.append(f"ERROR({self.error})")
        lines = ["  ".join(parts)]
        lines.extend(c.render(indent + 1) for c in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, children={len(self.children)}, "
                f"duration={self.duration:.6f}s)")


class _SpanContext:
    """Context manager tying a span's lifetime to a ``with`` block."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._close(self._span)
        return False  # never swallow


class Tracer:
    """Produces spans and keeps the forest of completed root spans."""

    enabled = True

    def __init__(self) -> None:
        self._stack: list[Span] = []
        self.traces: list[Span] = []

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        parent = self._stack[-1] if self._stack else None
        span = Span(name, parent, **attributes)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Exception-safe unwinding: pop through any abandoned descendants.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end
        if span.parent is None:
            self.traces.append(span)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def last_trace(self) -> Span | None:
        return self.traces[-1] if self.traces else None

    def reset(self) -> None:
        self._stack.clear()
        self.traces.clear()


class NoopSpan:
    """A reusable span stand-in whose every method does nothing."""

    __slots__ = ()

    name = "noop"
    children: list = []
    counts: dict = {}
    attributes: dict = {}
    duration = 0.0
    error = None

    def add(self, **counts: int) -> None:
        pass

    def annotate(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = NoopSpan()


class NoopTracer:
    """The disabled tracer: hands out one shared no-op span."""

    enabled = False
    traces: list = []

    def span(self, name: str, **attributes: Any) -> NoopSpan:
        return _NOOP_SPAN

    @property
    def current(self) -> None:
        return None

    def last_trace(self) -> None:
        return None

    def reset(self) -> None:
        pass
