"""Exporters: JSON-lines, Prometheus text exposition, console table.

Three ways out of the registry/tracer, one per audience:

* :func:`to_jsonl` — machine-readable dump (one JSON object per line:
  every metric, then every completed trace tree) for benchmark artifacts
  and offline analysis;
* :func:`to_prometheus` — the text exposition format a scraper would read,
  with hierarchical dots folded to underscores and labels rendered inline;
* :func:`console_table` — an aligned text table for examples and
  benchmarks to print.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import NoopTracer, Tracer

# Prometheus exposition format: metric names match
# [a-zA-Z_:][a-zA-Z0-9_:]*, label names [a-zA-Z_][a-zA-Z0-9_]*.
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def to_jsonl(registry: MetricsRegistry,
             tracer: Tracer | NoopTracer | None = None) -> str:
    """One JSON object per line: metrics first, then trace trees."""
    lines = []
    for entry in registry.snapshot():
        lines.append(json.dumps({"type": "metric", **entry},
                                sort_keys=True))
    if tracer is not None:
        for trace in tracer.traces:
            lines.append(json.dumps({"type": "trace",
                                     "tree": trace.as_dict()},
                                    sort_keys=True))
    return "\n".join(lines)


def write_jsonl(path: str | pathlib.Path, registry: MetricsRegistry,
                tracer: Tracer | NoopTracer | None = None) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(to_jsonl(registry, tracer) + "\n", encoding="utf-8")
    return path


def _prom_name(name: str, suffix: str = "") -> str:
    """Fold a dotted metric name into a legal Prometheus identifier.

    Dots/dashes become underscores, every other illegal character is
    replaced by ``_``, and a leading digit gets an underscore prefix —
    arbitrary registry names must never produce an unparseable exposition.
    """
    folded = _NAME_BAD.sub("_", name.replace(".", "_").replace("-", "_"))
    if not folded:
        folded = "_"
    if folded[0].isdigit():
        folded = "_" + folded
    return folded + suffix


def _prom_label_name(name: str) -> str:
    sanitized = _LABEL_BAD.sub("_", name) or "_"
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_label_value(value: Any) -> str:
    """Escape a label value per the exposition format.

    Backslash first (it is the escape character), then newline and double
    quote — the three characters that would otherwise break the line- and
    quote-structured format.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace('"', '\\"'))


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None,
                 ) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_label_name(k)}="{_prom_label_value(v)}"'
        for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """The Prometheus text exposition of every registered metric."""
    lines: list[str] = []
    typed: set[str] = set()

    def headline(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for metric in registry:
        base = _prom_name(metric.name)
        if isinstance(metric, Counter):
            headline(base + "_total", "counter")
            lines.append(f"{base}_total{_prom_labels(metric.labels)} "
                         f"{metric.value}")
        elif isinstance(metric, Histogram):
            headline(base, "histogram")
            for bound, cumulative in metric.cumulative_buckets():
                lines.append(
                    f"{base}_bucket"
                    f"{_prom_labels(metric.labels, {'le': str(bound)})} "
                    f"{cumulative}")
            lines.append(
                f"{base}_bucket"
                f"{_prom_labels(metric.labels, {'le': '+Inf'})} "
                f"{metric.count}")
            lines.append(f"{base}_sum{_prom_labels(metric.labels)} "
                         f"{metric.total}")
            lines.append(f"{base}_count{_prom_labels(metric.labels)} "
                         f"{metric.count}")
        elif isinstance(metric, Gauge):
            headline(base, "gauge")
            lines.append(f"{base}{_prom_labels(metric.labels)} "
                         f"{metric.value}")
    return "\n".join(lines) + ("\n" if lines else "")


def console_table(registry: MetricsRegistry, title: str = "observability",
                  prefix: str = "") -> str:
    """An aligned text table of the registry (optionally one subtree)."""
    rows: list[list[str]] = []
    metrics = registry.find(prefix) if prefix else list(registry)
    for metric in metrics:
        labels = ",".join(f"{k}={v}"
                          for k, v in sorted(metric.labels.items()))
        if isinstance(metric, Counter):
            value = str(metric.value)
        elif isinstance(metric, Histogram):
            p = metric.percentiles()

            def fmt(q: float | None) -> str:
                return "-" if q is None else f"{q:.3f}"

            value = (f"n={metric.count} mean={metric.mean:.3f} "
                     f"p50={fmt(p['p50'])} p95={fmt(p['p95'])} "
                     f"p99={fmt(p['p99'])}")
        else:
            value = (f"{metric.value:.3f}"
                     if isinstance(metric.value, float)
                     else str(metric.value))
        rows.append([metric.name, metric.kind, labels, value])
    columns = ["metric", "kind", "labels", "value"]
    widths = [max(len(columns[i]), *(len(r[i]) for r in rows))
              if rows else len(columns[i]) for i in range(len(columns))]
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = [" | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in rows]
    return "\n".join([f"== {title} ==", header, rule, *body])


def summary(registry: MetricsRegistry) -> dict[str, Any]:
    """A nested dict view: hierarchical names expanded into a tree."""
    tree: dict[str, Any] = {}
    for entry in registry.snapshot():
        node = tree
        parts = entry["name"].split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        leaf_key = parts[-1]
        if entry["labels"]:
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(entry["labels"].items()))
            leaf_key = f"{leaf_key}{{{labels}}}"
        node[leaf_key] = {k: v for k, v in entry.items()
                          if k not in ("name", "labels")}
    return tree
