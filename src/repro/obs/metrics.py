"""Metric primitives: Counter, Gauge, Histogram.

These are the building blocks the :class:`~repro.obs.registry.MetricsRegistry`
hands out.  They are deliberately dependency-free and cheap: a counter
increment is one attribute add, a histogram observation is an append (or a
deterministic reservoir replacement once full), so instrumented hot paths
stay fast even with observability enabled.

Quantiles come from a bounded **reservoir sample**: exact while fewer than
``reservoir_size`` values have been observed (the common case for
laptop-scale runs), and a deterministic Algorithm-R approximation beyond
that.  Fixed bucket boundaries can be supplied as well, giving
Prometheus-style cumulative bucket counts in the exposition format.
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Sequence


def _sorted_quantile(values: Sequence[float], q: float) -> float | None:
    """Linear-interpolated quantile of a pre-sorted sequence.

    Matches ``statistics.quantiles(..., n=100, method='inclusive')`` at the
    percentile points, which is what the accuracy tests pin against.
    An empty sample has no quantiles: the answer is ``None``, never a
    made-up 0.0 (which looks like a real latency) and never an IndexError
    (which crash-recovered sources used to hit before producing records).
    A single sample *is* every quantile of itself.
    """
    if not values:
        return None
    if len(values) == 1:
        return values[0]
    position = q * (len(values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(values) - 1)
    fraction = position - lower
    return values[lower] + (values[upper] - values[lower]) * fraction


class Metric:
    """Base metric: a hierarchical dotted name plus optional labels."""

    kind = "metric"

    def __init__(self, name: str = "", labels: Mapping[str, str] | None = None,
                 ) -> None:
        self.name = name
        self.labels: dict[str, str] = dict(labels or {})

    def as_dict(self) -> dict[str, Any]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (rows, firings, drops...)."""

    kind = "counter"

    def __init__(self, name: str = "", labels: Mapping[str, str] | None = None,
                 ) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def as_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge(Metric):
    """A point-in-time value with running statistics.

    Beyond the instantaneous ``value`` (the Prometheus gauge notion) it
    keeps count / total / min / max of everything observed, so it doubles
    as the running-statistic the DSMS layer has always reported.  Min and
    max start as *absent*, not zero — the first observation defines them
    even when it is negative.
    """

    kind = "gauge"

    def __init__(self, name: str = "", labels: Mapping[str, str] | None = None,
                 ) -> None:
        super().__init__(name, labels)
        self.value = 0.0
        self.count = 0
        self.total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def set(self, value: float) -> None:
        """Set the instantaneous value without recording a sample."""
        self.value = value

    def observe(self, value: float) -> None:
        """Record a sample: updates value, count, total, min and max."""
        self.value = value
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {"value": self.value, "count": self.count,
                "total": self.total, "mean": self.mean,
                "min": self.min, "max": self.max}


class Histogram(Metric):
    """A distribution with streaming p50/p95/p99.

    A bounded reservoir keeps quantiles exact until ``reservoir_size``
    observations, then degrades gracefully to uniform sampling (Algorithm R
    with a seeded generator, so runs stay reproducible).  Optional fixed
    ``buckets`` (upper bounds) additionally maintain cumulative counts for
    the Prometheus exposition.
    """

    kind = "histogram"

    PERCENTILES = (0.50, 0.95, 0.99)

    def __init__(self, name: str = "", labels: Mapping[str, str] | None = None,
                 buckets: Sequence[float] | None = None,
                 reservoir_size: int = 1024) -> None:
        super().__init__(name, labels)
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.count = 0
        self.total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._reservoir: list[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(0x5EED)
        self.buckets = sorted(buckets) if buckets else None
        self._bucket_counts = [0] * len(self.buckets) if self.buckets else []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value
        if self.buckets:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def quantile(self, q: float) -> float | None:
        """The q-quantile (0 <= q <= 1), or None for an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return _sorted_quantile(sorted(self._reservoir), q)

    def percentiles(self) -> dict[str, float | None]:
        """The standard latency trio: p50 / p95 / p99 (None when empty)."""
        ordered = sorted(self._reservoir)
        return {f"p{int(q * 100)}": _sorted_quantile(ordered, q)
                for q in self.PERCENTILES}

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative (upper_bound, count) pairs."""
        if not self.buckets:
            return []
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self._bucket_counts):
            running += bucket_count
            out.append((bound, running))
        return out

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"count": self.count, "total": self.total,
                                "mean": self.mean, "min": self.min,
                                "max": self.max}
        data.update(self.percentiles())
        if self.buckets:
            data["buckets"] = {str(b): c
                               for b, c in self.cumulative_buckets()}
        return data
