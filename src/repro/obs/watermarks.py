"""Watermark and lag instrumentation: event time vs processing progress.

Fragkoulis et al. identify *progress tracking* — how far event time has
advanced, and how far behind it each record is processed — as a defining
feature of modern stream processors.  :class:`WatermarkClock` records, per
stream:

* the **event-time watermark** (highest event timestamp observed on
  arrival);
* the **processing lag** of each processed record: how far the stream's
  watermark had already advanced past the record's own event time when the
  record was finally handled.  Zero lag means records are processed as
  fresh as they arrive; growing lag means a backlog (queueing, shedding
  pressure, or out-of-order arrivals).

Gauges and histograms are published into a :class:`MetricsRegistry` under
``obs.watermark.*`` so exports pick them up with no extra wiring.
"""

from __future__ import annotations

from typing import Any

from repro.core.time import Timestamp
from repro.obs.registry import MetricsRegistry


class WatermarkClock:
    """Per-stream event-time watermark and processing-lag tracker."""

    def __init__(self, registry: MetricsRegistry,
                 prefix: str = "obs.watermark") -> None:
        self._registry = registry
        self._prefix = prefix
        self._watermarks: dict[str, Timestamp] = {}

    # -- recording -------------------------------------------------------------

    def observe_arrival(self, stream: str, event_time: Timestamp) -> None:
        """A record with ``event_time`` arrived on ``stream``."""
        current = self._watermarks.get(stream)
        if current is None or event_time > current:
            self._watermarks[stream] = event_time
            self._registry.gauge(
                f"{self._prefix}.event_time", stream=stream).set(event_time)

    def observe_processed(self, stream: str,
                          event_time: Timestamp) -> Timestamp:
        """A record with ``event_time`` was just processed; returns its lag
        (watermark − event time, floored at zero)."""
        watermark = self._watermarks.get(stream, event_time)
        lag = max(0, watermark - event_time)
        self._registry.gauge(
            f"{self._prefix}.lag", stream=stream).observe(lag)
        self._registry.histogram(
            f"{self._prefix}.lag_histogram", stream=stream).observe(lag)
        return lag

    # -- inspection ------------------------------------------------------------

    def watermark(self, stream: str) -> Timestamp | None:
        """The stream's event-time high-water mark, or None if unseen."""
        return self._watermarks.get(stream)

    def lag(self, stream: str, default: float | None = None) -> float | None:
        """The most recently observed processing lag for ``stream``.

        A stream that has produced no records yet has no lag: the answer
        is the ``default`` sentinel (None), not a misleading 0.0 and not
        a KeyError — crash-recovered sources are routinely asked about
        before their first post-restore record arrives.
        """
        gauge = self._registry.get(f"{self._prefix}.lag", stream=stream)
        if gauge is None or gauge.count == 0:
            return default
        return gauge.value

    def streams(self) -> list[str]:
        return sorted(self._watermarks)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return {stream: {"watermark": self._watermarks[stream],
                         "lag": self.lag(stream)}
                for stream in self.streams()}
