"""``python -m repro.obs`` — the live introspection console.

Subcommands:

* ``top`` — per-query / per-operator hot spots rendered from the metrics
  registry.  In-process callers use :func:`repro.obs.render_top` against
  their own running engine; from the command line the view is fed either
  by ``--snapshot file.jsonl`` (a file written by
  :func:`repro.obs.write_snapshot`) or, with no arguments, by a small
  built-in demo workload so the readout is explorable standalone.
* ``snapshot`` — run the demo workload and append a profile snapshot to a
  JSONL file (the endpoint shape the adaptivity loop polls).
* ``explain`` — run the demo workload and print the continuous EXPLAIN
  ANALYZE for its hottest standing query.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def _run_demo():
    """A small shared-group DSMS workload that exercises every collector."""
    import repro.obs as obs
    from repro.core.records import Schema
    from repro.dsms.engine import DSMSEngine

    obs.enable(profile=True, sample_every=4)
    engine = DSMSEngine(sharing=True, queue_capacity=64)
    engine.register_stream("Obs", Schema(["room", "temp"]))
    engine.register_query(
        "hot_rooms",
        "SELECT room, COUNT(*) FROM Obs [Range 40 Slide 40] "
        "WHERE temp > 25 GROUP BY room")
    engine.register_query(
        "warm_stream",
        "SELECT ISTREAM room FROM Obs [Now] WHERE temp > 20")
    rooms = ("kitchen", "lab", "office")
    for t in range(240):
        engine.ingest("Obs", {"room": rooms[t % 3],
                              "temp": 15.0 + (t * 7) % 20}, t=t)
        if t % 16 == 0:
            engine.run_until_idle()
    engine.run_until_idle()
    engine.advance_time(280)
    engine.publish_observability()
    return engine


def _registry_from_snapshot(path: str):
    """Rebuild a registry from the newest snapshot line in a JSONL file."""
    from repro.obs.registry import MetricsRegistry

    last: dict[str, Any] | None = None
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                last = json.loads(line)
    registry = MetricsRegistry()
    if last is None:
        return registry
    for entry in last.get("metrics", []):
        name, labels = entry["name"], entry.get("labels", {})
        if "p50" in entry:  # histogram — only headline stats survive
            continue
        if "count" in entry:
            registry.gauge(name, **labels).set(entry["value"])
        else:
            counter = registry.counter(name, **labels)
            counter.inc(int(entry["value"]))
    return registry


def main(argv: list[str] | None = None) -> int:
    import repro.obs as obs

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="live query introspection (top / snapshot / explain)")
    sub = parser.add_subparsers(dest="command")
    top = sub.add_parser("top", help="per-query/per-operator hot spots")
    top.add_argument("--snapshot", metavar="FILE",
                     help="render from a write_snapshot() JSONL file "
                          "instead of running the demo workload")
    top.add_argument("--limit", type=int, default=10)
    snap = sub.add_parser("snapshot",
                          help="append a profile snapshot (JSONL)")
    snap.add_argument("--out", default="obs_snapshot.jsonl")
    sub.add_parser("explain",
                   help="EXPLAIN ANALYZE of the demo's hottest query")
    args = parser.parse_args(argv)

    if args.command == "top":
        if args.snapshot:
            registry = _registry_from_snapshot(args.snapshot)
            print(obs.render_top(registry, limit=args.limit))
        else:
            _run_demo()
            print("(demo workload — feed render_top() from your own "
                  "engine for live numbers)")
            print(obs.render_top(limit=args.limit))
        return 0
    if args.command == "snapshot":
        _run_demo()
        path = obs.write_snapshot(args.out)
        print(f"wrote profile snapshot to {path}", file=sys.stderr)
        return 0
    if args.command == "explain":
        engine = _run_demo()
        print(obs.explain_analyze(engine.query("hot_rooms")))
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
