"""obs — the unified observability layer.

One registry, one tracer, one watermark clock, shared by every engine
layer (``cql`` executor, ``dsms`` engine, ``runtime`` jobs, ``dataflow``
pipelines).  The module-level accessors are the single entry point:

* :func:`get_registry` — the global :class:`MetricsRegistry`; counters,
  gauges and histograms are always live (an increment is one attribute
  add, so layers record them unconditionally).
* :func:`get_tracer` — the global tracer.  **Disabled by default**: layers
  receive a shared :class:`NoopTracer` whose spans cost ~nothing; call
  :func:`enable` to swap in a recording :class:`Tracer` (and to turn on
  the optional timing instrumentation hot paths gate behind
  :func:`is_enabled`).
* :func:`get_watermark_clock` — the global per-stream lag tracker.
* :func:`reset` — fresh registry/tracer/clock and back to disabled; the
  repo's ``conftest.py`` calls this around every test.

Typical session::

    import repro.obs as obs
    from repro.obs.export import to_jsonl, console_table

    obs.enable()
    ... run queries ...
    print(console_table(obs.get_registry()))
    dump = to_jsonl(obs.get_registry(), obs.get_tracer())
"""

from __future__ import annotations

from repro.obs.export import (
    console_table,
    summary,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, Metric
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import NoopSpan, NoopTracer, Span, Tracer
from repro.obs.watermarks import WatermarkClock
from repro.obs import profile as _profile
from repro.obs.profile import (
    FlightRecorder,
    StallDetector,
    analyze,
    dump_on_crash,
    explain_analyze,
    get_flight_recorder,
    profile_snapshot,
    render_top,
    write_snapshot,
)

_NOOP_TRACER = NoopTracer()


class _ObsState:
    """The process-wide observability singleton."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer: Tracer | NoopTracer = _NOOP_TRACER
        self.clock = WatermarkClock(self.registry)
        self.enabled = False


_STATE = _ObsState()


def get_registry() -> MetricsRegistry:
    """The global metrics registry (always recording)."""
    return _STATE.registry


def get_tracer() -> Tracer | NoopTracer:
    """The global tracer: no-op while disabled, recording once enabled."""
    return _STATE.tracer


def get_watermark_clock() -> WatermarkClock:
    """The global per-stream watermark/lag tracker."""
    return _STATE.clock


def is_enabled() -> bool:
    """Whether full observability (tracing + timing) is on."""
    return _STATE.enabled


def enable(profile: bool = False, sample_every: int | None = None) -> None:
    """Turn on tracing and the timing instrumentation layers gate on.

    ``profile=True`` additionally switches on the per-operator profiling
    layer (:mod:`repro.obs.profile`): kernel plans opened *after* this
    call grow collectors, the flight recorder starts receiving events,
    and ``sample_every`` tunes the 1-in-N timing sample rate.

    Re-enabling after :func:`disable` keeps the already-recorded traces —
    only :func:`reset` discards them.
    """
    if not _STATE.enabled:
        _STATE.enabled = True
        if not isinstance(_STATE.tracer, Tracer):
            _STATE.tracer = Tracer()
    if profile:
        _profile.enable(sample_every)


def disable() -> None:
    """Stop tracing/timing/profiling; recorded data stays readable until
    reset.

    Instrumentation sites gate span creation on :func:`is_enabled`, so the
    recording tracer can stay in place purely as a read handle.
    """
    _STATE.enabled = False
    _profile.disable()


def is_profiling() -> bool:
    """Whether the per-operator profiling layer is on."""
    return _profile.is_enabled()


def reset() -> None:
    """Fresh registry, tracer and clock; observability disabled."""
    _STATE.registry = MetricsRegistry()
    _STATE.tracer = _NOOP_TRACER
    _STATE.clock = WatermarkClock(_STATE.registry)
    _STATE.enabled = False
    _profile.reset()


__all__ = [
    "Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
    "Span", "Tracer", "NoopSpan", "NoopTracer", "WatermarkClock",
    "FlightRecorder", "StallDetector",
    "get_registry", "get_tracer", "get_watermark_clock",
    "is_enabled", "enable", "disable", "reset", "is_profiling",
    "explain_analyze", "analyze", "render_top", "get_flight_recorder",
    "profile_snapshot", "write_snapshot", "dump_on_crash",
    "to_jsonl", "to_prometheus", "write_jsonl", "console_table", "summary",
]
