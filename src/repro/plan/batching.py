"""Batch-safety analysis: which plans may run vectorized micro-batches?

Micro-batching collapses all of one instant's arrivals into a single
incremental evaluation instead of one evaluation per tuple.  The
maintained *state per instant* is identical either way (the executor
nets deltas within an instant — snapshot-reducibility), so the question
the planner must answer is narrower: is the **emitted stream** also
identical, arrival for arrival?

Per-arrival evaluation exposes *intra-instant intermediates* that one
batched evaluation nets away.  The pass walks the logical IR and
collects every operator whose semantics depend on them:

* **aggregates** — per-arrival evaluation emits each intermediate
  aggregate row (count 3, then 4, then 5); one batched evaluation emits
  only the final one.
* **ROWS / partitioned-ROWS windows** — capacity eviction can occur
  *within* an instant: with ``[Rows 1]`` and two same-instant arrivals,
  per-arrival ISTREAM emits both rows, batched emits only the survivor.
* **evicting time windows (RANGE / NOW)** — expiry deltas land *on*
  arrival instants: per-arrival evaluation nets the expirations against
  only the first arrival's insert, one batched evaluation nets them
  against the whole batch, so the instant's ISTREAM/DSTREAM split
  differs.  ``[Range Unbounded]`` never evicts and stays safe.
* **joins** — the per-arrival join-delta order (each arrival probes the
  opposite window as-of its own push) is collapsed into one bilinear
  delta; the match multiset agrees but the emission order does not.
* **difference / intersection** — non-monotonic: a same-instant arrival
  on the other side can cancel an emission the per-arrival path made.
* **RSTREAM** — samples the whole state once per *evaluation*, so k
  per-arrival evaluations emit k snapshots where the batch emits one.
* **opaque frontend nodes** — semantics unknown, assume unsafe.

Filters, projections, DISTINCT and UNION are per-record or idempotent
and commute with intra-instant netting; unbounded windows never evict.

Plans with *relation* outputs (no R2S root) are always batch-safe: the
change-log collapses to the last state per instant in both modes.

A failed proof is a fallback, not an error: :func:`decide_batch_size`
clamps the requested batch size back to 1 (per-element execution), the
same shape as :func:`repro.plan.parallel.decide_parallelism`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.exprs import WindowSpecKind
from repro.plan.ir import (
    Aggregate,
    Join,
    LogicalOp,
    OpaqueOp,
    OpaqueSource,
    RelToStream,
    SetOp,
    WindowAggregate,
    WindowOp,
    walk,
)

__all__ = ["BatchReport", "batch_safety", "decide_batch_size"]

#: Window kinds whose eviction is driven by arrival count, not time —
#: eviction can happen mid-instant, so batching changes the emitted rows.
_ROW_BASED = (WindowSpecKind.ROWS, WindowSpecKind.PARTITIONED)


@dataclass(frozen=True)
class BatchReport:
    """The batching pass's verdict on one logical plan.

    ``safe`` means one batched evaluation per instant emits exactly what
    per-arrival evaluation emits; ``blockers`` name the operators that
    break that (operator description, reason) — the fallback matrix the
    docs render.  An unsafe plan still runs batched *state*-exactly;
    callers that promise emission exactness must fall back per-element.
    """

    safe: bool
    blockers: tuple[tuple[str, str], ...]

    def describe(self) -> str:
        if self.safe:
            return "batch-safe: emissions are per-arrival exact"
        lines = [f"{where}: {why}" for where, why in self.blockers]
        return "per-element fallback — " + "; ".join(lines)


def batch_safety(plan: LogicalOp) -> BatchReport:
    """Prove (or refuse) emission-exact micro-batching for ``plan``."""
    if plan.op_name not in ("istream", "dstream", "rstream"):
        # Relation output: the answer is state-per-instant, which nets
        # identically under batching regardless of the operators inside.
        return BatchReport(safe=True, blockers=())
    blockers: list[tuple[str, str]] = []
    for node in walk(plan):
        blocker = _node_blocker(node)
        if blocker is not None:
            blockers.append(blocker)
    return BatchReport(safe=not blockers, blockers=tuple(blockers))


def decide_batch_size(plan: LogicalOp, requested: int) -> int:
    """Clamp a batch-size request to what the plan's emissions allow.

    Emission-unsafe plans get 1 (per-element); anything else keeps the
    request.  Callers comparing only maintained state (the Store, the
    change-log) may opt past this with an explicit per-query override.
    """
    if requested <= 1:
        return 1
    if not batch_safety(plan).safe:
        return 1
    return requested


def _node_blocker(node: LogicalOp) -> tuple[str, str] | None:
    if isinstance(node, (Aggregate, WindowAggregate)):
        return (node.op_name,
                "per-arrival evaluation emits intermediate aggregate rows "
                "that one batched fold nets away")
    if isinstance(node, WindowOp) and node.spec.kind in _ROW_BASED:
        return (f"[{node.spec.kind.name.lower()}] window",
                "capacity eviction can occur within an instant, so "
                "batched netting hides rows per-arrival emission shows")
    if isinstance(node, WindowOp) \
            and node.spec.kind is not WindowSpecKind.UNBOUNDED:
        return (f"[{node.spec.kind.name.lower()}] window",
                "expiry deltas land on arrival instants; per-arrival "
                "evaluation nets them against the first arrival only, "
                "one batched evaluation nets them against the batch")
    if isinstance(node, Join):
        return ("join",
                "per-arrival probes fix a match order that one bilinear "
                "batch delta does not reproduce")
    if isinstance(node, SetOp) and node.kind != "union":
        return (node.kind,
                "non-monotonic set operation: a same-instant arrival on "
                "the other side cancels per-arrival emissions")
    if isinstance(node, (OpaqueOp, OpaqueSource)):
        return (node.op_name, "opaque frontend operator: batch semantics "
                              "unknown, assume per-arrival sensitive")
    if isinstance(node, RelToStream) and node.op_name == "rstream":
        return ("RSTREAM",
                "samples the whole state once per evaluation; k "
                "per-arrival evaluations emit k snapshots")
    return None
