"""Monotonicity-aware planning (paper Section 3.2, Barbarà's rewriting).

The classifier in :mod:`repro.core.monotonicity` works over any tree
exposing ``op_name``/``children`` — the unified IR satisfies that
protocol directly.  This pass turns its verdicts into *physical strategy
decisions*: a stateful operator whose inputs are provably append-only
(monotonic sub-plans — e.g. fed by unbounded windows) never sees a
retraction, so the executor can maintain plain insert-only indexes
instead of multiplicity counters.  That is the incremental SPJ rewrite
applied where — and only where — it is legal.
"""

from __future__ import annotations

import enum

from repro.core.monotonicity import MonotonicityClass, classify_plan
from repro.plan.ir import LogicalOp, walk


class IncrementalStrategy(enum.Enum):
    """How a stateful operator should maintain its state."""

    #: Inputs are append-only: insert-only indexes, no retraction handling.
    APPEND_ONLY = "append-only"
    #: Inputs may retract (expiring windows, difference...): keep
    #: multiplicity-counted state and process signed deltas.
    RETRACTING = "retracting"


def incremental_strategy(plan: LogicalOp) -> IncrementalStrategy:
    """The strategy legal for an operator consuming ``plan``'s output."""
    if classify_plan(plan) is MonotonicityClass.MONOTONIC:
        return IncrementalStrategy.APPEND_ONLY
    return IncrementalStrategy.RETRACTING


def append_only_inputs(node: LogicalOp) -> bool:
    """True when every input of ``node`` is a monotonic (append-only)
    sub-plan — the legality condition for the append-only fast paths."""
    return bool(node.children) and all(
        classify_plan(child) is MonotonicityClass.MONOTONIC
        for child in node.children)


#: Stateful operators that have an append-only fast path in the executor.
_FAST_PATH_OPS = frozenset({"equijoin", "cross", "distinct"})


def strategy_notes(plan: LogicalOp) -> list[tuple[LogicalOp, IncrementalStrategy]]:
    """Per-node strategy decisions for the stateful operators in ``plan``.

    Used by :mod:`repro.plan.explain` to render which operators run
    append-only; the executor makes the same calls when compiling.
    """
    notes = []
    for node in walk(plan):
        if node.op_name in _FAST_PATH_OPS:
            strategy = (IncrementalStrategy.APPEND_ONLY
                        if append_only_inputs(node)
                        else IncrementalStrategy.RETRACTING)
            notes.append((node, strategy))
    return notes
