"""The unified rule-based rewriter (paper Sections 3.2 / 4.2).

One optimizer for every frontend: CQL, streaming SQL, RSP-QL and the
dataflow builder all lower into :mod:`repro.plan.ir` and run the same
fixpoint rewriter.  The rule catalog implements the static optimisations
from Hirzel et al. that apply at the logical-plan level:

* **operator reordering** — predicate pushdown moves selective filters
  below joins (:func:`push_filter_through_join`) and below time-based
  windows (:func:`push_filter_through_window`), where they shrink both
  the join state and the window buffers;
* **redundancy elimination** — trivially-true filters, filter/filter
  stacks, projection/projection stacks, identity projections and
  distinct/distinct stacks are removed or fused;
* **equi-join extraction** — equality conjuncts spanning a join's two
  sides become hash-join keys instead of post-join residual predicates
  (:func:`extract_equijoin_keys`), the rewrite that turns naive
  cross-product plans into incremental symmetric hash joins.

Window pushdown is restricted to time-based window kinds (RANGE / NOW /
UNBOUNDED): their membership depends only on element timestamps, so
filtering before or after the window commutes.  ROWS / PARTITIONED
membership depends on which *other* rows are present — pushdown through
those would change results, so the rule never fires on them.

Rules are applied to fixpoint by :func:`optimize`; each rule is
independent and individually testable.  (This module moved here from
``repro.sql.optimizer``; the compatibility shim is gone.)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from repro.plan.exprs import (
    Binary,
    BinOp,
    Column,
    Expr,
    Literal,
    TIME_BASED_KINDS,
    columns_resolvable,
    conjoin,
    equality_columns,
    split_conjuncts,
    substitute_columns,
)
from repro.plan.ir import (
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    WindowOp,
)

#: A rewrite rule: returns a new plan, or None when it does not apply here.
Rule = Callable[[LogicalOp], LogicalOp | None]


def fuse_filters(node: LogicalOp) -> LogicalOp | None:
    """Filter(Filter(x, p), q) → Filter(x, p AND q) — operator fusion."""
    if isinstance(node, Filter) and isinstance(node.child, Filter):
        inner = node.child
        return Filter(inner.child,
                      Binary(BinOp.AND, inner.predicate, node.predicate))
    return None


def remove_trivial_filter(node: LogicalOp) -> LogicalOp | None:
    """Filter(x, TRUE) → x — redundancy elimination."""
    if isinstance(node, Filter) and isinstance(node.predicate, Literal) \
            and node.predicate.value is True:
        return node.child
    return None


def push_filter_through_join(node: LogicalOp) -> LogicalOp | None:
    """Distribute a filter's conjuncts over a join.

    Conjuncts resolvable against one side move below the join (operator
    reordering: selection before join); equality conjuncts spanning both
    sides become join keys; the rest stays as the join residual.
    """
    if not (isinstance(node, Filter) and isinstance(node.child, Join)):
        return None
    join = node.child
    left_schema = join.left.schema
    right_schema = join.right.schema

    left_conjuncts: list[Expr] = []
    right_conjuncts: list[Expr] = []
    left_keys = list(join.left_keys)
    right_keys = list(join.right_keys)
    residual = split_conjuncts(join.residual)
    moved = False

    for conjunct in split_conjuncts(node.predicate):
        if columns_resolvable(conjunct, left_schema):
            left_conjuncts.append(conjunct)
            moved = True
            continue
        if columns_resolvable(conjunct, right_schema):
            right_conjuncts.append(conjunct)
            moved = True
            continue
        equality = equality_columns(conjunct)
        if equality is not None:
            placed = _try_place_equality(
                equality, left_schema, right_schema, left_keys, right_keys)
            if placed:
                moved = True
                continue
        residual.append(conjunct)
        moved = True  # moving into the join residual still removes a Filter

    if not moved:
        return None
    left = join.left if not left_conjuncts else \
        Filter(join.left, conjoin(left_conjuncts))
    right = join.right if not right_conjuncts else \
        Filter(join.right, conjoin(right_conjuncts))
    return Join(left, right, tuple(left_keys), tuple(right_keys),
                conjoin(residual))


def _try_place_equality(equality: tuple[str, str], left_schema,
                        right_schema, left_keys: list[str],
                        right_keys: list[str]) -> bool:
    a, b = equality
    if a in left_schema and b in right_schema:
        left_keys.append(a)
        right_keys.append(b)
        return True
    if b in left_schema and a in right_schema:
        left_keys.append(b)
        right_keys.append(a)
        return True
    return False


def extract_equijoin_keys(node: LogicalOp) -> LogicalOp | None:
    """Promote equality conjuncts in a join's residual to hash-join keys."""
    if not isinstance(node, Join) or node.residual is None:
        return None
    left_keys = list(node.left_keys)
    right_keys = list(node.right_keys)
    remaining: list[Expr] = []
    changed = False
    for conjunct in split_conjuncts(node.residual):
        equality = equality_columns(conjunct)
        if equality is not None and _try_place_equality(
                equality, node.left.schema, node.right.schema,
                left_keys, right_keys):
            changed = True
        else:
            remaining.append(conjunct)
    if not changed:
        return None
    return replace(node, left_keys=tuple(left_keys),
                   right_keys=tuple(right_keys),
                   residual=conjoin(remaining))


def push_filter_through_window(node: LogicalOp) -> LogicalOp | None:
    """Filter(Window(x)) → Window(Filter(x)) for time-based windows.

    Sound because time-based window membership depends only on element
    timestamps: every record the filter keeps enters and leaves the window
    at the same instants either way.  The payoff is physical — the window
    buffer (and everything downstream) never stores rejected tuples.

    The executor and the reference evaluator both treat a filter below a
    window as a *pre-filter on arrivals* that still marks the source
    active at the arrival instant, so the maintained relation keeps the
    exact change-point structure of the un-pushed plan.
    """
    if not (isinstance(node, Filter) and isinstance(node.child, WindowOp)):
        return None
    window = node.child
    if window.spec.kind not in TIME_BASED_KINDS:
        return None
    return WindowOp(Filter(window.child, node.predicate), window.spec)


def compose_projects(node: LogicalOp) -> LogicalOp | None:
    """Project(Project(x)) → Project(x) — projection pruning.

    The outer projection's column references name the inner projection's
    outputs; substituting the inner expressions in fuses the two into one
    projection and drops every inner column the outer one never uses.
    """
    if not (isinstance(node, Project) and isinstance(node.child, Project)):
        return None
    inner = node.child
    bindings = dict(zip(inner.names, inner.exprs))
    fused = tuple(substitute_columns(e, bindings) for e in node.exprs)
    return Project(inner.child, fused, node.names)


def remove_identity_project(node: LogicalOp) -> LogicalOp | None:
    """Project(x, [c1..cn] AS [c1..cn]) → x when it matches x's schema."""
    if not isinstance(node, Project):
        return None
    child_fields = node.child.schema.fields
    if node.names != tuple(child_fields):
        return None
    for expr, name in zip(node.exprs, node.names):
        if not (isinstance(expr, Column) and expr.name == name):
            return None
    return node.child


def collapse_distinct(node: LogicalOp) -> LogicalOp | None:
    """Distinct(Distinct(x)) → Distinct(x) — idempotence."""
    if isinstance(node, Distinct) and isinstance(node.child, Distinct):
        return node.child
    return None


#: The default rule set, in application order.
DEFAULT_RULES: tuple[Rule, ...] = (
    remove_trivial_filter,
    fuse_filters,
    push_filter_through_join,
    extract_equijoin_keys,
    push_filter_through_window,
    compose_projects,
    remove_identity_project,
    collapse_distinct,
)


def optimize(plan: LogicalOp,
             rules: Sequence[Rule] = DEFAULT_RULES,
             max_passes: int = 20) -> LogicalOp:
    """Apply ``rules`` top-down to fixpoint.

    Each pass rewrites every node where some rule applies; passes repeat
    until no rule fires (bounded by ``max_passes`` as a safety net).
    """
    for _ in range(max_passes):
        rewritten, changed = _rewrite_once(plan, rules)
        if not changed:
            return rewritten
        plan = rewritten
    return plan


def _rewrite_once(node: LogicalOp,
                  rules: Sequence[Rule]) -> tuple[LogicalOp, bool]:
    changed = False
    for rule in rules:
        result = rule(node)
        if result is not None:
            node = result
            changed = True
    new_children = []
    for child in node.children:
        new_child, child_changed = _rewrite_once(child, rules)
        new_children.append(new_child)
        changed = changed or child_changed
    if new_children and any(n is not o for n, o in
                            zip(new_children, node.children)):
        node = node.with_children(new_children)
    return node, changed
