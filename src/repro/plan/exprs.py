"""Scalar expressions and window specifications of the unified plan IR.

This is the expression layer every frontend shares: the CQL parser, the
streaming-SQL dialect and the rewrite rules all build and inspect these
nodes.  It moved here from ``repro.cql.ast`` when the planning layer was
unified (``repro.cql.ast`` re-exports everything for compatibility) so
that :mod:`repro.plan` depends only on :mod:`repro.core` and every
frontend can depend on :mod:`repro.plan` without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.time import Timestamp

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for scalar expressions."""

    def columns(self) -> list["Column"]:
        """All column references in this expression (pre-order)."""
        return []


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean or NULL."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class Column(Expr):
    """A column reference, possibly qualified (``P.id``)."""

    name: str

    def columns(self) -> list["Column"]:
        return [self]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` in a select list or inside COUNT(*)."""

    def __str__(self) -> str:
        return "*"


class BinOp(enum.Enum):
    """Binary operators, grouped by family."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "AND"
    OR = "OR"

    @property
    def is_comparison(self) -> bool:
        return self in (BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE,
                        BinOp.GT, BinOp.GE)

    @property
    def is_boolean(self) -> bool:
        return self in (BinOp.AND, BinOp.OR)


@dataclass(frozen=True)
class Binary(Expr):
    """A binary expression ``left op right``."""

    op: BinOp
    left: Expr
    right: Expr

    def columns(self) -> list[Column]:
        return self.left.columns() + self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class Unary(Expr):
    """``NOT expr`` or ``-expr``."""

    op: str  # "NOT" | "-"
    operand: Expr

    def columns(self) -> list[Column]:
        return self.operand.columns()

    def __str__(self) -> str:
        return f"{self.op} {self.operand}"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call — aggregates (COUNT/SUM/AVG/MIN/MAX) or scalars."""

    name: str  # upper-cased
    args: tuple[Expr, ...]

    AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES

    def columns(self) -> list[Column]:
        out: list[Column] = []
        for arg in self.args:
            out.extend(arg.columns())
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def contains_aggregate(expr: Expr) -> bool:
    """True when the expression tree contains any aggregate call."""
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, Binary):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, Unary):
        return contains_aggregate(expr.operand)
    return False


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op is BinOp.AND:
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Expr | None:
    """Rebuild a predicate from conjuncts (inverse of split_conjuncts)."""
    result: Expr | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else \
            Binary(BinOp.AND, result, conjunct)
    return result


def substitute_columns(expr: Expr, bindings: dict[str, Expr]) -> Expr:
    """Replace column references by the expressions they name.

    The workhorse of projection composition: the outer projection's
    expressions reference the inner projection's output names; substituting
    the inner expressions in yields one fused projection.
    """
    if isinstance(expr, Column):
        return bindings.get(expr.name, expr)
    if isinstance(expr, Binary):
        return Binary(expr.op, substitute_columns(expr.left, bindings),
                      substitute_columns(expr.right, bindings))
    if isinstance(expr, Unary):
        return Unary(expr.op, substitute_columns(expr.operand, bindings))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(substitute_columns(a, bindings)
                                         for a in expr.args))
    return expr


def equality_columns(expr: Expr) -> tuple[str, str] | None:
    """Recognise ``col = col`` conjuncts (the equi-join pattern)."""
    if isinstance(expr, Binary) and expr.op is BinOp.EQ \
            and isinstance(expr.left, Column) \
            and isinstance(expr.right, Column):
        return (expr.left.name, expr.right.name)
    return None


def columns_resolvable(expr: Expr, schema) -> bool:
    """True when every column in ``expr`` resolves against ``schema``."""
    return all(c.name in schema for c in expr.columns())


# ---------------------------------------------------------------------------
# Window specifications (CQL-style FROM-clause windows)
# ---------------------------------------------------------------------------


class WindowSpecKind(enum.Enum):
    """CQL's S2R window families."""

    RANGE = "range"            # [Range r] with optional Slide
    NOW = "now"                # [Now]
    UNBOUNDED = "unbounded"    # [Range Unbounded]
    ROWS = "rows"              # [Rows n]
    PARTITIONED = "partition"  # [Partition By cols Rows n]


@dataclass(frozen=True)
class WindowSpec:
    """A parsed window specification attached to a FROM source."""

    kind: WindowSpecKind
    range_: Timestamp | None = None
    slide: Timestamp | None = None
    rows: int | None = None
    partition_by: tuple[str, ...] = ()

    def __str__(self) -> str:
        if self.kind is WindowSpecKind.NOW:
            return "[Now]"
        if self.kind is WindowSpecKind.UNBOUNDED:
            return "[Range Unbounded]"
        if self.kind is WindowSpecKind.ROWS:
            return f"[Rows {self.rows}]"
        if self.kind is WindowSpecKind.PARTITIONED:
            return (f"[Partition By {', '.join(self.partition_by)} "
                    f"Rows {self.rows}]")
        if self.slide:
            return f"[Range {self.range_} Slide {self.slide}]"
        return f"[Range {self.range_}]"


UNBOUNDED_SPEC = WindowSpec(kind=WindowSpecKind.UNBOUNDED)
NOW_SPEC = WindowSpec(kind=WindowSpecKind.NOW)

#: Window families whose membership depends only on element timestamps —
#: filtering before or after such a window is equivalent, so predicate
#: pushdown through them is sound.  ROWS/PARTITIONED membership depends on
#: which *other* rows are present, so pushdown through those is not.
TIME_BASED_KINDS = frozenset({
    WindowSpecKind.RANGE, WindowSpecKind.NOW, WindowSpecKind.UNBOUNDED,
})


# ---------------------------------------------------------------------------
# Group windows (streaming-SQL GROUP BY windows)
# ---------------------------------------------------------------------------


class EmitMode(enum.Enum):
    """When results become visible."""

    CHANGES = "changes"   # every refinement, as soon as it happens
    FINAL = "final"       # once per window, when the watermark closes it


class GroupWindowKind(enum.Enum):
    """Window functions usable in GROUP BY."""

    TUMBLE = "tumble"
    HOP = "hop"
    SESSION = "session"


@dataclass(frozen=True)
class GroupWindow:
    """A parsed windowing group item: ``TUMBLE(10)`` / ``HOP(10, 5)`` /
    ``SESSION(30)``."""

    kind: GroupWindowKind
    size: Timestamp            # tumble size, hop size, or session gap
    slide: Timestamp | None = None  # hop only

    def __str__(self) -> str:
        if self.kind is GroupWindowKind.HOP:
            return f"HOP({self.size}, {self.slide})"
        return f"{self.kind.name}({self.size})"
