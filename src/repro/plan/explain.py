"""EXPLAIN-style text renderers for logical and kernel plans.

Two render targets, one entry point:

* :func:`explain_logical` — the IR tree, one node per line, annotated
  with the incremental strategy chosen for each stateful operator by
  :mod:`repro.plan.monotone`;
* :func:`explain_kernel` — a :class:`repro.exec.Plan` as a wiring
  listing: every source and operator with its input channels, with
  shared channels (more than one consumer — the multi-query fan-out
  points) marked explicitly so sharing decisions are visible and
  diffable in golden files.

:func:`explain` dispatches on the argument type.
"""

from __future__ import annotations

from typing import Any

from repro.plan.ir import LogicalOp
from repro.plan.monotone import strategy_notes
from repro.plan.signature import plan_signature


def explain(plan: Any) -> str:
    """Render a logical IR tree or a kernel plan as text."""
    if isinstance(plan, LogicalOp):
        return explain_logical(plan)
    from repro.exec.plan import Plan as KernelPlan
    if isinstance(plan, KernelPlan):
        return explain_kernel(plan)
    raise TypeError(f"cannot explain {type(plan).__name__}")


def explain_logical(plan: LogicalOp) -> str:
    """The IR tree with per-operator incremental-strategy annotations."""
    strategies = {id(node): strategy
                  for node, strategy in strategy_notes(plan)}
    lines: list[str] = []
    _render(plan, 0, strategies, lines)
    lines.append(f"signature: {plan_signature(plan)}")
    return "\n".join(lines)


def _render(node: LogicalOp, indent: int, strategies: dict[int, Any],
            lines: list[str]) -> None:
    suffix = ""
    strategy = strategies.get(id(node))
    if strategy is not None:
        suffix = f"  [{strategy.value}]"
    lines.append(f"{'  ' * indent}{node.describe()}{suffix}")
    for child in node.children:
        _render(child, indent + 1, strategies, lines)


def explain_kernel(plan: Any) -> str:
    """A kernel plan as a wiring listing with shared channels marked."""
    consumers: dict[str, int] = {}
    for node in plan._order:
        for channel in node.inputs:
            consumers[channel] = consumers.get(channel, 0) + 1

    def shared(channel: str) -> str:
        count = consumers.get(channel, 0)
        return f" (shared x{count})" if count > 1 else ""

    lines = ["kernel plan:"]
    for name in plan._sources:
        lines.append(f"  source {name}{shared(name)}")
    for node in plan._order:
        op_label = type(node.op).__name__
        inner = getattr(node.op, "phys", None)
        if inner is not None:
            op_label += f"[{type(inner).__name__}]"
        inputs = ", ".join(node.inputs)
        lines.append(f"  {node.name}: {op_label} <- {inputs}{shared(node.name)}")
    return "\n".join(lines)
