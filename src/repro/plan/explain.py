"""EXPLAIN-style text renderers for logical and kernel plans.

Two render targets, one entry point:

* :func:`explain_logical` — the IR tree, one node per line, annotated
  with the incremental strategy chosen for each stateful operator by
  :mod:`repro.plan.monotone`;
* :func:`explain_kernel` — a :class:`repro.exec.Plan` as a wiring
  listing: every source and operator with its input channels, with
  shared channels (more than one consumer — the multi-query fan-out
  points) marked explicitly so sharing decisions are visible and
  diffable in golden files.
* :func:`explain_analyzed` — the IR tree again, but with live execution
  statistics (tuple counts, selectivity, busy-time share, state size)
  appended per node; the renderer half of
  :func:`repro.obs.explain_analyze`.

:func:`explain` dispatches on the argument type.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.plan.ir import LogicalOp
from repro.plan.monotone import strategy_notes
from repro.plan.signature import plan_signature


def explain(plan: Any) -> str:
    """Render a logical IR tree or a kernel plan as text."""
    if isinstance(plan, LogicalOp):
        return explain_logical(plan)
    from repro.exec.plan import Plan as KernelPlan
    if isinstance(plan, KernelPlan):
        return explain_kernel(plan)
    raise TypeError(f"cannot explain {type(plan).__name__}")


def explain_logical(plan: LogicalOp) -> str:
    """The IR tree with per-operator incremental-strategy annotations."""
    strategies = {id(node): strategy
                  for node, strategy in strategy_notes(plan)}
    lines: list[str] = []
    _render(plan, 0, strategies, lines)
    lines.append(f"signature: {plan_signature(plan)}")
    return "\n".join(lines)


def _render(node: LogicalOp, indent: int, strategies: dict[int, Any],
            lines: list[str]) -> None:
    suffix = ""
    strategy = strategies.get(id(node))
    if strategy is not None:
        suffix = f"  [{strategy.value}]"
    lines.append(f"{'  ' * indent}{node.describe()}{suffix}")
    for child in node.children:
        _render(child, indent + 1, strategies, lines)


def explain_analyzed(plan: LogicalOp,
                     stats: Mapping[int, Mapping[str, Any]]) -> str:
    """The IR tree annotated with live per-node execution statistics.

    ``stats`` maps ``id(logical node)`` to a dict with any of ``rows_in``,
    ``rows_out``, ``selectivity``, ``busy_share``, ``state_entries``,
    ``state_bytes``; nodes without an entry render bare.  Several logical
    nodes may share one physical operator (memo sharing, windows that
    swallowed pushed-down filters) — they then show the same numbers,
    which is the truth of the execution.
    """
    lines: list[str] = []
    _render_analyzed(plan, 0, stats, lines)
    lines.append(f"signature: {plan_signature(plan)}")
    return "\n".join(lines)


def _format_node_stats(entry: Mapping[str, Any]) -> str:
    parts: list[str] = []
    rows_in = entry.get("rows_in")
    rows_out = entry.get("rows_out")
    if rows_in is not None or rows_out is not None:
        fmt = lambda v: "-" if v is None else str(v)  # noqa: E731
        parts.append(f"rows={fmt(rows_in)}->{fmt(rows_out)}")
    selectivity = entry.get("selectivity")
    if selectivity is not None:
        parts.append(f"sel={selectivity:.3f}")
    busy_share = entry.get("busy_share")
    if busy_share is not None:
        parts.append(f"busy={busy_share * 100:.1f}%")
    state_entries = entry.get("state_entries")
    if state_entries is not None:
        state = f"state={state_entries}"
        state_bytes = entry.get("state_bytes")
        if state_bytes is not None:
            state += f" (~{state_bytes}B)"
        parts.append(state)
    return "  [" + " ".join(parts) + "]" if parts else ""


def _render_analyzed(node: LogicalOp, indent: int,
                     stats: Mapping[int, Mapping[str, Any]],
                     lines: list[str]) -> None:
    entry = stats.get(id(node))
    suffix = _format_node_stats(entry) if entry is not None else ""
    lines.append(f"{'  ' * indent}{node.describe()}{suffix}")
    for child in node.children:
        _render_analyzed(child, indent + 1, stats, lines)


def explain_kernel(plan: Any) -> str:
    """A kernel plan as a wiring listing with shared channels marked."""
    consumers: dict[str, int] = {}
    for node in plan._order:
        for channel in node.inputs:
            consumers[channel] = consumers.get(channel, 0) + 1

    def shared(channel: str) -> str:
        count = consumers.get(channel, 0)
        return f" (shared x{count})" if count > 1 else ""

    lines = ["kernel plan:"]
    for name in plan._sources:
        lines.append(f"  source {name}{shared(name)}")
    for node in plan._order:
        op_label = type(node.op).__name__
        inner = getattr(node.op, "phys", None)
        if inner is not None:
            op_label += f"[{type(inner).__name__}]"
        inputs = ", ".join(node.inputs)
        lines.append(f"  {node.name}: {op_label} <- {inputs}{shared(node.name)}")
    return "\n".join(lines)
