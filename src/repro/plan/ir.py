"""The unified logical-plan IR every frontend lowers into.

One operator tree language for all four query frontends (paper Figure 3's
optimisation stack, Section 3.2):

* the CQL parser/planner lowers SELECT blocks to scans, windows, R2R
  operators and an R2S root;
* the streaming-SQL dialect lowers to scans, filters, projections and
  :class:`WindowAggregate` (its GROUP BY windows);
* RSP-QL lowers windowed RDF streams to :class:`WindowOp` over triple
  scans plus :class:`BGPMatch`;
* the dataflow pipeline builder lowers its DAG to :class:`OpaqueSource` /
  :class:`OpaqueOp` nodes (payload-carrying, so rule passes can reorder
  and eliminate them without understanding the user functions inside).

Nodes expose ``op_name``/``children`` so the monotonicity classifier in
:mod:`repro.core.monotonicity` applies directly, and carry their output
:class:`~repro.core.records.Schema` so expression compilation resolves
column positions at plan time.

History: the core of this hierarchy moved here from
``repro.cql.algebra``; the compatibility shim is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.core.errors import PlanError
from repro.core.operators import AggregateKind, R2SKind
from repro.core.records import Schema
from repro.plan.exprs import (
    EmitMode,
    Expr,
    GroupWindow,
    WindowSpec,
    WindowSpecKind,
)


@dataclass(frozen=True)
class LogicalOp:
    """Base class for logical plan nodes."""

    @property
    def op_name(self) -> str:
        raise NotImplementedError

    @property
    def children(self) -> tuple["LogicalOp", ...]:
        return ()

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def with_children(self, children: Sequence["LogicalOp"]) -> "LogicalOp":
        """A copy of this node over different children (same arity)."""
        raise NotImplementedError

    # -- pretty printing -----------------------------------------------------

    def explain(self, indent: int = 0) -> str:
        """An EXPLAIN-style rendering of the plan tree."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.op_name


@dataclass(frozen=True)
class StreamScan(LogicalOp):
    """Leaf: read a registered stream.  Schema is alias-qualified."""

    name: str
    alias: str
    stream_schema: Schema

    @property
    def op_name(self) -> str:
        return "stream_scan"

    @property
    def schema(self) -> Schema:
        return self.stream_schema

    def with_children(self, children: Sequence[LogicalOp]) -> "StreamScan":
        if children:
            raise PlanError("stream_scan takes no children")
        return self

    def describe(self) -> str:
        return f"StreamScan({self.name} AS {self.alias})"


@dataclass(frozen=True)
class RelationScan(LogicalOp):
    """Leaf: read a registered (time-varying) relation."""

    name: str
    alias: str
    relation_schema: Schema

    @property
    def op_name(self) -> str:
        return "relation_scan"

    @property
    def schema(self) -> Schema:
        return self.relation_schema

    def with_children(self, children: Sequence[LogicalOp]) -> "RelationScan":
        if children:
            raise PlanError("relation_scan takes no children")
        return self

    def describe(self) -> str:
        return f"RelationScan({self.name} AS {self.alias})"


@dataclass(frozen=True)
class WindowOp(LogicalOp):
    """S2R: apply a window specification to a stream scan."""

    child: LogicalOp
    spec: WindowSpec

    @property
    def op_name(self) -> str:
        if self.spec.kind is WindowSpecKind.UNBOUNDED:
            return "unbounded_window"
        return "window"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "WindowOp":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return f"Window{self.spec}"


@dataclass(frozen=True)
class Filter(LogicalOp):
    """R2R: σ — keep records satisfying ``predicate``."""

    child: LogicalOp
    predicate: Expr

    @property
    def op_name(self) -> str:
        return "select"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "Filter":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return f"Filter({self.predicate})"


@dataclass(frozen=True)
class Project(LogicalOp):
    """R2R: π — compute output columns from expressions."""

    child: LogicalOp
    exprs: tuple[Expr, ...]
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.exprs) != len(self.names):
            raise PlanError("projection exprs/names arity mismatch")

    @property
    def op_name(self) -> str:
        return "project"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return Schema(self.names)

    def with_children(self, children: Sequence[LogicalOp]) -> "Project":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        cols = ", ".join(f"{e} AS {n}" for e, n in
                         zip(self.exprs, self.names))
        return f"Project({cols})"


@dataclass(frozen=True)
class Join(LogicalOp):
    """R2R: ⋈ — join two relations.

    ``left_keys``/``right_keys`` hold the extracted equi-join columns (empty
    for a pure cross/theta join); ``residual`` is any non-equi condition
    applied to joined records.
    """

    left: LogicalOp
    right: LogicalOp
    left_keys: tuple[str, ...] = ()
    right_keys: tuple[str, ...] = ()
    residual: Expr | None = None

    @property
    def op_name(self) -> str:
        return "equijoin" if self.left_keys else "cross"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    @property
    def schema(self) -> Schema:
        return self.left.schema.concat(self.right.schema)

    def with_children(self, children: Sequence[LogicalOp]) -> "Join":
        left, right = children
        return replace(self, left=left, right=right)

    def describe(self) -> str:
        if self.left_keys:
            keys = ", ".join(f"{l}={r}" for l, r in
                             zip(self.left_keys, self.right_keys))
            extra = f" residual={self.residual}" if self.residual else ""
            return f"EquiJoin({keys}){extra}"
        if self.residual is not None:
            return f"ThetaJoin({self.residual})"
        return "CrossJoin"


@dataclass(frozen=True)
class AggregateExpr:
    """One aggregate output column at the plan level."""

    kind: AggregateKind
    arg: Expr | None  # None for COUNT(*)
    name: str

    def describe(self) -> str:
        arg = "*" if self.arg is None else str(self.arg)
        return f"{self.kind.value}({arg}) AS {self.name}"


@dataclass(frozen=True)
class Aggregate(LogicalOp):
    """R2R: γ — grouped aggregation.

    Output schema: group-by columns (under their given output names)
    followed by aggregate columns.
    """

    child: LogicalOp
    group_by: tuple[str, ...]           # input column names
    group_names: tuple[str, ...]        # output names for the group columns
    aggregates: tuple[AggregateExpr, ...]

    def __post_init__(self) -> None:
        if len(self.group_by) != len(self.group_names):
            raise PlanError("group_by/group_names arity mismatch")

    @property
    def op_name(self) -> str:
        return "aggregate"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return Schema(self.group_names + tuple(a.name
                                               for a in self.aggregates))

    def with_children(self, children: Sequence[LogicalOp]) -> "Aggregate":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        parts = list(self.group_by) + [a.describe() for a in self.aggregates]
        return f"Aggregate({', '.join(parts)})"


@dataclass(frozen=True)
class Distinct(LogicalOp):
    """R2R: δ — duplicate elimination."""

    child: LogicalOp

    @property
    def op_name(self) -> str:
        return "distinct"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "Distinct":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class SetOp(LogicalOp):
    """R2R: bag union / difference / intersection of two relations."""

    kind: str  # "union" | "difference" | "intersection"
    left: LogicalOp
    right: LogicalOp

    _VALID = ("union", "difference", "intersection")
    #: Set operations where operand order does not matter.
    COMMUTATIVE = ("union", "intersection")

    def __post_init__(self) -> None:
        if self.kind not in self._VALID:
            raise PlanError(f"bad set-op kind {self.kind!r}")
        if self.left.schema.arity != self.right.schema.arity:
            raise PlanError("set operands must have equal arity")

    @property
    def op_name(self) -> str:
        return self.kind

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    @property
    def schema(self) -> Schema:
        return self.left.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "SetOp":
        left, right = children
        return replace(self, left=left, right=right)

    def describe(self) -> str:
        return self.kind.capitalize()


@dataclass(frozen=True)
class RelToStream(LogicalOp):
    """R2S: the topmost ISTREAM / DSTREAM / RSTREAM operator."""

    child: LogicalOp
    kind: R2SKind

    @property
    def op_name(self) -> str:
        return self.kind.value

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children: Sequence[LogicalOp]) -> "RelToStream":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return self.kind.value.upper()


# ---------------------------------------------------------------------------
# Frontend-specific nodes (SQL group windows, RSP-QL patterns, dataflow)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WindowAggregate(LogicalOp):
    """The streaming-SQL aggregation node: GROUP BY + optional window.

    ``window=None`` is a running (changelog) aggregation; otherwise the
    group window (TUMBLE/HOP/SESSION) adds ``window_start``/``window_end``
    columns to the output.  ``emit`` records the materialisation policy.
    """

    child: LogicalOp
    group_by: tuple[str, ...]
    group_names: tuple[str, ...]
    aggregates: tuple[AggregateExpr, ...]
    window: GroupWindow | None = None
    emit: EmitMode = EmitMode.CHANGES

    def __post_init__(self) -> None:
        if len(self.group_by) != len(self.group_names):
            raise PlanError("group_by/group_names arity mismatch")

    @property
    def op_name(self) -> str:
        return "window_aggregate" if self.window is not None else "aggregate"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        fields = self.group_names + tuple(a.name for a in self.aggregates)
        if self.window is not None:
            fields = fields + ("window_start", "window_end")
        return Schema(fields)

    def with_children(self, children: Sequence[LogicalOp]
                      ) -> "WindowAggregate":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        parts = list(self.group_by) + [a.describe() for a in self.aggregates]
        if self.window is not None:
            parts.append(str(self.window))
        parts.append(f"EMIT {self.emit.value.upper()}")
        return f"WindowAggregate({', '.join(parts)})"


@dataclass(frozen=True)
class BGPMatch(LogicalOp):
    """RSP-QL: match a basic graph pattern over a (windowed) triple bag.

    ``pattern`` is an opaque payload (a ``BasicGraphPattern``); the output
    schema is one column per selected variable.
    """

    child: LogicalOp
    pattern: Any = field(compare=False)
    variables: tuple[str, ...] = ()

    @property
    def op_name(self) -> str:
        return "bgp_match"

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    @property
    def schema(self) -> Schema:
        return Schema(self.variables)

    def with_children(self, children: Sequence[LogicalOp]) -> "BGPMatch":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        patterns = getattr(self.pattern, "patterns", None)
        body = (", ".join(str(p) for p in patterns)
                if patterns is not None else repr(self.pattern))
        return f"BGPMatch({body})"


@dataclass(frozen=True)
class OpaqueSource(LogicalOp):
    """Dataflow leaf: a source whose elements the IR cannot inspect."""

    kind: str                       # e.g. "source"
    tag: str                        # stable display label
    payload: Any = field(default=None, compare=False)

    @property
    def op_name(self) -> str:
        return self.kind

    @property
    def schema(self) -> Schema:
        return Schema(())

    def with_children(self, children: Sequence[LogicalOp]) -> "OpaqueSource":
        if children:
            raise PlanError(f"{self.kind} takes no children")
        return self

    def describe(self) -> str:
        return f"{self.kind.capitalize()}({self.tag})"


@dataclass(frozen=True)
class OpaqueOp(LogicalOp):
    """Dataflow inner node: user code (ParDo/GBK/window/sink) as payload.

    ``kind`` is the monotonicity-relevant operator name (``map``,
    ``flat_map``, ``window``, ``group_aggregate``...), so the classifier
    and the signature work without understanding the payload.
    """

    kind: str
    tag: str
    inputs: tuple[LogicalOp, ...]
    payload: Any = field(default=None, compare=False)

    @property
    def op_name(self) -> str:
        return self.kind

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return self.inputs

    @property
    def schema(self) -> Schema:
        return Schema(())

    def with_children(self, children: Sequence[LogicalOp]) -> "OpaqueOp":
        return replace(self, inputs=tuple(children))

    def describe(self) -> str:
        return f"{self.kind.capitalize()}({self.tag})"


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk(plan: LogicalOp):
    """Pre-order traversal of a plan tree."""
    yield plan
    for child in plan.children:
        yield from walk(child)


def scans_of(plan: LogicalOp) -> list[StreamScan | RelationScan]:
    """All leaf scans of a plan, in left-to-right order."""
    return [node for node in walk(plan)
            if isinstance(node, (StreamScan, RelationScan))]
