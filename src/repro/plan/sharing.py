"""Multi-query subplan sharing (the DSMS tradition of shared plans).

The memo maps canonical *detailed* signatures (see
:mod:`repro.plan.signature`) to already-compiled physical subtrees, so
when the DSMS registers N standing queries the common prefixes —
especially WindowOp + scan, the expensive stateful part — compile once
and fan out to every consumer.

Two rules keep reuse sound:

* **shareability** — subplans containing a relation scan are never
  shared (a relation source's initial contents are consumed once by one
  consumer), and neither are payload-carrying frontend nodes (BGP
  patterns, opaque dataflow ops) whose signatures cannot prove
  behavioural equality.
* **once per compile** — within the compilation of a single member
  query, a memo entry may be used at most once, and entries published
  by that same compilation are not yet visible.  Otherwise a query like
  ``X UNION X`` would wire one physical operator into both inputs of a
  binary operator, collapsing two distinct input channels into one.
"""

from __future__ import annotations

from typing import Any

from repro.plan.ir import (
    BGPMatch,
    LogicalOp,
    OpaqueOp,
    OpaqueSource,
    RelationScan,
    walk,
)
from repro.plan.signature import plan_signature


def shareable(plan: LogicalOp) -> bool:
    """True when ``plan``'s physical state may be shared across queries."""
    for node in walk(plan):
        if isinstance(node, (RelationScan, BGPMatch, OpaqueSource, OpaqueOp)):
            return False
    return True


def memo_key(plan: LogicalOp) -> str | None:
    """The memo key for a subplan, or None when it must not be shared."""
    if not shareable(plan):
        return None
    return plan_signature(plan, detail=True)


def view_memo_key(plan: LogicalOp) -> str | None:
    """The memo key for *by-name* sharing of dynamic-table plans.

    Unlike :func:`memo_key`, relation scans are allowed: a dynamic
    table's sources are versioned tables read through changelogs, so two
    views over the same relation share by construction — the hazard the
    physical-sharing rule guards against (a one-shot relation source
    consumed twice) does not exist here.  Payload-carrying nodes stay
    excluded; their signatures cannot prove behavioural equality.
    """
    for node in walk(plan):
        if isinstance(node, (BGPMatch, OpaqueSource, OpaqueOp)):
            return None
    return plan_signature(plan, detail=True)


def absorb_views(plan: LogicalOp, memo: "SubplanMemo") -> LogicalOp:
    """Rewrite subtrees that match an installed view into scans of it.

    ``memo`` entries map :func:`view_memo_key` signatures to
    ``(view_name, output_schema)`` pairs published by earlier view
    installations.  Matching is top-down and greedy — the largest shared
    subtree wins — and replacement is by *name* (a fresh
    :class:`RelationScan` per occurrence), so the same view may absorb
    several subtrees of one plan.  The caller drives the memo's
    ``start_compile``/``publish``/``finish_compile`` envelope.
    """
    entry = memo.peek(view_memo_key(plan))
    if entry is not None:
        name, schema = entry
        return RelationScan(name, name, schema)
    children = plan.children
    if not children:
        return plan
    return plan.with_children(
        [absorb_views(child, memo) for child in children])


class SubplanMemo:
    """Signature → compiled-subtree memo with compile-scoped reuse rules.

    Usage per member query: ``start_compile()``, then interleaved
    ``lookup``/``publish`` while walking the plan bottom-up, then
    ``finish_compile()`` to make this query's subtrees visible to later
    registrations.
    """

    def __init__(self) -> None:
        self._entries: dict[str, Any] = {}
        self._visible: dict[str, Any] | None = None
        self._used: set[str] = set()
        self._pending: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def start_compile(self) -> None:
        self._visible = dict(self._entries)
        self._used = set()
        self._pending = {}

    def lookup(self, key: str | None) -> Any | None:
        """A shared entry for ``key``, or None (miss / not shareable /
        already used by this compile)."""
        if key is None or self._visible is None:
            return None
        if key in self._used:
            self.misses += 1
            return None
        entry = self._visible.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._used.add(key)
        self.hits += 1
        return entry

    def peek(self, key: str | None) -> Any | None:
        """Like :meth:`lookup`, but without consuming the once-per-compile
        budget — for by-name sharing (dynamic tables), where the reused
        artifact is a named materialisation rather than a physical
        operator instance, so one compile may reference it repeatedly."""
        if key is None or self._visible is None:
            return None
        entry = self._visible.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def publish(self, key: str | None, entry: Any) -> None:
        """Offer a freshly compiled subtree for reuse by *later* compiles."""
        if key is None:
            return
        self._pending.setdefault(key, entry)

    def finish_compile(self) -> None:
        for key, entry in self._pending.items():
            self._entries.setdefault(key, entry)
        self._visible = None
        self._used = set()
        self._pending = {}

    def entries(self) -> dict[str, Any]:
        """The published entries (for tests and EXPLAIN)."""
        return dict(self._entries)
