"""Fission analysis: can a logical plan run key-partitioned, and by what?

The survey's data-parallelism story (§4.2) hinges on one question the
planner must answer *before* execution: is there a partition key K such
that records with different K-values never interact anywhere in the
plan?  If so, the query can be replicated N ways, each replica fed only
its share of the key space, and the merged replica outputs are exactly
the single-copy outputs — fission.  If not, parallel execution would
change the answer, and the only safe parallelism is 1.

:func:`partition_scheme` performs that analysis on the unified logical
IR.  It picks K at the topmost keyed boundary (a grouped aggregate's
GROUP BY, or an equi-join's key columns) and pushes K down the tree,
checking every operator on the way:

* per-record operators (filter, project onto bare columns, time-based
  windows) are transparent;
* a grouped aggregate is safe iff K ⊆ its group columns — then each
  group lives wholly inside one partition;
* an equi-join is safe iff K maps through the join condition, so both
  sides co-locate matching rows; a side with no stream scans is
  *broadcast* (relations are replicated to every partition) and needs no
  key;
* duplicate elimination and set operations only ever compare identical
  rows, which carry identical keys — safe when both sides resolve;
* ``[Rows n]`` windows depend on global arrival order across all keys —
  **not** partitionable; ``[Partition By … Rows n]`` is safe iff K ⊆ the
  window's partition columns.

At each stream leaf K resolves to *positional* column indices, which is
what the executors need: routing happens on raw arrival tuples before
any alias qualification.  Relation leaves resolve to nothing — relation
updates broadcast to every partition.

A ``None`` result is a proof obligation failed, and callers must fall
back to parallelism 1; :func:`decide_parallelism` wraps that rule.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.errors import SchemaError
from repro.plan.exprs import Column, WindowSpecKind
from repro.plan.ir import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    Project,
    RelToStream,
    RelationScan,
    SetOp,
    StreamScan,
    WindowAggregate,
    WindowOp,
    scans_of,
    walk,
)

__all__ = ["PartitionScheme", "partition_scheme", "decide_parallelism",
           "partition_boundary", "key_annotations", "BROADCAST"]

#: Annotation marker for nodes in a stream-free (broadcast) subtree:
#: their state is replicated identically in every partition.
BROADCAST = None


@dataclass(frozen=True)
class PartitionScheme:
    """A proven key-partitioning of a logical plan.

    ``keys`` are the boundary's key column names (for explain output);
    ``stream_keys`` maps each scanned *stream name* to the positional
    indices of the routing key inside that stream's raw tuples.  Streams
    not in the mapping do not occur in the plan; relations always
    broadcast.
    """

    keys: tuple[str, ...]
    stream_keys: Mapping[str, tuple[int, ...]]
    origin: str

    def key_for(self, stream: str, values: Sequence[Any]) -> Any:
        """The routing key of one raw arrival tuple on ``stream``."""
        indices = self.stream_keys[stream]
        if len(indices) == 1:
            return values[indices[0]]
        return tuple(values[i] for i in indices)

    def describe(self) -> str:
        per_stream = ", ".join(
            f"{name}[{','.join(map(str, idx))}]"
            for name, idx in sorted(self.stream_keys.items()))
        return f"partition by ({', '.join(self.keys)}) via {self.origin}: " \
            f"{per_stream or 'no stream inputs'}"


def partition_scheme(plan: LogicalOp) -> PartitionScheme | None:
    """The key-partitioning of ``plan``, or None when fission is unsound."""
    boundary = _boundary(plan)
    if boundary is None:
        return None
    node, keys, origin = boundary
    spine = _spine_of(plan, node)
    if any(isinstance(op, RelToStream) for op in spine):
        # Delta-shaped output (ISTREAM/DSTREAM/RSTREAM): merged replica
        # emissions are only the serial emissions when every output row
        # still carries its partition key — otherwise rows from different
        # partitions can collide in value, and cross-key cancellation the
        # serial bag performs never happens in the merge.  For a join
        # boundary either side's key columns qualify: the equi-join pins
        # them equal in every output row.
        candidates = ([node.left_keys, node.right_keys]
                      if isinstance(node, Join) else [keys])
        if not any(_keys_reach_output(spine, candidate)
                   for candidate in candidates):
            return None
    resolved = _resolve(node, list(keys))
    if resolved is None:
        return None
    streams = {scan.name for scan in scans_of(plan)
               if isinstance(scan, StreamScan)}
    if streams - set(resolved):
        return None  # some stream escaped the key analysis — unsafe
    if not streams:
        return None  # nothing to partition: all inputs are relations
    return PartitionScheme(keys=tuple(keys), stream_keys=dict(resolved),
                           origin=origin)


def _spine_of(plan: LogicalOp, node: LogicalOp) -> list[LogicalOp]:
    """The unary operators between the root and the boundary, top down."""
    ops: list[LogicalOp] = []
    cursor = plan
    while cursor is not node:
        ops.append(cursor)
        cursor = cursor.children[0]
    return ops


def _keys_reach_output(spine: Sequence[LogicalOp],
                       keys: Sequence[str]) -> bool:
    """Do the boundary's key columns survive every spine projection?"""
    current = list(keys)
    for op in reversed(spine):
        if isinstance(op, Project):
            mapped = []
            for key in current:
                for name, expr in zip(op.names, op.exprs):
                    if isinstance(expr, Column) and expr.name == key:
                        mapped.append(name)
                        break
                else:
                    return False
            current = mapped
    return True


def partition_boundary(plan: LogicalOp) \
        -> tuple[LogicalOp, tuple[str, ...], str] | None:
    """The topmost keyed boundary of ``plan``: (node, keys, origin).

    The boundary is the operator whose key *defines* the partitioning —
    a grouped aggregate or an equi-join.  Everything between it and the
    root is a per-record spine; everything below it carries the key on
    some column of every record.  State migration anchors on this node:
    the boundary's state determines the query's current output, so a
    rescaled replica's driver state can be recomputed from it even when
    the spine projects the key away.
    """
    return _boundary(plan)


def key_annotations(plan: LogicalOp) \
        -> dict[int, tuple[str, ...] | None] | None:
    """Per-node routing-key columns for a partitionable plan.

    Maps ``id(node)`` → the routing key's column names *in that node's
    output schema*, for every node the key analysis descends through,
    plus the spine above the boundary as far as the key survives
    projection.  Nodes in a stream-free subtree map to :data:`BROADCAST`
    (their state is replicated in every partition); nodes absent from
    the mapping have no recoverable key (e.g. spine ops above a
    projection that dropped it).  Returns None when the plan is not
    partitionable at all.

    This is what live rescale (``repro.runtime.rescale``) uses to
    re-key each operator's checkpointed state by the target width.
    """
    if partition_scheme(plan) is None:
        return None
    node, keys, _origin = _boundary(plan)
    ann: dict[int, tuple[str, ...] | None] = {}
    _annotate(node, list(keys), ann)
    # The spine above the boundary: carry the key upward through renames
    # until a projection loses it (nodes above that point stay absent).
    spine: list[LogicalOp] = []
    cursor = plan
    while cursor is not node:
        spine.append(cursor)
        cursor = cursor.children[0]
    current = list(keys)
    for op in reversed(spine):
        if isinstance(op, Project):
            mapped = []
            for key in current:
                out_name = None
                for name, expr in zip(op.names, op.exprs):
                    if isinstance(expr, Column) and expr.name == key:
                        out_name = name
                        break
                if out_name is None:
                    return ann  # key projected away: stop annotating up
                mapped.append(out_name)
            current = mapped
        # Filter / Distinct / RelToStream keep their child's schema.
        ann[id(op)] = tuple(current)
    return ann


def _annotate(node: LogicalOp, keys: list[str],
              ann: dict[int, tuple[str, ...] | None]) -> None:
    """Record each descended node's key columns; mirrors :func:`_resolve`.

    Only called on plans :func:`partition_scheme` already proved, so the
    failure branches of ``_resolve`` are unreachable here.
    """
    ann[id(node)] = tuple(keys)
    if isinstance(node, StreamScan):
        return
    if isinstance(node, RelationScan):
        ann[id(node)] = BROADCAST
        return
    if isinstance(node, (Filter, Distinct, RelToStream, WindowOp)):
        _annotate(node.children[0], keys, ann)
        return
    if isinstance(node, Project):
        renamed = [node.exprs[node.schema.index_of(k)].name for k in keys]
        _annotate(node.children[0], renamed, ann)
        return
    if isinstance(node, (Aggregate, WindowAggregate)):
        renamed = [node.group_by[node.group_names.index(k)] for k in keys]
        _annotate(node.children[0], renamed, ann)
        return
    if isinstance(node, Join):
        _annotate_join(node, keys, ann)
        return
    if isinstance(node, SetOp):
        positions = [node.left.schema.index_of(k) for k in keys]
        right_keys = [node.right.schema.fields[p] for p in positions]
        _annotate(node.left, keys, ann)
        _annotate(node.right, right_keys, ann)
        return


def _annotate_join(node: Join, keys: list[str],
                   ann: dict[int, tuple[str, ...] | None]) -> None:
    left_schema = node.left.schema
    on_left = []
    for key in keys:
        try:
            left_schema.index_of(key)
        except SchemaError:
            continue
        on_left.append(key)
    if on_left:
        side, other = node.left, node.right
        names, own_keys, other_keys = on_left, node.left_keys, \
            node.right_keys
    else:
        side, other = node.right, node.left
        names, own_keys, other_keys = list(keys), node.right_keys, \
            node.left_keys
    _annotate(side, names, ann)
    if any(isinstance(s, StreamScan) for s in scans_of(other)):
        schema = side.schema
        key_positions = [schema.index_of(k) for k in own_keys]
        mapped = [other_keys[key_positions.index(schema.index_of(n))]
                  for n in names]
        _annotate(other, mapped, ann)
    else:
        for sub in walk(other):
            ann[id(sub)] = BROADCAST


def decide_parallelism(plan: LogicalOp, requested: int | None = None,
                       cores: int | None = None) -> int:
    """Clamp a parallelism request to what the plan's semantics allow.

    Unpartitionable plans always get 1.  Without an explicit request the
    planner picks min(4, cores) — beyond the boundary key's typical
    cardinality the extra replicas only add routing cost.
    """
    if partition_scheme(plan) is None:
        return 1
    if requested is not None:
        return max(1, requested)
    if cores is None:
        cores = os.cpu_count() or 1
    return max(1, min(4, cores))


# ---------------------------------------------------------------------------
# Boundary selection
# ---------------------------------------------------------------------------

#: Spine operators above the boundary that are safe to skip: they treat
#: each row independently (or compare only identical rows), so a row
#: computed by the partition owning its key is the row the single-copy
#: plan would compute.
_SPINE = (Filter, Project, Distinct, RelToStream)


def _boundary(plan: LogicalOp) \
        -> tuple[LogicalOp, tuple[str, ...], str] | None:
    """Walk the unary spine to the topmost keyed boundary.

    Returns (node, keys-in-node-output-schema, origin label).
    """
    node = plan
    while isinstance(node, _SPINE):
        node = node.children[0]
    if isinstance(node, (Aggregate, WindowAggregate)):
        if not node.group_by:
            return None  # a global aggregate needs every record in one place
        return node, tuple(node.group_names), \
            f"aggregate group by ({', '.join(node.group_by)})"
    if isinstance(node, Join) and node.left_keys:
        # Key on whichever side actually carries streams; a stream-free
        # side is broadcast and imposes no key.
        left_streams = any(isinstance(s, StreamScan)
                           for s in scans_of(node.left))
        keys = node.left_keys if left_streams else node.right_keys
        return node, tuple(keys), \
            f"equi-join on ({', '.join(node.left_keys)})"
    return None


# ---------------------------------------------------------------------------
# Key push-down
# ---------------------------------------------------------------------------


def _resolve(node: LogicalOp, keys: list[str]) \
        -> dict[str, tuple[int, ...]] | None:
    """Push key columns (named in ``node``'s output schema) to the leaves.

    Returns stream name → positional key indices, or None when any
    operator on the way would let different keys interact.
    """
    if isinstance(node, StreamScan):
        try:
            return {node.name: tuple(node.schema.index_of(k) for k in keys)}
        except SchemaError:
            return None
    if isinstance(node, RelationScan):
        return {}  # broadcast: every partition sees the whole relation
    if isinstance(node, (Filter, Distinct, RelToStream)):
        return _resolve(node.children[0], keys)
    if isinstance(node, WindowOp):
        return _resolve_window(node, keys)
    if isinstance(node, Project):
        return _resolve_project(node, keys)
    if isinstance(node, (Aggregate, WindowAggregate)):
        return _resolve_aggregate(node, keys)
    if isinstance(node, Join):
        return _resolve_join(node, keys)
    if isinstance(node, SetOp):
        return _resolve_setop(node, keys)
    return None  # opaque / frontend-specific node: assume unsafe


def _resolve_window(node: WindowOp, keys: list[str]) \
        -> dict[str, tuple[int, ...]] | None:
    spec = node.spec
    if spec.kind is WindowSpecKind.ROWS:
        # [Rows n] keeps the n globally most recent rows across all keys;
        # splitting the input changes which rows survive.
        return None
    if spec.kind is WindowSpecKind.PARTITIONED:
        # Safe iff rows that share a window also share a partition:
        # K ⊆ Partition By columns.
        schema = node.children[0].schema
        try:
            window_cols = {schema.index_of(c) for c in spec.partition_by}
            if any(schema.index_of(k) not in window_cols for k in keys):
                return None
        except SchemaError:
            return None
    return _resolve(node.children[0], keys)


def _resolve_project(node: Project, keys: list[str]) \
        -> dict[str, tuple[int, ...]] | None:
    renamed = []
    for key in keys:
        try:
            expr = node.exprs[node.schema.index_of(key)]
        except SchemaError:
            return None
        if not isinstance(expr, Column):
            return None  # computed key column: cannot route on raw input
        renamed.append(expr.name)
    return _resolve(node.children[0], renamed)


def _resolve_aggregate(node: Aggregate | WindowAggregate, keys: list[str]) \
        -> dict[str, tuple[int, ...]] | None:
    # Keys must name group columns (never aggregate outputs); map each
    # output group name back to the input column it groups on.
    renamed = []
    for key in keys:
        try:
            position = node.group_names.index(key)
        except ValueError:
            return None
        renamed.append(node.group_by[position])
    return _resolve(node.children[0], renamed)


def _resolve_join(node: Join, keys: list[str]) \
        -> dict[str, tuple[int, ...]] | None:
    left_schema = node.left.schema
    on_left, on_right = [], []
    for key in keys:
        try:
            left_schema.index_of(key)
        except SchemaError:
            on_right.append(key)
        else:
            on_left.append(key)
    if on_left and on_right:
        return None  # key straddles the join: no single co-location key
    if on_left:
        side, other = node.left, node.right
        names, own_keys, other_keys = on_left, node.left_keys, \
            node.right_keys
    else:
        side, other = node.right, node.left
        names, own_keys, other_keys = on_right, node.right_keys, \
            node.left_keys
    branch = _resolve(side, names)
    if branch is None:
        return None
    if any(isinstance(s, StreamScan) for s in scans_of(other)):
        # Both sides carry streams: matching rows must co-locate, so K
        # has to map through the equi-join condition onto the other side.
        schema = side.schema
        try:
            key_positions = [schema.index_of(k) for k in own_keys]
            mapped = []
            for name in names:
                position = schema.index_of(name)
                if position not in key_positions:
                    return None  # K not part of the join key: unsafe
                mapped.append(other_keys[key_positions.index(position)])
        except SchemaError:
            return None
        other_branch = _resolve(other, mapped)
        if other_branch is None:
            return None
    else:
        other_branch = {}  # stream-free side: broadcast, no key needed
    resolved = dict(branch)
    if not _merge(resolved, other_branch):
        return None
    return resolved


def _resolve_setop(node: SetOp, keys: list[str]) \
        -> dict[str, tuple[int, ...]] | None:
    # Set operands share arity, not names: translate keys positionally.
    left_schema, right_schema = node.left.schema, node.right.schema
    try:
        positions = [left_schema.index_of(k) for k in keys]
    except SchemaError:
        return None
    right_keys = [right_schema.fields[p] for p in positions]
    left = _resolve(node.left, keys)
    right = _resolve(node.right, right_keys)
    if left is None or right is None:
        return None
    resolved = dict(left)
    if not _merge(resolved, right):
        return None
    return resolved


def _merge(into: dict[str, tuple[int, ...]],
           branch: Mapping[str, tuple[int, ...]]) -> bool:
    """Merge per-stream key indices; equal demands only.

    A stream scanned twice must route both scans identically — each
    arrival is routed once, so conflicting key demands are unsatisfiable.
    """
    for name, indices in branch.items():
        if name in into and into[name] != indices:
            return False
        into[name] = indices
    return True
