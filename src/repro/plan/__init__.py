"""repro.plan — the unified planning layer (paper §3.2, Figure 3).

One logical IR every frontend lowers into, one rule-based rewriter, one
canonical signature scheme, and the multi-query sharing memo.  Depends
only on :mod:`repro.core`; the CQL/SQL/RSP/dataflow frontends depend on
this package, never the other way round.

Module map:

* :mod:`repro.plan.exprs` — scalar expressions, window specifications
* :mod:`repro.plan.ir` — the LogicalOp tree language
* :mod:`repro.plan.rules` — the rewrite-rule catalog and ``optimize``
* :mod:`repro.plan.signature` — canonical commutativity-aware signatures
* :mod:`repro.plan.monotone` — monotonicity-aware strategy selection
* :mod:`repro.plan.parallel` — fission/partitionability analysis
* :mod:`repro.plan.batching` — micro-batch emission-safety analysis
* :mod:`repro.plan.sharing` — the multi-query subplan memo
* :mod:`repro.plan.explain` — text renderers for logical & kernel plans
"""

from repro.plan.explain import (
    explain,
    explain_analyzed,
    explain_kernel,
    explain_logical,
)
from repro.plan.exprs import (
    Binary,
    BinOp,
    Column,
    EmitMode,
    Expr,
    FuncCall,
    GroupWindow,
    GroupWindowKind,
    Literal,
    NOW_SPEC,
    Star,
    TIME_BASED_KINDS,
    UNBOUNDED_SPEC,
    Unary,
    WindowSpec,
    WindowSpecKind,
    columns_resolvable,
    conjoin,
    contains_aggregate,
    equality_columns,
    split_conjuncts,
    substitute_columns,
)
from repro.plan.ir import (
    Aggregate,
    AggregateExpr,
    BGPMatch,
    Distinct,
    Filter,
    Join,
    LogicalOp,
    OpaqueOp,
    OpaqueSource,
    Project,
    RelToStream,
    RelationScan,
    SetOp,
    StreamScan,
    WindowAggregate,
    WindowOp,
    scans_of,
    walk,
)
from repro.plan.batching import (
    BatchReport,
    batch_safety,
    decide_batch_size,
)
from repro.plan.parallel import (
    PartitionScheme,
    decide_parallelism,
    partition_scheme,
)
from repro.plan.monotone import (
    IncrementalStrategy,
    append_only_inputs,
    incremental_strategy,
    strategy_notes,
)
from repro.plan.rules import (
    DEFAULT_RULES,
    Rule,
    collapse_distinct,
    compose_projects,
    extract_equijoin_keys,
    fuse_filters,
    optimize,
    push_filter_through_join,
    push_filter_through_window,
    remove_identity_project,
    remove_trivial_filter,
)
from repro.plan.sharing import (
    SubplanMemo,
    absorb_views,
    memo_key,
    shareable,
    view_memo_key,
)
from repro.plan.signature import canonical_predicate, plan_signature

__all__ = [
    "Aggregate", "AggregateExpr", "BGPMatch", "BatchReport", "Binary",
    "BinOp", "Column", "absorb_views", "view_memo_key",
    "DEFAULT_RULES", "Distinct", "EmitMode", "Expr", "Filter", "FuncCall",
    "GroupWindow", "GroupWindowKind", "IncrementalStrategy", "Join",
    "Literal", "LogicalOp", "NOW_SPEC", "OpaqueOp", "OpaqueSource",
    "PartitionScheme", "Project", "RelToStream", "RelationScan", "Rule",
    "SetOp", "Star",
    "StreamScan", "SubplanMemo", "TIME_BASED_KINDS", "UNBOUNDED_SPEC",
    "Unary", "WindowAggregate", "WindowOp", "WindowSpec", "WindowSpecKind",
    "append_only_inputs", "batch_safety", "canonical_predicate",
    "collapse_distinct",
    "columns_resolvable", "compose_projects", "conjoin",
    "contains_aggregate", "decide_batch_size", "decide_parallelism",
    "equality_columns",
    "explain", "explain_analyzed",
    "explain_kernel", "explain_logical", "extract_equijoin_keys",
    "fuse_filters",
    "incremental_strategy", "memo_key", "optimize", "partition_scheme",
    "plan_signature",
    "push_filter_through_join", "push_filter_through_window",
    "remove_identity_project", "remove_trivial_filter", "scans_of",
    "shareable", "split_conjuncts", "strategy_notes", "substitute_columns",
    "walk",
]
