"""Canonical plan signatures for tests, EXPLAIN and multi-query sharing.

:func:`plan_signature` renders a plan as a one-line string that is
*canonical under commutativity*: join operands, commutative set-op
operands (union/intersection — never difference), AND-ed conjuncts and
the two sides of an equality are each put into a deterministic order
before rendering.  ``A ⋈ B`` and ``B ⋈ A`` therefore produce the same
signature instead of silently missing the shared-subplan cache.

Two detail levels share the same canonicalisation:

* ``detail=False`` (default) — the structural form used by tests and
  EXPLAIN: operator names only, e.g. ``istream(window(stream_scan))``.
* ``detail=True`` — adds every payload that affects the maintained
  relation (scan names/aliases, window specs, predicates, projections,
  join keys, aggregate specs), so equal signatures identify subplans
  whose physical state can actually be shared.  The multi-query memo in
  :mod:`repro.plan.sharing` keys on this form.
"""

from __future__ import annotations

from repro.plan.exprs import Binary, BinOp, Expr, split_conjuncts
from repro.plan.ir import (
    Aggregate,
    BGPMatch,
    Filter,
    Join,
    LogicalOp,
    OpaqueOp,
    OpaqueSource,
    Project,
    RelationScan,
    SetOp,
    StreamScan,
    WindowAggregate,
    WindowOp,
)


def plan_signature(plan: LogicalOp, detail: bool = False) -> str:
    """A one-line canonical signature of ``plan`` (see module docstring)."""
    return _sig(plan, detail)


def _sig(node: LogicalOp, detail: bool) -> str:
    if isinstance(node, Join):
        return _join_sig(node, detail)
    child_sigs = [_sig(c, detail) for c in node.children]
    if isinstance(node, SetOp) and node.kind in SetOp.COMMUTATIVE:
        child_sigs.sort()
    head = node.op_name + (_payload(node) if detail else "")
    if child_sigs:
        return f"{head}({', '.join(child_sigs)})"
    return head


def _join_sig(node: Join, detail: bool) -> str:
    left_sig = _sig(node.left, detail)
    right_sig = _sig(node.right, detail)
    pairs = list(zip(node.left_keys, node.right_keys))
    if right_sig < left_sig:
        left_sig, right_sig = right_sig, left_sig
        pairs = [(r, l) for l, r in pairs]
    head = node.op_name
    if detail:
        bits = []
        if pairs:
            bits.append(", ".join(f"{l}={r}" for l, r in sorted(pairs)))
        if node.residual is not None:
            bits.append(f"residual={canonical_predicate(node.residual)}")
        if bits:
            head += f"[{'; '.join(bits)}]"
    return f"{head}({left_sig}, {right_sig})"


def _payload(node: LogicalOp) -> str:
    """The bracketed detail payload for a node (empty when none)."""
    if isinstance(node, StreamScan):
        return f"[{node.name} AS {node.alias}]"
    if isinstance(node, RelationScan):
        return f"[{node.name} AS {node.alias}]"
    if isinstance(node, WindowOp):
        return str(node.spec)
    if isinstance(node, Filter):
        return f"[{canonical_predicate(node.predicate)}]"
    if isinstance(node, Project):
        cols = ", ".join(f"{e} AS {n}" for e, n in
                         zip(node.exprs, node.names))
        return f"[{cols}]"
    if isinstance(node, (Aggregate, WindowAggregate)):
        parts = [f"{c} AS {n}" for c, n in
                 zip(node.group_by, node.group_names)]
        parts += [a.describe() for a in node.aggregates]
        if isinstance(node, WindowAggregate):
            if node.window is not None:
                parts.append(str(node.window))
            parts.append(f"EMIT {node.emit.value.upper()}")
        return f"[{', '.join(parts)}]"
    if isinstance(node, BGPMatch):
        patterns = getattr(node.pattern, "patterns", None)
        body = (", ".join(str(p) for p in patterns)
                if patterns is not None else repr(node.pattern))
        return f"[{body} -> {', '.join(node.variables)}]"
    if isinstance(node, (OpaqueSource, OpaqueOp)):
        return f"[{node.tag}]"
    return ""


def canonical_predicate(expr: Expr | None) -> str:
    """Render a predicate with its conjuncts in canonical order.

    Conjuncts are sorted by rendered text; the two sides of a bare
    equality are ordered textually, so ``a = b`` and ``b = a`` render
    identically.
    """
    rendered = sorted(_canonical_expr(c) for c in split_conjuncts(expr))
    return " AND ".join(rendered)


def _canonical_expr(expr: Expr) -> str:
    if isinstance(expr, Binary) and expr.op is BinOp.EQ:
        a, b = str(expr.left), str(expr.right)
        if b < a:
            a, b = b, a
        return f"({a} = {b})"
    return str(expr)
