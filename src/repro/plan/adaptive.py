"""Adaptive re-optimisation: the hysteresis loop behind ``autoscale=``.

The survey's "Query Optimization in the Wild" thread names *adaptive
re-optimization* — re-planning a standing query against observed runtime
conditions — as the live frontier, and Fragkoulis et al. single out
elasticity (changing a running query's parallelism) as the capability
separating modern stream engines.  This module is the decision half of
that loop; the mechanism half (state migration) is
:mod:`repro.runtime.rescale`.

The split is deliberate:

* :class:`Signals` — one poll's worth of runtime evidence (queue
  occupancy and pressure events from the DSMS backpressure telemetry,
  event-time watermark lag, per-partition load skew, live operator
  selectivity from the profiler).  Plain data, built by whoever hosts
  the loop.
* :class:`AdaptiveController` — a *pure, deterministic* policy: feed it
  a :class:`Signals`, get a :class:`Decision` back.  No clocks, no
  engine references, no I/O — so the hysteresis behaviour is unit
  testable poll by poll.

Hysteresis, because naive threshold reactions oscillate: a congested
queue triggers a scale-up, the wider query drains the backlog, the idle
queue triggers a scale-down, congestion returns.  Three guards prevent
that flapping:

* a **band** between ``high_occupancy`` and ``low_occupancy`` where no
  action is taken (the classic dead zone);
* **confirmation** — the same direction must be wanted ``confirm_polls``
  times in a row before a decision is issued (one bursty poll is not a
  trend);
* **cooldown** — after a rescale, ``cooldown_polls`` polls are ignored
  entirely, giving the migrated query time to exhibit steady-state
  behaviour at its new width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import PlanError

__all__ = ["AdaptivePolicy", "Signals", "Decision", "AdaptiveController",
           "skew_ratio"]


def skew_ratio(loads: Sequence[float]) -> float:
    """Max/mean per-partition load — 1.0 is perfectly balanced.

    The evidence number the pool benchmarks call load-balance: a ratio
    of N on N partitions means one partition is doing all the work (the
    hot-key pathology rescaling redistributes).
    """
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean <= 0:
        return 1.0
    return max(loads) / mean


@dataclass(frozen=True)
class AdaptivePolicy:
    """Thresholds and hysteresis knobs for the adaptivity loop."""

    min_parallelism: int = 1
    max_parallelism: int = 8
    #: Queue occupancy (depth/capacity at poll time) at or above which
    #: the controller wants to scale up.
    high_occupancy: float = 0.75
    #: Occupancy at or below which it wants to scale down (the dead zone
    #: between the two is where stable configurations live).
    low_occupancy: float = 0.10
    #: Event-time watermark lag at or above which to scale up; ``None``
    #: disables the lag trigger (lag needs obs enabled to be observed).
    high_watermark_lag: float | None = None
    #: Per-partition load skew (max/mean) at or above which to scale up —
    #: more partitions re-spread hot keys across the hash space.
    high_skew: float | None = None
    #: Same-direction polls required before a decision is issued.
    confirm_polls: int = 2
    #: Polls ignored after a rescale decision.
    cooldown_polls: int = 2
    #: Multiplicative step: up multiplies, down divides (ceil).
    factor: int = 2

    def __post_init__(self) -> None:
        if self.min_parallelism < 1:
            raise PlanError(f"min_parallelism must be >= 1, "
                            f"got {self.min_parallelism}")
        if self.max_parallelism < self.min_parallelism:
            raise PlanError(
                f"max_parallelism {self.max_parallelism} below "
                f"min_parallelism {self.min_parallelism}")
        if not 0.0 <= self.low_occupancy < self.high_occupancy <= 1.0:
            raise PlanError(
                f"need 0 <= low_occupancy < high_occupancy <= 1, got "
                f"{self.low_occupancy} / {self.high_occupancy}")
        if self.confirm_polls < 1:
            raise PlanError(f"confirm_polls must be >= 1, "
                            f"got {self.confirm_polls}")
        if self.factor < 2:
            raise PlanError(f"factor must be >= 2, got {self.factor}")


@dataclass(frozen=True)
class Signals:
    """One poll of runtime evidence about a running query."""

    parallelism: int
    #: Input-queue occupancy in [0, 1] at poll time (backlog pressure).
    queue_occupancy: float = 0.0
    #: Cumulative queue pressure events (the controller differences
    #: successive polls itself, so feed the raw counter).
    pressure_events: int = 0
    #: Event-time lag (max over the query's streams); None = unobserved.
    watermark_lag: float | None = None
    #: Per-partition cumulative load (deltas processed, busy seconds —
    #: any monotone per-replica measure; skew is computed on deltas).
    partition_loads: tuple[float, ...] = ()
    #: Live root selectivity (rows out / rows in); None = unobserved.
    selectivity: float | None = None


@dataclass(frozen=True)
class Decision:
    """What the controller wants done after one poll."""

    action: str              # "hold" | "rescale"
    parallelism: int         # target width (== current when holding)
    reason: str

    @property
    def wants_rescale(self) -> bool:
        return self.action == "rescale"


class AdaptiveController:
    """Hysteresis-guarded rescale decisions from polled signals.

    One controller per standing query; call :meth:`poll` at a steady
    cadence (the DSMS polls once per ``run_until_idle``).  The
    controller is deterministic state: same signal sequence, same
    decision sequence.
    """

    def __init__(self, policy: AdaptivePolicy | None = None) -> None:
        self.policy = policy or AdaptivePolicy()
        self.decisions: list[Decision] = []
        self._pending_direction = 0     # -1 down, 0 none, +1 up
        self._pending_streak = 0
        self._cooldown = 0
        self._last_pressure: int | None = None
        self._last_loads: tuple[float, ...] = ()

    # -- desire ------------------------------------------------------------

    def _wanted(self, signals: Signals) -> tuple[int, str]:
        """The raw (unhysteresised) direction this poll argues for."""
        policy = self.policy
        new_pressure = (0 if self._last_pressure is None
                        else signals.pressure_events - self._last_pressure)
        if signals.queue_occupancy >= policy.high_occupancy:
            return 1, (f"queue occupancy "
                       f"{signals.queue_occupancy:.2f} >= "
                       f"{policy.high_occupancy:.2f}")
        if new_pressure > 0:
            return 1, f"{new_pressure} new queue pressure events"
        if policy.high_watermark_lag is not None \
                and signals.watermark_lag is not None \
                and signals.watermark_lag >= policy.high_watermark_lag:
            return 1, (f"watermark lag {signals.watermark_lag:g} >= "
                       f"{policy.high_watermark_lag:g}")
        if policy.high_skew is not None and len(self._last_loads) == \
                len(signals.partition_loads) and signals.partition_loads:
            fresh = [now - before for now, before
                     in zip(signals.partition_loads, self._last_loads)]
            ratio = skew_ratio(fresh)
            if ratio >= policy.high_skew and any(fresh):
                return 1, (f"partition skew {ratio:.2f} >= "
                           f"{policy.high_skew:.2f}")
        if signals.queue_occupancy <= policy.low_occupancy:
            return -1, (f"queue occupancy "
                        f"{signals.queue_occupancy:.2f} <= "
                        f"{policy.low_occupancy:.2f}")
        return 0, "signals inside the hysteresis band"

    def _target(self, direction: int, parallelism: int) -> int:
        policy = self.policy
        if direction > 0:
            return min(policy.max_parallelism,
                       parallelism * policy.factor)
        return max(policy.min_parallelism,
                   -(-parallelism // policy.factor))  # ceil division

    # -- the loop ----------------------------------------------------------

    def poll(self, signals: Signals) -> Decision:
        """Digest one poll of signals into a decision."""
        direction, reason = self._wanted(signals)
        self._last_pressure = signals.pressure_events
        self._last_loads = tuple(signals.partition_loads)
        if self._cooldown > 0:
            self._cooldown -= 1
            decision = Decision("hold", signals.parallelism,
                                f"cooling down ({self._cooldown} polls "
                                f"left); last signal: {reason}")
            self.decisions.append(decision)
            return decision
        if direction == 0 or \
                self._target(direction, signals.parallelism) \
                == signals.parallelism:
            self._pending_direction = 0
            self._pending_streak = 0
            decision = Decision("hold", signals.parallelism, reason)
            self.decisions.append(decision)
            return decision
        if direction == self._pending_direction:
            self._pending_streak += 1
        else:
            self._pending_direction = direction
            self._pending_streak = 1
        if self._pending_streak < self.policy.confirm_polls:
            decision = Decision(
                "hold", signals.parallelism,
                f"{reason} (confirmation {self._pending_streak}/"
                f"{self.policy.confirm_polls})")
            self.decisions.append(decision)
            return decision
        target = self._target(direction, signals.parallelism)
        self._pending_direction = 0
        self._pending_streak = 0
        self._cooldown = self.policy.cooldown_polls
        decision = Decision("rescale", target, reason)
        self.decisions.append(decision)
        return decision

    # -- introspection -----------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready controller state (surfaced by ``analyze``)."""
        last = self.decisions[-1] if self.decisions else None
        return {
            "polls": len(self.decisions),
            "rescales": sum(1 for d in self.decisions if d.wants_rescale),
            "cooldown": self._cooldown,
            "pending_streak": self._pending_streak,
            "last_decision": None if last is None else {
                "action": last.action, "parallelism": last.parallelism,
                "reason": last.reason},
        }
