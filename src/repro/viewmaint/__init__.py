"""viewmaint — streaming-database view maintenance (paper Section 5.1).

The maintenance-strategy spectrum for continuous views (recompute / eager /
lazy / split), DBToaster-style higher-order delta views, and the
InvaliDB-style push-based real-time query layer.
"""

from repro.viewmaint.dbtoaster import (
    GroupedJoinAggregateView,
    JoinAggregateView,
)
from repro.viewmaint.invalidb import (
    ChangeEvent,
    EventKind,
    LiveQuery,
    RealTimeDatabase,
)
from repro.viewmaint.strategies import (
    EagerView,
    LazyView,
    RecomputeView,
    SplitView,
    ViewStrategy,
)

__all__ = [
    "ViewStrategy", "RecomputeView", "EagerView", "LazyView", "SplitView",
    "JoinAggregateView", "GroupedJoinAggregateView",
    "RealTimeDatabase", "LiveQuery", "ChangeEvent", "EventKind",
]
