"""Higher-order delta maintenance (DBToaster-style; paper Section 5.1).

DBToaster's insight: the *delta of a query is itself a query*, and
materialising the deltas (and deltas-of-deltas) turns view maintenance
into constant-time lookups.  The canonical example is an aggregate over an
equi-join::

    V = SUM_{a ∈ A, b ∈ B, a.k = b.k} f(a) · g(b)

whose first-order deltas with respect to an insertion into A or B are

    ΔV / Δa  =  f(a) · M_B[a.k]     where  M_B[k] = Σ_{b.k = k} g(b)
    ΔV / Δb  =  g(b) · M_A[b.k]     where  M_A[k] = Σ_{a.k = k} f(a)

``M_A`` and ``M_B`` are the materialised *first-order views*; maintaining
them per update is O(1), and so is maintaining V — versus O(|other side|)
for naive delta evaluation and O(|A|·|B|) for recomputation.  The C6
benchmark compares all three.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Hashable, Mapping



class JoinAggregateView:
    """V = Σ f(a)·g(b) over the equi-join of two tables, maintained with
    higher-order deltas.  Supports inserts and deletes on both sides."""

    def __init__(self,
                 left_key: Callable[[Mapping[str, Any]], Hashable],
                 right_key: Callable[[Mapping[str, Any]], Hashable],
                 left_value: Callable[[Mapping[str, Any]], float] =
                 lambda row: 1,
                 right_value: Callable[[Mapping[str, Any]], float] =
                 lambda row: 1) -> None:
        self._left_key = left_key
        self._right_key = right_key
        self._left_value = left_value
        self._right_value = right_value
        # First-order materialised views: key -> Σ value.
        self._m_left: dict[Hashable, float] = defaultdict(float)
        self._m_right: dict[Hashable, float] = defaultdict(float)
        self._result: float = 0
        self.update_work = 0  # map touches per update (always O(1))

    @property
    def result(self) -> float:
        """The maintained aggregate — an O(1) read."""
        return self._result

    def insert_left(self, row: Mapping[str, Any]) -> None:
        self._apply_left(row, +1)

    def delete_left(self, row: Mapping[str, Any]) -> None:
        self._apply_left(row, -1)

    def insert_right(self, row: Mapping[str, Any]) -> None:
        self._apply_right(row, +1)

    def delete_right(self, row: Mapping[str, Any]) -> None:
        self._apply_right(row, -1)

    def _apply_left(self, row: Mapping[str, Any], sign: int) -> None:
        key = self._left_key(row)
        value = self._left_value(row) * sign
        self._result += value * self._m_right[key]
        self._m_left[key] += value
        self.update_work += 2

    def _apply_right(self, row: Mapping[str, Any], sign: int) -> None:
        key = self._right_key(row)
        value = self._right_value(row) * sign
        self._result += self._m_left[key] * value
        self._m_right[key] += value
        self.update_work += 2

    # -- baselines for the benchmark ------------------------------------------

    @staticmethod
    def naive_delta_insert_left(row, left_rows, right_rows, left_key,
                                right_key, left_value, right_value):
        """First-order-only maintenance: scan the other side per update.
        Returns (delta, rows_touched)."""
        key = left_key(row)
        delta = 0.0
        touched = 0
        for other in right_rows:
            touched += 1
            if right_key(other) == key:
                delta += left_value(row) * right_value(other)
        return delta, touched

    @staticmethod
    def recompute(left_rows, right_rows, left_key, right_key,
                  left_value, right_value):
        """Full recomputation baseline.  Returns (value, rows_touched)."""
        index: dict[Hashable, float] = defaultdict(float)
        touched = 0
        for row in right_rows:
            index[right_key(row)] += right_value(row)
            touched += 1
        total = 0.0
        for row in left_rows:
            total += left_value(row) * index[left_key(row)]
            touched += 1
        return total, touched


class GroupedJoinAggregateView:
    """Per-group variant: V[g] = Σ f(a)·g(b) grouped by a key of the left
    side — the shape Materialize/RisingWave maintain for dashboards."""

    def __init__(self, left_key, right_key, group_key,
                 left_value=lambda row: 1,
                 right_value=lambda row: 1) -> None:
        self._left_key = left_key
        self._right_key = right_key
        self._group_key = group_key
        self._left_value = left_value
        self._right_value = right_value
        # M_left[k][g] = Σ f(a) for a.k == k grouped by g(a).
        self._m_left: dict[Hashable, dict[Hashable, float]] = \
            defaultdict(lambda: defaultdict(float))
        self._m_right: dict[Hashable, float] = defaultdict(float)
        self._result: dict[Hashable, float] = defaultdict(float)

    def results(self) -> dict[Hashable, float]:
        return {g: v for g, v in self._result.items() if v != 0}

    def insert_left(self, row) -> None:
        self._apply_left(row, +1)

    def delete_left(self, row) -> None:
        self._apply_left(row, -1)

    def insert_right(self, row) -> None:
        self._apply_right(row, +1)

    def delete_right(self, row) -> None:
        self._apply_right(row, -1)

    def _apply_left(self, row, sign: int) -> None:
        key = self._left_key(row)
        group = self._group_key(row)
        value = self._left_value(row) * sign
        self._result[group] += value * self._m_right[key]
        self._m_left[key][group] += value

    def _apply_right(self, row, sign: int) -> None:
        key = self._right_key(row)
        value = self._right_value(row) * sign
        for group, left_sum in self._m_left[key].items():
            self._result[group] += left_sum * value
        self._m_right[key] += value
