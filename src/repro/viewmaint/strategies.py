"""Continuous-view maintenance strategies (paper Section 5.1).

Winter et al.'s *continuous views* observation: maintenance work can be
split between the *insert* path and the *query* path, and the right split
depends on the workload mix.  We implement the whole spectrum for grouped
aggregate views over an insert/delete stream:

* :class:`RecomputeView` — no materialisation: queries scan the base
  (the lazy extreme; what a plain DBMS does).
* :class:`EagerView` — PipelineDB-style: every update immediately folds
  into the materialised result (the eager extreme; queries are O(groups)).
* :class:`LazyView` — updates append to a log; queries first apply all
  pending updates, then read.
* :class:`SplitView` — "meet me halfway": updates append to a small delta
  partition (cheap); queries merge snapshot + delta on the fly; when the
  delta exceeds a threshold it is folded into the snapshot.

Every strategy maintains the same grouped aggregate (count / sum / avg /
min per group) and exposes ``update_work`` / ``query_work`` counters in
*touched rows*, which the C6 benchmark sweeps across insert:query mixes.

Since the dynamic-tables refactor the strategies are kernel citizens:
each one is a :class:`repro.exec.operator.Operator` whose grouped state
lives behind a pluggable :class:`repro.exec.state.StateBackend` (heap
dict by default, re-homed onto the plan's backend at ``open()``), and
every strategy implements ``snapshot()`` / ``restore()`` so the chaos
:class:`~repro.chaos.recovery.RecoveryManager` can checkpoint and roll
back a view exactly like any other kernel operator.  Pushed elements use
the CDC tuple protocol ``("insert" | "delete", row)``.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping

from repro.core.errors import StateError
from repro.exec.operator import Operator, OperatorContext
from repro.exec.state import DictStateBackend, StateBackend

#: A group's accumulator: (row count, value sum, value multiset for MIN).
GroupKey = Hashable


class _Accumulator:
    """Count/sum/min/max accumulator with (weighted) deletion support."""

    __slots__ = ("count", "total", "values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.values: dict[Any, int] = {}

    def add(self, value: Any, count: int = 1) -> None:
        self.count += count
        self.total += value * count
        self.values[value] = self.values.get(value, 0) + count

    def remove(self, value: Any, count: int = 1) -> None:
        if self.values.get(value, 0) < count:
            raise StateError(f"deleting value {value!r} not in group")
        self.count -= count
        self.total -= value * count
        self.values[value] -= count
        if not self.values[value]:
            del self.values[value]

    def merge(self, other: "_Accumulator") -> None:
        self.count += other.count
        self.total += other.total
        for value, count in other.values.items():
            self.values[value] = self.values.get(value, 0) + count

    def copy(self) -> "_Accumulator":
        clone = _Accumulator()
        clone.count = self.count
        clone.total = self.total
        clone.values = dict(self.values)
        return clone

    def to_state(self) -> tuple[int, Any, dict[Any, int]]:
        """A plain-data image for checkpointing."""
        return (self.count, self.total, dict(self.values))

    @classmethod
    def from_state(cls, state: tuple[int, Any, dict[Any, int]]
                   ) -> "_Accumulator":
        acc = cls()
        acc.count, acc.total, values = state
        acc.values = dict(values)
        return acc

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "avg": self.total / self.count if self.count else None,
            "min": min(self.values) if self.values else None,
            "max": max(self.values) if self.values else None,
        }


def _row_key(row: Mapping[str, Any]) -> tuple:
    return tuple(sorted(row.items()))


class ViewStrategy(Operator):
    """Common interface: a grouped aggregate view over one base table.

    Also a kernel operator: pushed elements are ``(op, row)`` CDC pairs
    (``op`` is ``"insert"`` or ``"delete"``); the strategy is a
    materialisation endpoint, so nothing is emitted downstream.
    """

    fusible = False

    #: attribute names holding :class:`StateBackend` instances; ``open``
    #: re-homes each onto the plan's configured backend.
    _STATE_BACKENDS: tuple[str, ...] = ()

    def __init__(self, group_fn: Callable[[Mapping[str, Any]], GroupKey],
                 value_fn: Callable[[Mapping[str, Any]], Any]) -> None:
        self._group_fn = group_fn
        self._value_fn = value_fn
        self.update_work = 0
        self.query_work = 0

    def insert(self, row: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def delete(self, row: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        """The current view contents: group → aggregate dict."""
        raise NotImplementedError

    @property
    def total_work(self) -> int:
        return self.update_work + self.query_work

    # -- kernel protocol ------------------------------------------------------

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        for attr in self._STATE_BACKENDS:
            old: StateBackend = getattr(self, attr)
            fresh = ctx.new_state()
            fresh.put_many(old.items())
            setattr(self, attr, fresh)

    def process_element(self, value: Any, input_index: int = 0) -> None:
        op, row = value
        if op == "insert":
            self.insert(row)
        elif op == "delete":
            self.delete(row)
        else:
            raise StateError(f"unknown view CDC op {op!r}")

    # -- checkpointing --------------------------------------------------------

    def _counters_state(self) -> dict[str, int]:
        return {"update_work": self.update_work,
                "query_work": self.query_work}

    def _restore_counters(self, state: Mapping[str, int]) -> None:
        self.update_work = state["update_work"]
        self.query_work = state["query_work"]


class RecomputeView(ViewStrategy):
    """No materialisation: keep the base rows, recompute per query."""

    _STATE_BACKENDS = ("_rows",)

    def __init__(self, group_fn, value_fn) -> None:
        super().__init__(group_fn, value_fn)
        #: row key → multiplicity
        self._rows: StateBackend = DictStateBackend()

    def insert(self, row) -> None:
        key = _row_key(row)
        self._rows.put(key, self._rows.get(key, 0) + 1)
        self.update_work += 1

    def delete(self, row) -> None:
        key = _row_key(row)
        have = self._rows.get(key, 0)
        if not have:
            raise StateError(f"deleting absent row {row!r}")
        if have == 1:
            self._rows.delete(key)
        else:
            self._rows.put(key, have - 1)
        self.update_work += 1

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        groups: dict[GroupKey, _Accumulator] = {}
        for row_items, multiplicity in self._rows.items():
            row = dict(row_items)
            group = self._group_fn(row)
            acc = groups.get(group)
            if acc is None:
                acc = groups[group] = _Accumulator()
            acc.add(self._value_fn(row), multiplicity)
            self.query_work += multiplicity
        return {k: acc.snapshot() for k, acc in groups.items()}

    def snapshot(self) -> Any:
        return {"rows": list(self._rows.items()),
                **self._counters_state()}

    def restore(self, state: Any) -> None:
        self._rows = DictStateBackend()
        self._rows.put_many(state["rows"])
        self._restore_counters(state)


class EagerView(ViewStrategy):
    """Immediate incremental maintenance (PipelineDB-style)."""

    _STATE_BACKENDS = ("_groups",)

    def __init__(self, group_fn, value_fn) -> None:
        super().__init__(group_fn, value_fn)
        #: group key → :class:`_Accumulator`
        self._groups: StateBackend = DictStateBackend()

    def insert(self, row) -> None:
        group = self._group_fn(row)
        acc = self._groups.get(group)
        if acc is None:
            acc = _Accumulator()
            self._groups.put(group, acc)
        acc.add(self._value_fn(row))
        self.update_work += 1

    def delete(self, row) -> None:
        group = self._group_fn(row)
        accumulator = self._groups.get(group)
        if accumulator is None:
            raise StateError(f"deleting from absent group {group!r}")
        accumulator.remove(self._value_fn(row))
        if not accumulator.count:
            self._groups.delete(group)
        self.update_work += 1

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        out = {k: acc.snapshot() for k, acc in self._groups.items()}
        self.query_work += len(out)
        return out

    def snapshot(self) -> Any:
        return {"groups": [(k, acc.to_state())
                           for k, acc in self._groups.items()],
                **self._counters_state()}

    def restore(self, state: Any) -> None:
        self._groups = DictStateBackend()
        self._groups.put_many((k, _Accumulator.from_state(s))
                              for k, s in state["groups"])
        self._restore_counters(state)


class LazyView(ViewStrategy):
    """Deferred maintenance: updates buffer, queries catch up then read."""

    _STATE_BACKENDS = ("_groups",)

    def __init__(self, group_fn, value_fn) -> None:
        super().__init__(group_fn, value_fn)
        self._groups: StateBackend = DictStateBackend()
        self._pending: list[tuple[str, dict[str, Any]]] = []

    def insert(self, row) -> None:
        self._pending.append(("insert", dict(row)))
        self.update_work += 0  # append is (amortised) free

    def delete(self, row) -> None:
        self._pending.append(("delete", dict(row)))
        self.update_work += 0  # append is (amortised) free, like insert

    def _catch_up(self) -> None:
        for op, row in self._pending:
            group = self._group_fn(row)
            acc = self._groups.get(group)
            if op == "insert":
                if acc is None:
                    acc = _Accumulator()
                    self._groups.put(group, acc)
                acc.add(self._value_fn(row))
            else:
                if acc is None:
                    raise StateError(
                        f"deleting from absent group {group!r}")
                acc.remove(self._value_fn(row))
                if not acc.count:
                    self._groups.delete(group)
            self.query_work += 1
        self._pending.clear()

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        self._catch_up()
        out = {k: acc.snapshot() for k, acc in self._groups.items()}
        self.query_work += len(out)
        return out

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def snapshot(self) -> Any:
        return {"groups": [(k, acc.to_state())
                           for k, acc in self._groups.items()],
                "pending": [(op, dict(row)) for op, row in self._pending],
                **self._counters_state()}

    def restore(self, state: Any) -> None:
        self._groups = DictStateBackend()
        self._groups.put_many((k, _Accumulator.from_state(s))
                              for k, s in state["groups"])
        self._pending = [(op, dict(row)) for op, row in state["pending"]]
        self._restore_counters(state)


class SplitView(ViewStrategy):
    """Winter et al.'s split maintenance ("meet me halfway").

    Inserts append to a *delta partition* (cheap, append-only); queries
    merge the materialised snapshot with an on-the-fly aggregation of the
    delta.  When the delta exceeds ``merge_threshold`` rows it is folded
    into the snapshot (amortised maintenance), keeping query cost bounded.
    Deletes try the delta partition first — indexed by row, so removal is
    O(1) rather than a list scan — then fall back to the snapshot (the
    strategy's documented asymmetry: continuous views target insert-heavy
    streams).
    """

    _STATE_BACKENDS = ("_snapshot",)

    def __init__(self, group_fn, value_fn,
                 merge_threshold: int = 64) -> None:
        super().__init__(group_fn, value_fn)
        if merge_threshold <= 0:
            raise StateError("merge threshold must be positive")
        self.merge_threshold = merge_threshold
        self._snapshot: StateBackend = DictStateBackend()
        #: row key → [row dict, multiplicity]; insertion-ordered so merges
        #: fold rows in arrival order, exactly like the old append log.
        self._delta: dict[tuple, list] = {}
        self._delta_rows = 0
        self.merges = 0

    def insert(self, row) -> None:
        key = _row_key(row)
        entry = self._delta.get(key)
        if entry is None:
            self._delta[key] = [dict(row), 1]
        else:
            entry[1] += 1
        self._delta_rows += 1
        self.update_work += 0  # append-only
        if self._delta_rows >= self.merge_threshold:
            self._merge()

    def delete(self, row) -> None:
        # Try the delta partition first (O(1) via the row index), then the
        # snapshot.
        key = _row_key(row)
        entry = self._delta.get(key)
        if entry is not None:
            if entry[1] == 1:
                del self._delta[key]
            else:
                entry[1] -= 1
            self._delta_rows -= 1
            self.update_work += 1
            return
        group = self._group_fn(row)
        accumulator = self._snapshot.get(group)
        if accumulator is None:
            raise StateError(f"deleting from absent group {group!r}")
        accumulator.remove(self._value_fn(row))
        if not accumulator.count:
            self._snapshot.delete(group)
        self.update_work += 1

    def _merge(self) -> None:
        for row, multiplicity in self._delta.values():
            group = self._group_fn(row)
            acc = self._snapshot.get(group)
            if acc is None:
                acc = _Accumulator()
                self._snapshot.put(group, acc)
            acc.add(self._value_fn(row), multiplicity)
            self.update_work += multiplicity
        self._delta.clear()
        self._delta_rows = 0
        self.merges += 1

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        overlay: dict[GroupKey, _Accumulator] = {}
        for group, accumulator in self._snapshot.items():
            overlay[group] = accumulator.copy()
            self.query_work += 1
        for row, multiplicity in self._delta.values():
            group = self._group_fn(row)
            if group not in overlay:
                overlay[group] = _Accumulator()
            overlay[group].add(self._value_fn(row), multiplicity)
            self.query_work += multiplicity
        return {k: acc.snapshot() for k, acc in overlay.items()
                if acc.count}

    @property
    def delta_size(self) -> int:
        return self._delta_rows

    def snapshot(self) -> Any:
        return {"snapshot": [(k, acc.to_state())
                             for k, acc in self._snapshot.items()],
                "delta": [(dict(row), count)
                          for row, count in self._delta.values()],
                "merges": self.merges,
                **self._counters_state()}

    def restore(self, state: Any) -> None:
        self._snapshot = DictStateBackend()
        self._snapshot.put_many((k, _Accumulator.from_state(s))
                                for k, s in state["snapshot"])
        self._delta = {}
        self._delta_rows = 0
        for row, count in state["delta"]:
            self._delta[_row_key(row)] = [dict(row), count]
            self._delta_rows += count
        self.merges = state["merges"]
        self._restore_counters(state)
