"""Continuous-view maintenance strategies (paper Section 5.1).

Winter et al.'s *continuous views* observation: maintenance work can be
split between the *insert* path and the *query* path, and the right split
depends on the workload mix.  We implement the whole spectrum for grouped
aggregate views over an insert/delete stream:

* :class:`RecomputeView` — no materialisation: queries scan the base
  (the lazy extreme; what a plain DBMS does).
* :class:`EagerView` — PipelineDB-style: every update immediately folds
  into the materialised result (the eager extreme; queries are O(groups)).
* :class:`LazyView` — updates append to a log; queries first apply all
  pending updates, then read.
* :class:`SplitView` — "meet me halfway": updates append to a small delta
  partition (cheap); queries merge snapshot + delta on the fly; when the
  delta exceeds a threshold it is folded into the snapshot.

Every strategy maintains the same grouped aggregate (count / sum / avg /
min per group) and exposes ``update_work`` / ``query_work`` counters in
*touched rows*, which the C6 benchmark sweeps across insert:query mixes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Callable, Hashable, Mapping

from repro.core.errors import StateError

#: A group's accumulator: (row count, value sum, value multiset for MIN).
GroupKey = Hashable


class _Accumulator:
    """Count/sum/min/max accumulator with deletion support."""

    __slots__ = ("count", "total", "values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.values: Counter = Counter()

    def add(self, value: Any) -> None:
        self.count += 1
        self.total += value
        self.values[value] += 1

    def remove(self, value: Any) -> None:
        if self.values[value] <= 0:
            raise StateError(f"deleting value {value!r} not in group")
        self.count -= 1
        self.total -= value
        self.values[value] -= 1
        if not self.values[value]:
            del self.values[value]

    def merge(self, other: "_Accumulator") -> None:
        self.count += other.count
        self.total += other.total
        self.values.update(other.values)

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "avg": self.total / self.count if self.count else None,
            "min": min(self.values) if self.values else None,
            "max": max(self.values) if self.values else None,
        }


class ViewStrategy:
    """Common interface: a grouped aggregate view over one base table."""

    def __init__(self, group_fn: Callable[[Mapping[str, Any]], GroupKey],
                 value_fn: Callable[[Mapping[str, Any]], Any]) -> None:
        self._group_fn = group_fn
        self._value_fn = value_fn
        self.update_work = 0
        self.query_work = 0

    def insert(self, row: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def delete(self, row: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        """The current view contents: group → aggregate dict."""
        raise NotImplementedError

    @property
    def total_work(self) -> int:
        return self.update_work + self.query_work


class RecomputeView(ViewStrategy):
    """No materialisation: keep the base rows, recompute per query."""

    def __init__(self, group_fn, value_fn) -> None:
        super().__init__(group_fn, value_fn)
        self._rows: Counter = Counter()

    def insert(self, row) -> None:
        self._rows[tuple(sorted(row.items()))] += 1
        self.update_work += 1

    def delete(self, row) -> None:
        key = tuple(sorted(row.items()))
        if not self._rows[key]:
            raise StateError(f"deleting absent row {row!r}")
        self._rows[key] -= 1
        if not self._rows[key]:
            del self._rows[key]
        self.update_work += 1

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        groups: dict[GroupKey, _Accumulator] = defaultdict(_Accumulator)
        for row_items, multiplicity in self._rows.items():
            row = dict(row_items)
            for _ in range(multiplicity):
                groups[self._group_fn(row)].add(self._value_fn(row))
                self.query_work += 1
        return {k: acc.snapshot() for k, acc in groups.items()}


class EagerView(ViewStrategy):
    """Immediate incremental maintenance (PipelineDB-style)."""

    def __init__(self, group_fn, value_fn) -> None:
        super().__init__(group_fn, value_fn)
        self._groups: dict[GroupKey, _Accumulator] = defaultdict(
            _Accumulator)

    def insert(self, row) -> None:
        self._groups[self._group_fn(row)].add(self._value_fn(row))
        self.update_work += 1

    def delete(self, row) -> None:
        group = self._group_fn(row)
        accumulator = self._groups.get(group)
        if accumulator is None:
            raise StateError(f"deleting from absent group {group!r}")
        accumulator.remove(self._value_fn(row))
        if not accumulator.count:
            del self._groups[group]
        self.update_work += 1

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        self.query_work += len(self._groups)
        return {k: acc.snapshot() for k, acc in self._groups.items()}


class LazyView(ViewStrategy):
    """Deferred maintenance: updates buffer, queries catch up then read."""

    def __init__(self, group_fn, value_fn) -> None:
        super().__init__(group_fn, value_fn)
        self._groups: dict[GroupKey, _Accumulator] = defaultdict(
            _Accumulator)
        self._pending: list[tuple[str, Mapping[str, Any]]] = []

    def insert(self, row) -> None:
        self._pending.append(("insert", dict(row)))
        self.update_work += 0  # append is (amortised) free

    def delete(self, row) -> None:
        self._pending.append(("delete", dict(row)))

    def _catch_up(self) -> None:
        for op, row in self._pending:
            group = self._group_fn(row)
            if op == "insert":
                self._groups[group].add(self._value_fn(row))
            else:
                self._groups[group].remove(self._value_fn(row))
                if not self._groups[group].count:
                    del self._groups[group]
            self.query_work += 1
        self._pending.clear()

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        self._catch_up()
        self.query_work += len(self._groups)
        return {k: acc.snapshot() for k, acc in self._groups.items()}

    @property
    def pending_count(self) -> int:
        return len(self._pending)


class SplitView(ViewStrategy):
    """Winter et al.'s split maintenance ("meet me halfway").

    Inserts append to a *delta partition* (cheap, append-only); queries
    merge the materialised snapshot with an on-the-fly aggregation of the
    delta.  When the delta exceeds ``merge_threshold`` rows it is folded
    into the snapshot (amortised maintenance), keeping query cost bounded.
    Deletes must touch the snapshot directly (the strategy's documented
    asymmetry — continuous views target insert-heavy streams).
    """

    def __init__(self, group_fn, value_fn,
                 merge_threshold: int = 64) -> None:
        super().__init__(group_fn, value_fn)
        if merge_threshold <= 0:
            raise StateError("merge threshold must be positive")
        self.merge_threshold = merge_threshold
        self._snapshot: dict[GroupKey, _Accumulator] = defaultdict(
            _Accumulator)
        self._delta: list[Mapping[str, Any]] = []
        self.merges = 0

    def insert(self, row) -> None:
        self._delta.append(dict(row))
        self.update_work += 0  # append-only
        if len(self._delta) >= self.merge_threshold:
            self._merge()

    def delete(self, row) -> None:
        # Try the delta partition first, then the snapshot.
        row = dict(row)
        if row in self._delta:
            self._delta.remove(row)
            self.update_work += 1
            return
        group = self._group_fn(row)
        accumulator = self._snapshot.get(group)
        if accumulator is None:
            raise StateError(f"deleting from absent group {group!r}")
        accumulator.remove(self._value_fn(row))
        if not accumulator.count:
            del self._snapshot[group]
        self.update_work += 1

    def _merge(self) -> None:
        for row in self._delta:
            self._snapshot[self._group_fn(row)].add(self._value_fn(row))
            self.update_work += 1
        self._delta.clear()
        self.merges += 1

    def query(self) -> dict[GroupKey, dict[str, Any]]:
        overlay: dict[GroupKey, _Accumulator] = {}
        for group, accumulator in self._snapshot.items():
            clone = _Accumulator()
            clone.merge(accumulator)
            overlay[group] = clone
            self.query_work += 1
        for row in self._delta:
            group = self._group_fn(row)
            if group not in overlay:
                overlay[group] = _Accumulator()
            overlay[group].add(self._value_fn(row))
            self.query_work += 1
        return {k: acc.snapshot() for k, acc in overlay.items()
                if acc.count}

    @property
    def delta_size(self) -> int:
        return len(self._delta)
