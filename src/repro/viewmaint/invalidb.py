"""InvaliDB-style real-time queries (paper Section 5.1).

Wingerath et al.'s InvaliDB offers a *push-based query interface on top of
a pull-based data store*: clients register ordinary queries against a
document store; every write is matched against all registered queries and
subscribers receive precise change events (``add`` / ``change`` /
``changeIndex`` / ``remove``) instead of re-polling.

:class:`RealTimeDatabase` reproduces the model: a keyed document store
whose registered :class:`LiveQuery` objects (predicate + optional ordering
+ optional limit) are incrementally re-evaluated on each write, emitting
the same event vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

from repro.core.errors import StateError


class EventKind(enum.Enum):
    """InvaliDB's change-event vocabulary."""

    ADD = "add"              # document entered the result
    CHANGE = "change"        # document still in the result, new content
    CHANGE_INDEX = "changeIndex"  # same content class, moved position
    REMOVE = "remove"        # document left the result


@dataclass(frozen=True)
class ChangeEvent:
    """One push notification delivered to a live-query subscriber."""

    kind: EventKind
    key: Hashable
    document: Mapping[str, Any] | None
    index: int | None = None


class LiveQuery:
    """A registered real-time query: predicate, optional order, limit."""

    def __init__(self, predicate: Callable[[Mapping[str, Any]], bool],
                 order_by: Callable[[Mapping[str, Any]], Any] | None = None,
                 limit: int | None = None) -> None:
        if limit is not None and limit <= 0:
            raise StateError(f"limit must be positive, got {limit}")
        self.predicate = predicate
        self.order_by = order_by
        self.limit = limit
        self._result: list[tuple[Hashable, dict[str, Any]]] = []
        self.events: list[ChangeEvent] = []
        self.matches_evaluated = 0

    # -- result bookkeeping -------------------------------------------------------

    def result_keys(self) -> list[Hashable]:
        return [key for key, _ in self._result]

    def result_documents(self) -> list[dict[str, Any]]:
        return [dict(doc) for _, doc in self._result]

    def _compute(self, store: Mapping[Hashable, dict[str, Any]],
                 ) -> list[tuple[Hashable, dict[str, Any]]]:
        matching = []
        for key, doc in store.items():
            self.matches_evaluated += 1
            if self.predicate(doc):
                matching.append((key, doc))
        if self.order_by is not None:
            matching.sort(key=lambda kd: (self.order_by(kd[1]),
                                          repr(kd[0])))
        else:
            matching.sort(key=lambda kd: repr(kd[0]))
        if self.limit is not None:
            matching = matching[:self.limit]
        return matching

    def refresh(self, store: Mapping[Hashable, dict[str, Any]],
                ) -> list[ChangeEvent]:
        """Recompute and diff; emit the InvaliDB event set."""
        new_result = self._compute(store)
        old_index = {key: i for i, (key, _) in enumerate(self._result)}
        old_docs = {key: doc for key, doc in self._result}
        new_index = {key: i for i, (key, _) in enumerate(new_result)}
        events: list[ChangeEvent] = []
        for key, doc in new_result:
            if key not in old_index:
                events.append(ChangeEvent(EventKind.ADD, key, dict(doc),
                                          new_index[key]))
            elif old_docs[key] != doc:
                events.append(ChangeEvent(EventKind.CHANGE, key,
                                          dict(doc), new_index[key]))
            elif old_index[key] != new_index[key]:
                events.append(ChangeEvent(EventKind.CHANGE_INDEX, key,
                                          dict(doc), new_index[key]))
        for key, _ in self._result:
            if key not in new_index:
                events.append(ChangeEvent(EventKind.REMOVE, key, None))
        self._result = [(k, dict(d)) for k, d in new_result]
        self.events.extend(events)
        return events

    # -- checkpointing ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-data image of the query's result bookkeeping.

        The predicate/order callables are code, not state — a restored
        query keeps the ones it was registered with.
        """
        return {
            "result": [(key, dict(doc)) for key, doc in self._result],
            "events": list(self.events),
            "matches_evaluated": self.matches_evaluated,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._result = [(key, dict(doc)) for key, doc in state["result"]]
        self.events = list(state["events"])
        self.matches_evaluated = state["matches_evaluated"]


class RealTimeDatabase:
    """A pull-based keyed store with a push-based query layer on top."""

    def __init__(self) -> None:
        self._store: dict[Hashable, dict[str, Any]] = {}
        self._queries: dict[str, LiveQuery] = {}

    # -- pull interface (the ordinary database) ------------------------------------

    def get(self, key: Hashable) -> dict[str, Any] | None:
        doc = self._store.get(key)
        return dict(doc) if doc is not None else None

    def find(self, predicate: Callable[[Mapping[str, Any]], bool],
             ) -> list[dict[str, Any]]:
        """One-shot (pull) query."""
        return [dict(d) for d in self._store.values() if predicate(d)]

    def __len__(self) -> int:
        return len(self._store)

    # -- push interface --------------------------------------------------------------

    def subscribe(self, name: str, query: LiveQuery) -> list[ChangeEvent]:
        """Register a live query; returns the initial result as ADD events."""
        if name in self._queries:
            raise StateError(f"live query {name!r} already registered")
        self._queries[name] = query
        return query.refresh(self._store)

    def unsubscribe(self, name: str) -> None:
        if name not in self._queries:
            raise StateError(f"unknown live query {name!r}")
        del self._queries[name]

    def query(self, name: str) -> LiveQuery:
        return self._queries[name]

    # -- writes (each one triggers matching) ------------------------------------------

    def put(self, key: Hashable,
            document: Mapping[str, Any]) -> dict[str, list[ChangeEvent]]:
        """Insert or replace a document; push changes to live queries."""
        self._store[key] = dict(document)
        return self._notify()

    def update(self, key: Hashable,
               fields: Mapping[str, Any]) -> dict[str, list[ChangeEvent]]:
        """Partial update of an existing document."""
        if key not in self._store:
            raise StateError(f"unknown document {key!r}")
        self._store[key].update(fields)
        return self._notify()

    def remove(self, key: Hashable) -> dict[str, list[ChangeEvent]]:
        if key not in self._store:
            raise StateError(f"unknown document {key!r}")
        del self._store[key]
        return self._notify()

    def _notify(self) -> dict[str, list[ChangeEvent]]:
        out: dict[str, list[ChangeEvent]] = {}
        for name, live in self._queries.items():
            events = live.refresh(self._store)
            if events:
                out[name] = events
        return out

    # -- checkpointing -----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Capture store + per-query result state (RecoveryManager protocol).

        Live-query *predicates* are code and stay attached to the
        registered :class:`LiveQuery` objects; the snapshot carries only
        their data (results, event logs, match counters), so a restore
        targets the same registered query set.
        """
        return {
            "store": {key: dict(doc) for key, doc in self._store.items()},
            "queries": {name: live.snapshot()
                        for name, live in self._queries.items()},
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        missing = [name for name in state["queries"]
                   if name not in self._queries]
        if missing:
            raise StateError(
                f"snapshot references unregistered live queries {missing}")
        self._store = {key: dict(doc)
                       for key, doc in state["store"].items()}
        for name, query_state in state["queries"].items():
            self._queries[name].restore(query_state)
