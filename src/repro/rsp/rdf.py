"""A minimal RDF data model (paper Section 5.2's Semantic Web strand).

Terms (IRIs, literals, blank nodes), triples, and an indexed triple store
supporting the pattern lookups basic-graph-pattern matching needs.  Only
what RSP-QL requires — this is the substrate, not a full RDF library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.core.errors import RSPError


@dataclass(frozen=True)
class IRI:
    """An IRI reference, e.g. ``IRI("http://ex.org/sensor1")``."""

    value: str

    def __str__(self) -> str:
        return f"<{self.value}>"


@dataclass(frozen=True)
class Literal:
    """A literal value with an optional datatype tag."""

    value: Any
    datatype: str | None = None

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BlankNode:
    """An anonymous node."""

    label: str

    def __str__(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True)
class Variable:
    """A query variable, e.g. ``Variable("temp")`` rendered ``?temp``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: Any concrete (non-variable) RDF term.
Term = IRI | Literal | BlankNode
#: A pattern position: a term or a variable.
PatternTerm = Term | Variable


@dataclass(frozen=True)
class Triple:
    """An RDF triple (subject, predicate, object)."""

    subject: Term
    predicate: Term
    object: Term

    def __post_init__(self) -> None:
        for position, term in (("subject", self.subject),
                               ("predicate", self.predicate),
                               ("object", self.object)):
            if isinstance(term, Variable):
                raise RSPError(
                    f"variables are not allowed in data triples "
                    f"({position} of {self})")

    def __str__(self) -> str:
        return f"{self.subject} {self.predicate} {self.object} ."


@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern: any position may be a variable."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> list[Variable]:
        return [t for t in (self.subject, self.predicate, self.object)
                if isinstance(t, Variable)]

    def __str__(self) -> str:
        return f"{self.subject} {self.predicate} {self.object} ."


def iri(value: str) -> IRI:
    """Shorthand constructor."""
    return IRI(value)


def lit(value: Any, datatype: str | None = None) -> Literal:
    """Shorthand constructor."""
    return Literal(value, datatype)


def var(name: str) -> Variable:
    """Shorthand constructor."""
    return Variable(name)


class RDFGraph:
    """A set of triples with S/P/O indexes for pattern lookup."""

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._by_subject: dict[Term, set[Triple]] = {}
        self._by_predicate: dict[Term, set[Triple]] = {}
        self._by_object: dict[Term, set[Triple]] = {}
        for triple in triples:
            self.add(triple)

    def add(self, triple: Triple) -> bool:
        """Add a triple; returns False if it was already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject.setdefault(triple.subject, set()).add(triple)
        self._by_predicate.setdefault(triple.predicate, set()).add(triple)
        self._by_object.setdefault(triple.object, set()).add(triple)
        return True

    def discard(self, triple: Triple) -> bool:
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        for index, key in ((self._by_subject, triple.subject),
                           (self._by_predicate, triple.predicate),
                           (self._by_object, triple.object)):
            index[key].discard(triple)
            if not index[key]:
                del index[key]
        return True

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDFGraph):
            return NotImplemented
        return self._triples == other._triples

    def union(self, other: "RDFGraph") -> "RDFGraph":
        out = RDFGraph(self._triples)
        for triple in other:
            out.add(triple)
        return out

    def candidates(self, pattern: TriplePattern) -> Iterable[Triple]:
        """Triples possibly matching a pattern, via the tightest index."""
        pools = []
        if not isinstance(pattern.subject, Variable):
            pools.append(self._by_subject.get(pattern.subject, set()))
        if not isinstance(pattern.predicate, Variable):
            pools.append(self._by_predicate.get(pattern.predicate, set()))
        if not isinstance(pattern.object, Variable):
            pools.append(self._by_object.get(pattern.object, set()))
        if not pools:
            return set(self._triples)
        return min(pools, key=len)
