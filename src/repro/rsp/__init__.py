"""rsp — RDF stream processing with RSP-QL semantics (Section 5.2).

A minimal RDF model, RDF streams, RSP-QL time-based windows with report
policies, basic graph pattern matching, and the RSTREAM/ISTREAM/DSTREAM
result operators, assembled by :class:`~repro.rsp.rspql.RSPEngine`.
"""

from repro.rsp.rdf import (
    BlankNode,
    IRI,
    Literal,
    RDFGraph,
    Triple,
    TriplePattern,
    Variable,
    iri,
    lit,
    var,
)
from repro.rsp.rspql import (
    BasicGraphPattern,
    ContinuousRSPQuery,
    RDFStream,
    ReportPolicy,
    RSPEngine,
    RSPResult,
    StreamWindow,
    TimestampedTriple,
)

__all__ = [
    "IRI", "Literal", "BlankNode", "Variable", "Triple", "TriplePattern",
    "RDFGraph", "iri", "lit", "var",
    "RDFStream", "TimestampedTriple", "StreamWindow", "ReportPolicy",
    "BasicGraphPattern", "ContinuousRSPQuery", "RSPEngine", "RSPResult",
]
